"""Benchmark regenerating Figure 9: MPIL insertion behaviour (replicas,
traffic, duplicates) over power-law and random overlays.

Expected shapes: replicas and traffic stay well under the
max_flows x per-flow-replicas = 150 cap; random-overlay replicas grow with
N while power-law stays flatter; power-law accumulates duplicates.
"""


def test_fig9_insertion_behaviour(run_and_print):
    result = run_and_print("fig9")
    cap = 30 * 5
    for _family, _n, replicas, traffic, _dups, flows in result.rows:
        assert replicas <= cap
        assert flows <= 30
        assert traffic > 0
