"""Benchmark regenerating Table 3: actual number of flows created by
lookups (max_flows=10, per-flow replicas=3).

Expected shape: below the budget of 10, growing with overlay size.  Note
the reproduction's absolute flow counts sit below the paper's 8.78-9.63
(tie statistics of the substitute topology generators differ — see
EXPERIMENTS.md)."""


def test_table3_actual_flows(run_and_print):
    result = run_and_print("tab3")
    for _family, _n, flows in result.rows:
        assert 1.0 <= flows <= 10.0
    for family in ("power-law", "random"):
        series = sorted(
            (row for row in result.rows if row[0] == family), key=lambda r: r[1]
        )
        if len(series) >= 2:
            assert series[-1][2] >= series[0][2] - 0.5  # non-collapsing in N
