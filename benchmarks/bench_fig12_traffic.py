"""Benchmark regenerating Figure 12: lookup traffic vs total traffic
(including maintenance), idle:offline = 30:30.

Expected shape: MPIL sends more lookup messages than MSPastry, but
MSPastry's maintenance probes dominate total traffic while MPIL runs no
maintenance at all."""


def test_fig12_traffic_comparison(run_and_print, bench_scale):
    result = run_and_print("fig12")
    rows = result.rows
    pastry_rows = [r for r in rows if r[0] == "MSPastry"]
    nods_rows = [r for r in rows if r[0] == "MPIL without DS"]
    assert pastry_rows and nods_rows
    total_pastry = sum(r[5] for r in pastry_rows)
    total_nods = sum(r[5] for r in nods_rows)
    assert total_pastry > total_nods  # maintenance dominates overall
    if bench_scale != "smoke":
        # the per-lookup multicast premium needs realistic path lengths,
        # which the tiny smoke overlay does not have
        lookup_pastry = sum(r[2] for r in pastry_rows)
        lookup_nods = sum(r[2] for r in nods_rows)
        assert lookup_nods > lookup_pastry
