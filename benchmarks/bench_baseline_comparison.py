"""Benchmark for the intro's qualitative triangle: MPIL vs flooding vs
random walks, with identical replica placement.

Expected shape: flooding reaches the highest success at an order of
magnitude more traffic; random walks are cheap but the least reliable;
MPIL combines near-flooding success with near-walk traffic.
"""


def test_baseline_comparison(run_and_print):
    result = run_and_print("baseline-comparison")
    for family in ("power-law", "random"):
        rows = {row[1]: row for row in result.rows if row[0] == family}
        mpil = next(v for k, v in rows.items() if k.startswith("mpil"))
        flood = next(v for k, v in rows.items() if k.startswith("flood"))
        walks = next(v for k, v in rows.items() if k.startswith("walks"))
        # flooding costs far more traffic than MPIL
        assert flood[3] > 3 * mpil[3]
        # MPIL is competitive with flooding on success
        assert mpil[2] >= flood[2] - 20.0
        # and at least as reliable as blind random walks
        assert mpil[2] >= walks[2] - 5.0
