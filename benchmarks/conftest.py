"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures or tables and prints
the resulting rows (compare them against EXPERIMENTS.md and the paper).
Experiments are expensive end-to-end simulations, so every benchmark runs
exactly once (``pedantic`` with one round) — the interesting output is the
table and the wall-clock time, not statistical timing jitter.

Every result is persisted through the result store, so each benchmark
leaves a JSON replicate plus manifest provenance (git revision,
wall-clock, event counts) behind, and the printed table is re-read from
the artifact — what you see is exactly what was stored.  The benchmark
clock wraps only ``run_experiment`` itself; store I/O happens after the
measured region, so timings stay comparable across store changes.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``default`` or
``paper`` (default: ``default``).  ``paper`` reproduces the published
parameters and can take hours in pure Python.  ``REPRO_BENCH_SEED`` picks
the replicate seed and ``REPRO_BENCH_RESULTS`` the store root (default:
``results/bench``).
"""

from __future__ import annotations

import os
import pathlib
import time

import pytest

from repro.experiments.registry import run_experiment
from repro.experiments.store import ResultStore
from repro.sim.engine import events_processed_total, reset_events_processed


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture(scope="session")
def bench_store() -> ResultStore:
    root = os.environ.get("REPRO_BENCH_RESULTS", os.path.join("results", "bench"))
    return ResultStore(pathlib.Path(root))


@pytest.fixture()
def run_and_print(benchmark, bench_scale, bench_seed, bench_store):
    """Run one experiment exactly once under the benchmark, persist it to
    the result store, and print the table reloaded from the artifact."""

    def runner(experiment_id: str):
        reset_events_processed()
        started = time.perf_counter()
        fresh = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": bench_scale, "seed": bench_seed},
            rounds=1,
            iterations=1,
        )
        wall_clock = time.perf_counter() - started
        bench_store.save(
            fresh,
            seed=bench_seed,
            wall_clock=wall_clock,
            events_processed=events_processed_total(),
        )
        result = bench_store.load(experiment_id, bench_scale, bench_seed)
        print()
        print(result.table())
        print(f"(stored: {bench_store.seed_path(experiment_id, bench_scale, bench_seed)})")
        return result

    return runner
