"""Benchmark configuration.

Each benchmark regenerates one of the paper's figures or tables and prints
the resulting rows (compare them against EXPERIMENTS.md and the paper).
Experiments are expensive end-to-end simulations, so every benchmark runs
exactly once (``pedantic`` with one round) — the interesting output is the
table and the wall-clock time, not statistical timing jitter.

Scale selection: set ``REPRO_BENCH_SCALE`` to ``smoke``, ``default`` or
``paper`` (default: ``default``).  ``paper`` reproduces the published
parameters and can take hours in pure Python.
"""

from __future__ import annotations

import os

import pytest

from repro.experiments import run_experiment


@pytest.fixture(scope="session")
def bench_scale() -> str:
    return os.environ.get("REPRO_BENCH_SCALE", "default")


@pytest.fixture(scope="session")
def bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "0"))


@pytest.fixture()
def run_and_print(benchmark, bench_scale, bench_seed):
    """Run one experiment exactly once under the benchmark and print it."""

    def runner(experiment_id: str):
        result = benchmark.pedantic(
            run_experiment,
            args=(experiment_id,),
            kwargs={"scale": bench_scale, "seed": bench_seed},
            rounds=1,
            iterations=1,
        )
        print()
        print(result.table())
        return result

    return runner
