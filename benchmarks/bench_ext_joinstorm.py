"""Scenario-engine benchmark: join storm over background flapping.

Expected shape: pre-storm success falls with the storm fraction (that
share of stage-1 replicas sits on not-yet-arrived nodes); post-storm
phases recover toward the flapping-only baseline, with MSPastry's
recovery delayed by rejoin thrash through flapping contacts.
"""


def test_ext_joinstorm(run_and_print):
    result = run_and_print("ext-joinstorm")
    fractions = sorted(set(result.column("storm_fraction")))
    for column in ("MSPastry", "MPIL with DS", "MPIL without DS"):
        index = result.columns.index(column)
        # pre-storm success is non-increasing in the storm fraction
        pre = [result.filtered(storm_fraction=f, phase="pre")[0][index] for f in fractions]
        assert all(later <= earlier for earlier, later in zip(pre, pre[1:]))
        # steady state beats the storm's pre phase at the largest fraction
        steady = result.filtered(storm_fraction=fractions[-1], phase="steady")[0][index]
        assert steady >= pre[-1]
        for row in result.rows:
            assert 0.0 <= row[index] <= 100.0
