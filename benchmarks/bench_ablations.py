"""Ablation benchmarks beyond the paper's tables (DESIGN.md §3):

- routing metric (common-digits vs prefix vs suffix — the Section 4.2
  distinguishability claim);
- duplicate suppression on/off for static insertion;
- lookup success as a function of the max_flows budget;
- tie-breaking policy sensitivity.
"""


def test_ablation_metric(run_and_print):
    result = run_and_print("ablation-metric")
    success = {row[0]: row[1] for row in result.rows}
    traffic = {row[0]: row[3] for row in result.rows}
    # Section 4.2: prefix/suffix metrics barely distinguish neighbors —
    # nearly every neighbor ties at score 0, so under MPIL's tie-splitting
    # they degenerate into flooding.  The common-digits metric reaches
    # comparable success at a fraction of the traffic.
    assert success["common-digits"] >= success["prefix"] - 15.0
    assert success["common-digits"] >= success["suffix"] - 15.0
    assert traffic["common-digits"] < traffic["prefix"]
    assert traffic["common-digits"] < traffic["suffix"]


def test_ablation_duplicate_suppression(run_and_print):
    result = run_and_print("ablation-ds")
    for family in ("power-law", "random"):
        on = result.filtered(family=family, ds="on")[0]
        off = result.filtered(family=family, ds="off")[0]
        assert off[3] >= on[3]  # DS off can only increase traffic


def test_ablation_flow_budget(run_and_print):
    result = run_and_print("ablation-flows")
    budgets = result.column("max_flows")
    success = result.column("success_%")
    assert budgets == sorted(budgets)
    assert success[-1] >= success[0]  # more flows, no worse success


def test_ablation_tiebreak(run_and_print):
    result = run_and_print("ablation-tiebreak")
    rates = result.column("success_%")
    assert max(rates) - min(rates) <= 25.0  # policy-insensitive
