"""Benchmark regenerating Figure 10: MPIL lookup latency (hops of the
first successful reply) and lookup traffic versus overlay size.

Expected shape: both stay roughly flat in N (bounded by the flow/replica
budget, not by overlay size)."""


def test_fig10_lookup_latency_and_traffic(run_and_print):
    result = run_and_print("fig10")
    for _family, _n, hops, traffic, first_traffic, success in result.rows:
        assert 0 <= hops < 20
        assert first_traffic <= traffic
        assert success >= 80.0
