"""Benchmark regenerating Figure 8: expected replicas on complete
topologies.  The base-4 series is the one matching the paper's 1.55-1.63
plot (see EXPERIMENTS.md)."""


def test_fig8_expected_replicas_complete(run_and_print):
    result = run_and_print("fig8")
    base4 = [row for row in result.rows if row[0].startswith("base-4")]
    values = [row[2] for row in sorted(base4, key=lambda r: r[1])]
    assert values == sorted(values)  # slowly increasing in N
    assert all(1.4 < v < 1.7 for v in values)
