"""Scenario-engine benchmark: adversarial (high-degree) vs random removal.

Expected shape: success falls as the removed fraction grows under either
targeting; removing the highest-degree nodes of the Pastry neighbor graph
hurts at least as much as removing the same number of random nodes
(Aspnes et al.'s targeted-deletion gap), and the zero-removal row is a
fully-online baseline at 100%.
"""


def test_ext_adversarial(run_and_print):
    result = run_and_print("ext-adversarial")
    fractions = result.column("removed_fraction")
    assert fractions == sorted(fractions)
    if fractions[0] == 0.0:
        # nothing removed: targeted and random arms are the same network
        baseline = result.rows[0]
        assert baseline[1:4] == baseline[4:7]
        assert all(v >= 90.0 for v in baseline[1:])
    for column in result.columns[1:]:
        values = result.column(column)
        assert all(0.0 <= v <= 100.0 for v in values)
        assert values[-1] <= values[0]
