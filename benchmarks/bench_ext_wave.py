"""Scenario-engine benchmark: churn waves (surging join/leave rates at
fixed 50% long-run availability).

Expected shape: availability-dominated success in the same band as plain
churn; the in-wave columns show surge damage growing with intensity while
the intensity-1 row matches steady churn.
"""


def test_ext_wave(run_and_print):
    result = run_and_print("ext-wave")
    intensities = result.column("wave_intensity")
    assert intensities == sorted(intensities)
    assert intensities[0] == 1.0
    for column in (
        "MSPastry",
        "MPIL with DS",
        "MPIL without DS",
        "MSPastry (in wave)",
        "MPIL with DS (in wave)",
        "MPIL without DS (in wave)",
    ):
        values = result.column(column)
        assert all(0.0 <= v <= 100.0 for v in values)
