"""Benchmark regenerating Figure 11: success under perturbation for
MSPastry, MSPastry+RR, MPIL with DS, and MPIL without DS, over
idle:offline in {1:1, 30:30, 300:300}.

Expected shape: MPIL (especially without DS) beats plain MSPastry under
long perturbation, and MSPastry collapses on 300:300 at high flapping
probability."""


def test_fig11_robustness_comparison(run_and_print):
    result = run_and_print("fig11")
    # at the heaviest long-term perturbation, MPIL must beat plain MSPastry
    heavy = [
        row
        for row in result.rows
        if row[0] == "300:300" and row[1] == max(result.column("flap_prob"))
    ]
    assert heavy
    _period, _p, pastry, _rr, mpil_ds, mpil_nods = heavy[0]
    assert max(mpil_ds, mpil_nods) >= pastry
