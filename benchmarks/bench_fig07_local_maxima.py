"""Benchmark regenerating Figure 7: expected local maxima for random
regular topologies (Section 5 closed form)."""


def test_fig7_expected_local_maxima(run_and_print):
    result = run_and_print("fig7")
    # maxima decrease with degree and increase with N
    for n in sorted(set(result.column("nodes"))):
        series = [row for row in result.rows if row[0] == n]
        values = [row[2] for row in sorted(series, key=lambda r: r[1])]
        assert values == sorted(values, reverse=True)
