"""Scenario-engine benchmark: correlated regional outage composed over
background flapping (severity sweep).

Expected shape: lookup success during the outage window falls as more
transit-stub regions go dark, for every protocol variant; at severity 1.0
only replicas held by the exempt client remain reachable, so success
collapses toward zero.
"""


def test_ext_outage(run_and_print):
    result = run_and_print("ext-outage")
    severities = result.column("outage_severity")
    assert severities == sorted(severities)
    assert severities[0] == 0.0 and severities[-1] == 1.0
    for column in ("MSPastry", "MPIL with DS", "MPIL without DS"):
        values = result.column(column)
        assert all(0.0 <= v <= 100.0 for v in values)
        # a full regional blackout must cost most of the baseline success
        assert values[-1] <= values[0]
        assert values[-1] <= 0.5 * max(values[0], 1.0)
