"""Benchmark regenerating Table 1: MPIL lookup success rate over power-law
topologies (nodes x max_flows x per-flow replicas).

Expected shape: success grows in per-flow replicas (r=1 around 50-60%,
near-100% for r >= 3) and grows in max_flows."""


def test_table1_powerlaw_success(run_and_print):
    result = run_and_print("tab1")
    for row in result.rows:
        r_values = row[2:]
        assert all(0.0 <= v <= 100.0 for v in r_values)
        # r=5 must beat r=1 (redundancy pays)
        assert r_values[-1] >= r_values[0]
