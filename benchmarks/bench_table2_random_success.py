"""Benchmark regenerating Table 2: MPIL lookup success rate over random
(fixed-degree) topologies.

Expected shape: already high at r=1 and saturating ~100% for r >= 2 —
higher than the power-law numbers of Table 1 at the same settings."""


def test_table2_random_success(run_and_print):
    result = run_and_print("tab2")
    for row in result.rows:
        r_values = row[2:]
        assert r_values[-1] >= r_values[0]
        assert r_values[-1] >= 90.0  # (30,5)-insertion + r=5 lookup saturates
