"""Benchmark regenerating Figure 1: the effect of perturbation on MSPastry.

Expected shape (paper): 45:15 stays above 90% at low p; 30:30 ~85% already
at p=0.1; 1:1 decays almost linearly; 300:300 collapses toward 0 for
p >= 0.8.
"""


def test_fig1_pastry_under_perturbation(run_and_print):
    result = run_and_print("fig1")
    by_period = {}
    for period, prob, success, *_rest in result.rows:
        by_period.setdefault(period, {})[prob] = success
    # sanity: every curve decays from p=0.1 to p=1.0
    for period, curve in by_period.items():
        assert curve[min(curve)] >= curve[max(curve)], period
    # the long-perturbation curve collapses hardest
    assert by_period["300:300"][1.0] <= by_period["45:15"][1.0]
