"""Extension benchmark: the Figure-11 comparison rerun under
continuous-time churn (exponential sessions, 50% availability).

Expected shape: with a memoryless renewal process at fixed 50%
availability, success is governed by instantaneous availability rather
than churn *speed*, so each variant's curve is roughly flat across mean
session lengths; maintenance-free MPIL stays in the same band as MSPastry
with its full maintenance machinery.
"""


def test_ext_churn(run_and_print):
    result = run_and_print("ext-churn")
    sessions = result.column("mean_session_s")
    assert sessions == sorted(sessions, reverse=True)
    for column in ("MSPastry", "MPIL with DS", "MPIL without DS"):
        values = result.column(column)
        assert all(0.0 <= v <= 100.0 for v in values)
        # roughly flat across churn speeds (availability-dominated)
        assert max(values) - min(values) <= 35.0
    # maintenance-free MPIL stays competitive with full-maintenance Pastry
    pastry_mean = sum(result.column("MSPastry")) / len(sessions)
    nods_mean = sum(result.column("MPIL without DS")) / len(sessions)
    assert nods_mean >= pastry_mean - 15.0
