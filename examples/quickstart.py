#!/usr/bin/env python
"""Quickstart: insert and look up objects with MPIL on an arbitrary overlay.

MPIL (Multi-Path Insertion/Lookup, Ko & Gupta, DSN 2005) routes by counting
the digits an object ID shares with each neighbor's ID and forwarding to the
best-scoring neighbors, storing replicas at *local maxima* of that metric.
It needs no overlay maintenance at all, so it runs on any graph you hand it.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import MPILConfig, MPILNetwork, fixed_degree_random_graph
from repro.sim.rng import derive_rng


def main() -> None:
    # 1. Any overlay works; here, 500 nodes with 20 random neighbors each.
    overlay = fixed_degree_random_graph(500, degree=20, seed=7)
    print(f"overlay: {overlay}")

    # 2. Wire up MPIL.  max_flows bounds the number of redundant paths per
    #    request; per_flow_replicas bounds replicas stored per path.
    config = MPILConfig(max_flows=10, per_flow_replicas=5)
    net = MPILNetwork(overlay, config=config, seed=7)

    # 3. Insert an object pointer from node 0.
    rng = derive_rng(7, "quickstart-objects")
    object_id = net.random_object_id(rng)
    insert = net.insert(origin=0, object_id=object_id)
    print(
        f"insert: stored {insert.replica_count} replicas "
        f"(bound {config.replica_bound}) using {insert.traffic} messages "
        f"over {insert.flows_created} flows"
    )
    print(f"        replica holders: {list(insert.replicas)}")

    # 4. Look it up from the other side of the network.
    lookup = net.lookup(origin=250, object_id=object_id)
    print(
        f"lookup: success={lookup.success}, first reply after "
        f"{lookup.first_reply_hop} hops and {lookup.traffic_at_first_reply} "
        f"messages ({lookup.traffic} total, {lookup.flows_created} flows)"
    )

    # 5. Delete the object everywhere (directory-level primitive; see
    #    examples in tests/test_replicas_and_heartbeats.py for the full
    #    heartbeat-based deletion protocol of Section 4.4).
    removed = net.delete(object_id)
    print(f"delete: removed {removed} replicas")
    assert not net.lookup(250, object_id).success


if __name__ == "__main__":
    main()
