#!/usr/bin/env python
"""Cooperative web caching: MPIL versus Pastry under perturbation.

A cluster of caches indexes URLs; each cache registers the pages it holds,
and misses are resolved by looking up which peer has the page.  Cache nodes
get perturbed (GC pauses, load spikes, restarts).  We compare the plain
Pastry substrate (with its maintenance) against MPIL running over the very
same overlay graph with maintenance disabled — the paper's Section 6.2
comparison, recast as the cooperative-web-caching application its
introduction motivates.

Run:  python examples/cooperative_web_cache.py
"""

from __future__ import annotations

import hashlib

from repro import IdSpace, MPILConfig
from repro.overlay.transit_stub import TransitStubUnderlay
from repro.pastry import PastryNetwork, ProbedViewOracle, make_mpil_over_pastry
from repro.pastry.rejoin import RejoinAdjustedAvailability
from repro.perturbation import FlappingConfig, FlappingSchedule
from repro.sim.latency import UnderlayLatency
from repro.sim.rng import derive_rng
from repro.util.tables import render_table

SEED = 11
NUM_CACHES = 250
NUM_PAGES = 120
FLAP = FlappingConfig.from_label("30:30", 0.7)


def url_key(space: IdSpace, url: str):
    digest = hashlib.sha1(url.encode("utf-8")).digest()
    return space.identifier(int.from_bytes(digest, "big") % space.size)


def main() -> None:
    underlay = TransitStubUnderlay.for_size(NUM_CACHES, seed=SEED)
    latency = UnderlayLatency(underlay, underlay.random_attachment(NUM_CACHES, seed=SEED))
    pastry = PastryNetwork(n=NUM_CACHES, latency=latency, seed=SEED)
    mpil = make_mpil_over_pastry(
        pastry,
        config=MPILConfig(max_flows=10, per_flow_replicas=5, duplicate_suppression=False),
        seed=SEED,
    )
    space = pastry.space

    # Index the pages each cache holds.
    rng = derive_rng(SEED, "pages")
    urls = [f"https://example.org/page/{i}" for i in range(NUM_PAGES)]
    for url in urls:
        holder = rng.randrange(NUM_CACHES)
        key = url_key(space, url)
        pastry.insert_static(holder, key)
        mpil.insert_static(holder, key, owner=holder)

    # Perturbation: the Pastry layer additionally suffers MSPastry's
    # eviction/rejoin recovery semantics; MPIL (no maintenance) sees raw
    # availability.
    client = 0
    schedule = FlappingSchedule(FLAP, NUM_CACHES, seed=SEED, always_online={client})
    pastry_avail = RejoinAdjustedAvailability(schedule, pastry.config, seed=SEED)
    views = ProbedViewOracle(pastry_avail, pastry.config, seed=SEED)
    mpil.availability = schedule

    pastry_hits = mpil_hits = 0
    pastry_msgs = mpil_msgs = 0
    for i, url in enumerate(urls):
        key = url_key(space, url)
        when = FLAP.cycle + i * FLAP.cycle
        outcome = pastry.lookup(
            client, key, start_time=when, availability=pastry_avail, views=views
        )
        pastry_hits += outcome.success
        pastry_msgs += outcome.messages + outcome.retransmissions
        timed = mpil.lookup_at(client, key, start_time=when)
        mpil_hits += timed.success
        mpil_msgs += timed.counters.messages_sent

    maintenance = views.expected_maintenance_messages(
        NUM_PAGES * FLAP.cycle,
        pastry.average_leafset_size(),
        pastry.average_table_entries(),
    )
    rows = [
        (
            "Pastry (with maintenance)",
            f"{100.0 * pastry_hits / NUM_PAGES:.1f}",
            pastry_msgs,
            round(maintenance),
            round(pastry_msgs + maintenance),
        ),
        (
            "MPIL (no maintenance)",
            f"{100.0 * mpil_hits / NUM_PAGES:.1f}",
            mpil_msgs,
            0,
            mpil_msgs,
        ),
    ]
    print(
        render_table(
            ("substrate", "hit rate %", "lookup msgs", "maintenance msgs", "total msgs"),
            rows,
            title=(
                f"Cooperative web cache, {NUM_CACHES} caches, "
                f"{FLAP.label} flapping at p={FLAP.probability}:"
            ),
        )
    )


if __name__ == "__main__":
    main()
