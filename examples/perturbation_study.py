#!/usr/bin/env python
"""A miniature Figure-11 study: sweep flapping probability and compare all
four protocol variants (MSPastry, MSPastry+RR, MPIL with DS, MPIL without
DS) on one idle:offline configuration.

Run:  python examples/perturbation_study.py [idle:offline]
      (default 30:30; try 300:300 to watch Pastry collapse)
"""

from __future__ import annotations

import sys

from repro.experiments.perturbed import (
    ALL_VARIANTS,
    VARIANT_LABELS,
    build_testbed,
    run_cell,
)
from repro.util.tables import render_table

SEED = 3
NUM_NODES = 200
NUM_OBJECTS = 60
PROBABILITIES = (0.2, 0.4, 0.6, 0.8, 1.0)


def main() -> None:
    period = sys.argv[1] if len(sys.argv) > 1 else "30:30"
    print(
        f"building {NUM_NODES}-node Pastry testbed on a transit-stub underlay "
        f"({NUM_OBJECTS} objects per variant)..."
    )
    testbed = build_testbed(NUM_NODES, NUM_OBJECTS, seed=SEED)
    rows = []
    for probability in PROBABILITIES:
        cells = run_cell(
            testbed, period, probability, NUM_OBJECTS, variants=ALL_VARIANTS
        )
        by_variant = {c.variant: c for c in cells}
        rows.append(
            (
                probability,
                *(round(by_variant[v].success_rate, 1) for v in ALL_VARIANTS),
            )
        )
    print(
        render_table(
            ("flap prob", *(VARIANT_LABELS[v] for v in ALL_VARIANTS)),
            rows,
            title=f"Success rate (%) under idle:offline = {period}:",
        )
    )
    print(
        "\nMPIL needs no overlay maintenance; its redundancy (multiple flows,"
        "\nmultiple replicas) is what keeps lookups succeeding as nodes flap."
    )


if __name__ == "__main__":
    main()
