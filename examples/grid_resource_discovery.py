#!/usr/bin/env python
"""Grid resource discovery over a legacy overlay.

The paper's motivating scenario: a Grid already maintains its own overlay
(here an Inet-like power-law graph standing in for a legacy Grid network),
and we want to deploy resource discovery *without* installing any new
overlay maintenance protocol.  Sites register their resources (CPU classes,
GPUs, scratch space) under hashed keywords; clients discover providers by
keyword while some sites flap due to load.

Run:  python examples/grid_resource_discovery.py
"""

from __future__ import annotations

import hashlib

from repro import IdSpace, MPILConfig
from repro.core.timed import TimedMPILNetwork
from repro.overlay import power_law_graph
from repro.perturbation import FlappingConfig, FlappingSchedule
from repro.sim.latency import UniformRandomLatency
from repro.sim.rng import derive_rng
from repro.util.tables import render_table

SEED = 5
NUM_SITES = 400
RESOURCE_CLASSES = [
    "cpu/x86-64/32-core",
    "cpu/arm/128-core",
    "gpu/a100/8x",
    "gpu/h100/4x",
    "storage/scratch/100tb",
    "storage/archive/1pb",
    "net/100gbe",
    "fpga/u280",
]


def keyword_id(space: IdSpace, keyword: str):
    """Hash a resource keyword into the identifier space (stable)."""
    digest = hashlib.sha1(keyword.encode("utf-8")).digest()
    value = int.from_bytes(digest, "big") % space.size
    return space.identifier(value)


def main() -> None:
    space = IdSpace()
    overlay = power_law_graph(NUM_SITES, seed=SEED)
    print(f"legacy Grid overlay: {overlay} (untouched — no new maintenance)")

    config = MPILConfig(max_flows=10, per_flow_replicas=5, duplicate_suppression=False)
    grid = TimedMPILNetwork(
        overlay,
        space=space,
        config=config,
        latency=UniformRandomLatency(0.01, 0.08, seed=SEED),
        seed=SEED,
    )

    # Providers register: each resource class is offered by a handful of
    # sites; the registration inserts a pointer under the hashed keyword.
    rng = derive_rng(SEED, "providers")
    providers: dict[str, list[int]] = {}
    for keyword in RESOURCE_CLASSES:
        sites = rng.sample(range(NUM_SITES), 4)
        providers[keyword] = sites
        for site in sites:
            grid.insert_static(site, keyword_id(space, keyword), owner=site)

    # Some sites flap (e.g. overloaded clusters): 30 s responsive / 30 s
    # unresponsive, with 60% of cycles going dark.
    flapping = FlappingSchedule(
        FlappingConfig(30, 30, 0.6), NUM_SITES, seed=SEED, always_online={0}
    )
    grid.availability = flapping

    rows = []
    client = 0
    for i, keyword in enumerate(RESOURCE_CLASSES):
        when = 120.0 + 45.0 * i
        result = grid.lookup_at(client, keyword_id(space, keyword), start_time=when)
        rows.append(
            (
                keyword,
                len(providers[keyword]),
                "yes" if result.success else "no",
                round(result.latency, 3) if result.latency is not None else "-",
                result.counters.messages_sent,
            )
        )
    print(
        render_table(
            ("resource class", "providers", "discovered", "latency (s)", "messages"),
            rows,
            title="Keyword discovery while 60% of sites flap (30s:30s):",
        )
    )
    discovered = sum(1 for row in rows if row[2] == "yes")
    print(f"\ndiscovered {discovered}/{len(RESOURCE_CLASSES)} resource classes "
          f"under perturbation, with zero overlay-maintenance traffic")


if __name__ == "__main__":
    main()
