#!/usr/bin/env python
"""Overlay independence: the same MPIL workload over four very different
overlays — complete, random regular, power-law (Inet-like), and a Pastry
structured overlay — with no per-overlay tuning.

This demonstrates the paper's first claim: "the insert and lookup
strategies, and to an extent their performance, should be independent of
the actual structure of the underlying overlay."

Run:  python examples/overlay_independence.py
"""

from __future__ import annotations

from repro import MPILConfig, MPILNetwork
from repro.overlay import complete_graph, fixed_degree_random_graph, power_law_graph
from repro.pastry import PastryNetwork, pastry_neighbor_overlay
from repro.sim.rng import derive_rng
from repro.util.tables import render_table

NUM_OPS = 40
SEED = 21


def overlays():
    yield "complete", complete_graph(300)
    yield "random-20", fixed_degree_random_graph(600, degree=20, seed=SEED)
    yield "power-law", power_law_graph(600, seed=SEED)
    pastry = PastryNetwork(n=300, seed=SEED)
    yield "pastry-structured", pastry_neighbor_overlay(pastry)


def main() -> None:
    config = MPILConfig(max_flows=10, per_flow_replicas=5)
    rows = []
    for name, overlay in overlays():
        net = MPILNetwork(overlay, config=config, seed=SEED)
        rng = derive_rng(SEED, "workload", name)
        successes = 0
        replicas = 0
        traffic = 0
        hops = 0
        for _ in range(NUM_OPS):
            obj = net.random_object_id(rng)
            insert = net.insert(rng.randrange(overlay.n), obj)
            replicas += insert.replica_count
            lookup = net.lookup(rng.randrange(overlay.n), obj)
            successes += lookup.success
            traffic += lookup.traffic
            if lookup.first_reply_hop is not None:
                hops += lookup.first_reply_hop
        rows.append(
            (
                name,
                round(100.0 * successes / NUM_OPS, 1),
                round(replicas / NUM_OPS, 1),
                round(traffic / NUM_OPS, 1),
                round(hops / max(1, successes), 2),
            )
        )
    print(
        render_table(
            ("overlay", "lookup success %", "avg replicas", "avg lookup traffic", "avg hops"),
            rows,
            title="One algorithm, four overlay families (no overlay-specific tuning):",
        )
    )


if __name__ == "__main__":
    main()
