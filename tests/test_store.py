"""Tests for the result store: round-tripping, layout, manifests, and
replicate aggregation."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import ExperimentError
from repro.experiments import run_experiment
from repro.experiments.base import ExperimentResult, ci95, stdev
from repro.experiments.store import (
    ResultStore,
    aggregate_results,
    git_revision,
    result_to_csv,
)


def make_result(
    seed_value: float = 1.0,
    experiment_id: str = "figx",
    key_columns: tuple = (),
) -> ExperimentResult:
    return ExperimentResult(
        experiment_id=experiment_id,
        title="synthetic",
        columns=("family", "nodes", "metric"),
        rows=[("power-law", 100, seed_value), ("random", 100, seed_value * 2)],
        notes="made up",
        scale="smoke",
        key_columns=key_columns,
    )


class TestRoundTrip:
    def test_to_from_dict_identity(self):
        result = make_result()
        assert ExperimentResult.from_dict(result.to_dict()) == result

    def test_round_trip_through_json_restores_tuples(self):
        result = run_experiment("fig7", scale="smoke", seed=0)
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(result.to_dict())))
        assert rebuilt == result
        assert isinstance(rebuilt.columns, tuple)
        assert all(isinstance(row, tuple) for row in rebuilt.rows)

    def test_from_dict_rejects_malformed_payload(self):
        with pytest.raises(ExperimentError, match="malformed"):
            ExperimentResult.from_dict({"title": "missing everything else"})


class TestStoreLayout:
    def test_save_writes_expected_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.save(make_result(), seed=3)
        assert path == tmp_path / "figx" / "smoke" / "seed_3.json"
        assert path.exists()
        assert store.manifest_path("figx", "smoke").exists()

    def test_save_load_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        result = make_result()
        store.save(result, seed=0)
        assert store.load("figx", "smoke", 0) == result

    def test_load_missing_raises(self, tmp_path):
        with pytest.raises(ExperimentError, match="no stored result"):
            ResultStore(tmp_path).load("figx", "smoke", 99)

    def test_seeds_listed_in_order(self, tmp_path):
        store = ResultStore(tmp_path)
        for seed in (5, 1, 3):
            store.save(make_result(float(seed)), seed=seed)
        assert store.seeds("figx", "smoke") == [1, 3, 5]
        assert store.seeds("unknown", "smoke") == []

    def test_seeds_order_independent_of_filesystem_enumeration(
        self, tmp_path, monkeypatch
    ):
        # directory enumeration order is filesystem-dependent; seeds()
        # must not leak it into manifests/aggregation.  Force glob to
        # yield a scrambled order and include seed_10 vs seed_9 to catch
        # lexicographic sorting too.
        store = ResultStore(tmp_path)
        for seed in (10, 2, 9, 0):
            store.save(make_result(float(seed)), seed=seed)

        real_glob = pathlib.Path.glob

        def scrambled_glob(self, pattern):
            return reversed(sorted(real_glob(self, pattern)))

        monkeypatch.setattr(pathlib.Path, "glob", scrambled_glob)
        assert store.seeds("figx", "smoke") == [0, 2, 9, 10]

    def test_manifest_records_provenance(self, tmp_path):
        store = ResultStore(tmp_path)
        store.save(make_result(), seed=0, wall_clock=1.5, events_processed=42)
        store.save(make_result(2.0), seed=1, wall_clock=0.5, events_processed=7)
        manifest = store.manifest("figx", "smoke")
        assert manifest["experiment_id"] == "figx"
        assert manifest["scale"] == "smoke"
        assert "git_rev" in manifest and "updated_at" in manifest
        assert set(manifest["runs"]) == {"seed_0", "seed_1"}
        run0 = manifest["runs"]["seed_0"]
        assert run0["wall_clock"] == 1.5
        assert run0["events_processed"] == 42
        assert run0["rows"] == 2
        assert "written_at" in run0

    def test_seed_json_is_deterministic(self, tmp_path):
        first = ResultStore(tmp_path / "a")
        second = ResultStore(tmp_path / "b")
        path_a = first.save(make_result(), seed=0, wall_clock=1.0)
        path_b = second.save(make_result(), seed=0, wall_clock=99.0)
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_git_revision_in_repo(self):
        rev = git_revision()
        assert rev == "unknown" or len(rev) == 40


class TestAggregation:
    def test_key_columns_pass_through_and_stats_expand(self):
        replicates = [make_result(v) for v in (1.0, 2.0, 3.0, 4.0)]
        aggregate = aggregate_results(replicates)
        assert aggregate.columns == (
            "family",
            "nodes",
            "metric_mean",
            "metric_stdev",
            "metric_ci95",
        )
        first = aggregate.rows[0]
        assert first[0] == "power-law" and first[1] == 100
        assert first[2] == pytest.approx(2.5)
        assert first[3] == pytest.approx(stdev([1.0, 2.0, 3.0, 4.0]), abs=1e-6)
        assert first[4] == pytest.approx(ci95([1.0, 2.0, 3.0, 4.0]), abs=1e-6)
        assert "aggregate of 4 replicates" in aggregate.notes

    def test_single_replicate_has_zero_spread(self):
        aggregate = aggregate_results([make_result(1.0)])
        # one replicate, no declared keys: every value is identical across
        # "all" replicates, so the heuristic passes every column through
        assert aggregate.columns == ("family", "nodes", "metric")

    def test_declared_key_columns_give_stable_schema(self):
        # metric coincides across replicates, but a declared key set means
        # the schema cannot depend on what values the seeds produced
        replicates = [
            make_result(1.0, key_columns=("family", "nodes")) for _ in range(3)
        ]
        aggregate = aggregate_results(replicates)
        assert aggregate.columns == (
            "family",
            "nodes",
            "metric_mean",
            "metric_stdev",
            "metric_ci95",
        )
        assert aggregate.rows[0][2:] == (1.0, 0.0, 0.0)
        assert aggregate.key_columns == ("family", "nodes")

    def test_unknown_key_columns_rejected(self):
        with pytest.raises(ExperimentError, match="key_columns"):
            aggregate_results([make_result(key_columns=("bogus",))] * 2)

    @pytest.mark.parametrize(
        "experiment_id", ["fig7", "fig9", "tab1", "ablation-tiebreak"]
    )
    def test_registered_experiments_declare_valid_keys(self, experiment_id):
        result = run_experiment(experiment_id, scale="smoke", seed=0)
        assert result.key_columns
        assert set(result.key_columns) < set(result.columns)

    def test_mismatched_shapes_rejected(self):
        wide = make_result()
        narrow = ExperimentResult(
            experiment_id="figx",
            title="synthetic",
            columns=("family",),
            rows=[("power-law",)],
            scale="smoke",
        )
        with pytest.raises(ExperimentError, match="mismatched"):
            aggregate_results([wide, narrow])

    def test_cross_cell_rejected(self):
        with pytest.raises(ExperimentError, match="across cells"):
            aggregate_results([make_result(), make_result(experiment_id="figy")])

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError, match="zero replicates"):
            aggregate_results([])

    def test_percentile_suffixes_aggregate(self):
        from repro.experiments.base import (
            DEFAULT_STAT_SUFFIXES,
            PERCENTILE_STAT_SUFFIXES,
            p95,
        )

        suffixes = DEFAULT_STAT_SUFFIXES + PERCENTILE_STAT_SUFFIXES
        values = [1.0, 2.0, 3.0, 4.0]
        replicates = []
        for v in values:
            result = make_result(v, key_columns=("family", "nodes"))
            replicates.append(
                ExperimentResult(
                    experiment_id=result.experiment_id,
                    title=result.title,
                    columns=result.columns,
                    rows=result.rows,
                    notes=result.notes,
                    scale=result.scale,
                    key_columns=result.key_columns,
                    stat_suffixes=suffixes,
                )
            )
        aggregate = aggregate_results(replicates)
        assert aggregate.columns == (
            "family",
            "nodes",
            "metric_mean",
            "metric_stdev",
            "metric_ci95",
            "metric_p50",
            "metric_p95",
            "metric_p99",
        )
        first = aggregate.rows[0]
        assert first[2] == pytest.approx(2.5)
        assert first[5] == pytest.approx(2.5)  # p50 over the 4 replicates
        assert first[6] == pytest.approx(p95(values), abs=1e-6)
        assert aggregate.stat_suffixes == suffixes

    def test_unknown_stat_suffix_rejected(self):
        result = make_result(1.0, key_columns=("family", "nodes"))
        bad = ExperimentResult(
            experiment_id=result.experiment_id,
            title=result.title,
            columns=result.columns,
            rows=result.rows,
            scale=result.scale,
            key_columns=result.key_columns,
            stat_suffixes=("_mean", "_p42"),
        )
        with pytest.raises(ExperimentError, match="_p42"):
            aggregate_results([bad, bad])

    def test_stat_suffixes_round_trip(self):
        from repro.experiments.base import PERCENTILE_STAT_SUFFIXES

        result = make_result()
        custom = ExperimentResult(
            experiment_id=result.experiment_id,
            title=result.title,
            columns=result.columns,
            rows=result.rows,
            scale=result.scale,
            stat_suffixes=PERCENTILE_STAT_SUFFIXES,
        )
        rebuilt = ExperimentResult.from_dict(json.loads(json.dumps(custom.to_dict())))
        assert rebuilt == custom
        assert rebuilt.stat_suffixes == PERCENTILE_STAT_SUFFIXES

    def test_write_aggregate_artifacts(self, tmp_path):
        store = ResultStore(tmp_path)
        aggregate = aggregate_results([make_result(v) for v in (1.0, 2.0)])
        json_path, csv_path = store.write_aggregate(aggregate, seeds=[0, 1])
        payload = json.loads(json_path.read_text())
        assert payload["seeds"] == [0, 1]
        assert tuple(payload["columns"]) == aggregate.columns
        csv_text = csv_path.read_text()
        assert csv_text.splitlines()[0] == "family,nodes,metric_mean,metric_stdev,metric_ci95"
        assert len(csv_text.splitlines()) == 1 + len(aggregate.rows)


class TestCsv:
    def test_result_to_csv(self):
        text = result_to_csv(make_result())
        lines = text.splitlines()
        assert lines[0] == "family,nodes,metric"
        assert lines[1] == "power-law,100,1.0"
        assert lines[2] == "random,100,2.0"
