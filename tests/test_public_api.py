"""API-surface stability tests: the documented public names exist, are
importable from the documented locations, and the README quickstart works
verbatim."""

from __future__ import annotations

import importlib

import pytest


TOP_LEVEL_EXPORTS = [
    "FlappingConfig",
    "FlappingSchedule",
    "Identifier",
    "IdSpace",
    "InsertResult",
    "LookupResult",
    "MPILConfig",
    "MPILNetwork",
    "OverlayGraph",
    "PastryConfig",
    "PastryNetwork",
    "ProbedViewOracle",
    "TimedLookupResult",
    "TimedMPILNetwork",
    "TransitStubUnderlay",
    "complete_graph",
    "fixed_degree_random_graph",
    "power_law_graph",
    "random_regular_graph",
]

SUBPACKAGE_EXPORTS = {
    "repro.core": ["MPILNetwork", "NeighborMetricTable", "common_digits"],
    "repro.overlay": ["OverlayGraph", "power_law_graph", "TransitStubUnderlay"],
    "repro.pastry": ["PastryNetwork", "make_mpil_over_pastry", "pastry_neighbor_overlay"],
    "repro.perturbation": ["ChurnConfig", "ChurnSchedule", "FlappingSchedule"],
    "repro.analysis": ["expected_local_maxima_regular", "expected_replicas_complete"],
    "repro.baselines": ["flood_lookup", "random_walk_lookup"],
    "repro.experiments": ["run_experiment", "all_experiment_ids", "SCALES"],
    "repro.sim": ["EventScheduler", "derive_rng", "TrafficCounters"],
    "repro.util": ["render_table"],
}


def test_top_level_exports_exist():
    repro = importlib.import_module("repro")
    for name in TOP_LEVEL_EXPORTS:
        assert hasattr(repro, name), name
        assert name in repro.__all__
    assert repro.__version__


@pytest.mark.parametrize("module_name", sorted(SUBPACKAGE_EXPORTS))
def test_subpackage_exports_exist(module_name):
    module = importlib.import_module(module_name)
    for name in SUBPACKAGE_EXPORTS[module_name]:
        assert hasattr(module, name), f"{module_name}.{name}"


def test_readme_quickstart_runs_verbatim():
    from repro import MPILConfig, MPILNetwork, fixed_degree_random_graph
    from repro.sim.rng import derive_rng

    overlay = fixed_degree_random_graph(500, degree=20, seed=7)
    net = MPILNetwork(
        overlay, config=MPILConfig(max_flows=10, per_flow_replicas=5), seed=7
    )
    rng = derive_rng(7, "objects")
    obj = net.random_object_id(rng)
    insert = net.insert(origin=0, object_id=obj)
    lookup = net.lookup(origin=250, object_id=obj)
    assert lookup.success
    assert insert.replica_count >= 1


def test_module_docstrings_present():
    """Every public module documents itself (release-quality hygiene)."""
    for module_name in [
        "repro",
        "repro.core",
        "repro.core.network",
        "repro.core.timed",
        "repro.core.routing",
        "repro.pastry.protocol",
        "repro.pastry.views",
        "repro.pastry.rejoin",
        "repro.perturbation.flapping",
        "repro.perturbation.churn",
        "repro.analysis.local_maxima",
        "repro.baselines.flooding",
        "repro.baselines.walks",
        "repro.experiments.perturbed",
    ]:
        module = importlib.import_module(module_name)
        assert module.__doc__ and len(module.__doc__.strip()) > 40, module_name


def test_api_sweep_resume_and_status(tmp_path):
    """The facade exposes the resumable-sweep surface end to end."""
    from repro import api

    report = api.sweep("fig7", seeds="0..1", scale="smoke", jobs=1,
                       store=tmp_path)
    assert len(report.outcomes) == 2

    resumed = api.sweep("fig7", seeds="0..2", scale="smoke", jobs=1,
                        store=tmp_path, resume=True)
    assert [outcome.seed for outcome in resumed.outcomes] == [2]
    assert sorted(entry.seed for entry in resumed.skipped) == [0, 1]

    rows = api.sweep_status(tmp_path, experiment="fig7")
    assert [(row.seed, row.state) for row in rows] == [
        (0, "done"), (1, "done"), (2, "done"),
    ]
    assert api.sweep_status(tmp_path, experiment="fig7", scale="paper") == []

    # the queryable store index answers without reading JSON artifacts
    from repro.experiments.store import ResultStore

    records = ResultStore(tmp_path).query("fig7", "smoke")
    assert [record.seed for record in records] == [0, 1, 2]


def test_api_serve_facade():
    """api.serve mirrors the CLI serve command, overrides included."""
    from repro import api
    from repro.errors import ExperimentError

    result = api.serve("svc-steady", scale="smoke", seed=1,
                       rate=0.5, duration=60.0, window=30.0)
    assert "latency_p99" in result.columns
    assert "_p99" in result.stat_suffixes
    # two windows per run at duration 60 / window 30
    windows = set(result.column("window"))
    assert windows == {0, 1}

    with pytest.raises(ExperimentError, match="not a service-mode"):
        api.serve("fig7", scale="smoke")
    assert "serve" in api.__all__
