"""Tests for the pure MPIL forwarding decision (Figure 5)."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.routing import ForwardDecision, decide_forwarding


def _decide(self_score, ids, scores, excluded=(), max_flows=10, given=0, tie="lowest-id", rule="all-neighbors", seed=0):
    return decide_forwarding(
        self_score=self_score,
        neighbor_ids=np.asarray(ids, dtype=np.int64),
        neighbor_scores=np.asarray(scores, dtype=np.int32),
        excluded=set(excluded),
        max_flows=max_flows,
        given_flows=given,
        rng=random.Random(seed),
        tie_break=tie,
        local_max_rule=rule,
    )


class TestCandidateSelection:
    def test_forwards_to_single_best(self):
        decision = _decide(1, [10, 11, 12], [3, 1, 2])
        assert decision.next_hops == (10,)
        assert decision.best_candidate_score == 3

    def test_ties_create_multiple_next_hops(self):
        decision = _decide(1, [10, 11, 12], [3, 3, 2])
        assert set(decision.next_hops) == {10, 11}

    def test_route_exclusion(self):
        decision = _decide(1, [10, 11, 12], [3, 1, 2], excluded={10})
        assert decision.next_hops == (12,)

    def test_all_excluded_means_no_forwarding(self):
        decision = _decide(1, [10, 11], [3, 1], excluded={10, 11})
        assert decision.next_hops == ()
        assert decision.best_candidate_score is None

    def test_downhill_forwarding_continues(self):
        """Continuous forwarding: the best candidate is used even when its
        score is below the current node's (Section 4.2)."""
        decision = _decide(4, [10, 11], [2, 1])
        assert decision.next_hops == (10,)
        assert decision.is_local_max  # and the node is a local maximum


class TestLocalMaximum:
    def test_strictly_higher_neighbor_blocks_local_max(self):
        assert not _decide(2, [10], [3]).is_local_max

    def test_tie_with_neighbor_is_still_local_max(self):
        """'none of its neighbor nodes have a HIGHER value' — ties count."""
        assert _decide(3, [10], [3]).is_local_max

    def test_all_neighbors_rule_sees_visited_neighbors(self):
        # Visited neighbor has score 5 > self 4: not a local max under the
        # paper's rule even though it is excluded from forwarding.
        decision = _decide(4, [10, 11], [5, 1], excluded={10}, rule="all-neighbors")
        assert not decision.is_local_max
        assert decision.next_hops == (11,)

    def test_unvisited_only_rule_ignores_visited(self):
        decision = _decide(4, [10, 11], [5, 1], excluded={10}, rule="unvisited-only")
        assert decision.is_local_max

    def test_isolated_node_is_local_max(self):
        decision = _decide(0, [], [], max_flows=5)
        assert decision.is_local_max
        assert decision.next_hops == ()


class TestBudgets:
    def test_origin_single_send_decrements(self):
        decision = _decide(1, [10], [3], max_flows=2, given=0)
        assert decision.budgets == (1,)
        assert decision.new_flows == 1

    def test_relay_single_send_preserves(self):
        decision = _decide(1, [10], [3], max_flows=2, given=1)
        assert decision.budgets == (2,)
        assert decision.new_flows == 0

    def test_split_divides_budget(self):
        decision = _decide(1, [10, 11], [3, 3], max_flows=7, given=1)
        assert sorted(decision.budgets, reverse=True) == [3, 3]
        assert decision.new_flows == 1

    def test_fanout_capped_by_budget(self):
        decision = _decide(1, [10, 11, 12, 13], [3, 3, 3, 3], max_flows=1, given=1)
        assert decision.fanout == 2  # min(4 candidates, 1 + 1)
        assert decision.budgets == (0, 0)

    def test_zero_budget_relay_keeps_one_path(self):
        decision = _decide(1, [10, 11], [3, 3], max_flows=0, given=1)
        assert decision.fanout == 1
        assert decision.budgets == (0,)
        assert decision.new_flows == 0


class TestTieBreaking:
    def test_lowest_id_deterministic(self):
        decision = _decide(
            1, [12, 10, 11], [3, 3, 3], max_flows=1, given=1, tie="lowest-id"
        )
        assert decision.next_hops == (10, 11)

    def test_random_tie_break_uses_rng(self):
        picks = set()
        for seed in range(12):
            decision = _decide(
                1, [10, 11, 12], [3, 3, 3], max_flows=0, given=1, tie="random", seed=seed
            )
            picks.add(decision.next_hops)
        assert len(picks) > 1  # different seeds pick different subsets

    def test_no_sampling_needed_when_budget_covers_all(self):
        decision = _decide(1, [12, 10], [3, 3], max_flows=9, given=1, tie="random")
        assert set(decision.next_hops) == {10, 12}


def test_decision_is_frozen():
    decision = _decide(1, [10], [2])
    assert isinstance(decision, ForwardDecision)
    with pytest.raises(AttributeError):
        decision.next_hops = ()
