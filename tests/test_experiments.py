"""Smoke tests for the experiment harness: every registered experiment
runs at smoke scale and returns a well-formed, non-empty result."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    all_experiment_ids,
    get_experiment,
    get_scale,
    run_experiment,
)
from repro.experiments.base import mean
from repro.experiments.scales import SCALES, Scale
from repro.experiments.workloads import make_overlay, run_inserts, run_lookups

FAST_IDS = [
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "tab1",
    "tab2",
    "tab3",
    "ablation-metric",
    "ablation-ds",
    "ablation-flows",
    "ablation-tiebreak",
    "baseline-comparison",
]
PERTURBED_IDS = ["fig1", "fig11", "fig12", "ext-churn"]


class TestScales:
    def test_known_scales(self):
        assert set(SCALES) == {"smoke", "default", "paper", "large", "massive"}
        assert get_scale("smoke").name == "smoke"

    def test_scale_passthrough(self):
        scale = SCALES["smoke"]
        assert get_scale(scale) is scale

    def test_unknown_scale(self):
        with pytest.raises(ExperimentError):
            get_scale("gigantic")

    def test_paper_scale_matches_publication(self):
        paper = get_scale("paper")
        assert paper.static_node_counts == (4000, 8000, 16000)
        assert paper.static_graphs == 10
        assert paper.static_ops == 100
        assert paper.pastry_nodes == 1000
        assert paper.perturbed_lookups == 1000


class TestRegistry:
    def test_ids_present(self):
        ids = all_experiment_ids()
        for required in ("fig1", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
                         "tab1", "tab2", "tab3"):
            assert required in ids

    def test_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            get_experiment("fig99")
        with pytest.raises(ExperimentError):
            run_experiment("fig99")


@pytest.mark.parametrize("experiment_id", FAST_IDS)
def test_fast_experiments_smoke(experiment_id):
    result = run_experiment(experiment_id, scale="smoke", seed=0)
    assert isinstance(result, ExperimentResult)
    assert result.experiment_id == experiment_id
    assert result.rows
    assert all(len(row) == len(result.columns) for row in result.rows)
    text = result.table()
    assert experiment_id in text
    assert result.scale == "smoke"


@pytest.mark.parametrize("experiment_id", PERTURBED_IDS)
def test_perturbed_experiments_smoke(experiment_id):
    result = run_experiment(experiment_id, scale="smoke", seed=0)
    assert result.rows
    success_columns = [
        i
        for i, c in enumerate(result.columns)
        if "success" in c.lower() or "MPIL" in c or "MSPastry" in c
    ]
    if "success" in " ".join(result.columns).lower() or success_columns:
        for row in result.rows:
            for i in success_columns:
                if isinstance(row[i], (int, float)):
                    assert 0.0 <= row[i] <= 100.0


class TestResultHelpers:
    def test_column_and_filtered(self):
        result = ExperimentResult(
            experiment_id="x",
            title="t",
            columns=("a", "b"),
            rows=[(1, "u"), (2, "v"), (1, "w")],
        )
        assert result.column("a") == [1, 2, 1]
        assert result.filtered(a=1) == [(1, "u"), (1, "w")]

    def test_mean_empty(self):
        assert mean([]) == 0.0
        assert mean([1, 2, 3]) == 2.0


class TestWorkloads:
    def test_make_overlay_families(self):
        for family in ("power-law", "random"):
            overlay = make_overlay(family, 200, 0, seed=0)
            assert overlay.n == 200

    def test_run_inserts_then_lookups(self):
        run = run_inserts("random", 200, 0, 8, seed=1)
        assert len(run.objects) == 8
        assert len(run.insert_results) == 8
        lookups = run_lookups(run, max_flows=10, per_flow_replicas=3, seed=1)
        assert len(lookups) == 8
        assert sum(l.success for l in lookups) >= 6

    def test_workload_deterministic(self):
        a = run_inserts("random", 200, 0, 5, seed=2)
        b = run_inserts("random", 200, 0, 5, seed=2)
        assert [r.replicas for r in a.insert_results] == [
            r.replicas for r in b.insert_results
        ]

    def test_custom_scale_object_accepted(self):
        scale = Scale(
            name="custom",
            static_node_counts=(120,),
            static_graphs=1,
            static_ops=4,
            analysis_node_counts=(1000,),
            analysis_degrees=(10,),
            complete_node_counts=(1000,),
            pastry_nodes=50,
            perturbed_inserts=5,
            perturbed_lookups=5,
            flap_probabilities=(0.5,),
        )
        result = run_experiment("fig7", scale=scale, seed=0)
        assert result.rows


class TestServiceExperiments:
    """The sustained-traffic service modes (svc-*)."""

    def test_registered_with_service_tag(self):
        from repro.experiments.registry import get_spec

        ids = all_experiment_ids()
        for required in ("svc-steady", "svc-outage"):
            assert required in ids
            assert "service" in get_spec(required).tags

    def test_svc_steady_smoke(self):
        result = run_experiment("svc-steady", scale="smoke", seed=0)
        assert result.columns[0] == "load"
        assert {"variant", "window", "latency_p99", "slo_ok"} < set(result.columns)
        loads = set(result.column("load"))
        assert loads == set(get_scale("smoke").service_loads)
        assert all(len(row) == len(result.columns) for row in result.rows)
        # percentile ordering holds in every window
        cols = result.columns
        for row in result.rows:
            p50, p95, p99 = (row[cols.index(c)] for c in
                             ("latency_p50", "latency_p95", "latency_p99"))
            assert p50 <= p95 <= p99

    def test_svc_outage_deterministic_with_nonzero_p99(self):
        first = run_experiment("svc-outage", scale="smoke", seed=0)
        second = run_experiment("svc-outage", scale="smoke", seed=0)
        assert first.rows == second.rows
        p99s = first.column("latency_p99")
        assert any(value > 0 for value in p99s)
        # a full-severity outage must break some SLO windows
        severity = first.column("outage_severity")
        slo = first.column("slo_ok")
        assert any(s == 1.0 and ok == 0 for s, ok in zip(severity, slo))

    def test_service_replicates_aggregate_with_percentiles(self):
        from repro.experiments.store import aggregate_results

        replicates = [
            run_experiment("svc-steady", scale="smoke", seed=seed)
            for seed in (0, 1)
        ]
        aggregate = aggregate_results(replicates)
        assert "latency_p99_p95" in aggregate.columns
        assert "latency_p99_mean" in aggregate.columns
        assert "throughput_ci95" in aggregate.columns
