"""Tests for the GT-ITM-style transit-stub underlay."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overlay.transit_stub import TransitStubParams, TransitStubUnderlay


class TestStructure:
    def test_node_count_matches_params(self):
        params = TransitStubParams(
            transit_domains=2,
            transit_nodes_per_domain=3,
            stub_domains_per_transit=2,
            stub_nodes_per_domain=5,
        )
        underlay = TransitStubUnderlay(params, seed=0)
        assert underlay.num_nodes == params.total_nodes == 6 + 6 * 2 * 5

    def test_for_size_close_to_target(self):
        underlay = TransitStubUnderlay.for_size(1000, seed=1)
        assert 800 <= underlay.num_nodes <= 1200

    def test_for_size_small(self):
        underlay = TransitStubUnderlay.for_size(30, seed=1)
        assert underlay.num_nodes >= 10

    def test_param_validation(self):
        with pytest.raises(ConfigurationError):
            TransitStubParams(transit_domains=0)
        with pytest.raises(ConfigurationError):
            TransitStubParams(jitter=1.5)

    def test_transit_and_stub_partition(self):
        underlay = TransitStubUnderlay.for_size(200, seed=2)
        transit = set(underlay.transit_nodes)
        stub = set(underlay.stub_nodes)
        assert transit.isdisjoint(stub)
        assert len(transit) + len(stub) == underlay.num_nodes


class TestLatencies:
    def test_connected_all_pairs_finite(self):
        underlay = TransitStubUnderlay.for_size(120, seed=3)
        matrix = underlay.latency_matrix()
        assert matrix.shape == (underlay.num_nodes, underlay.num_nodes)
        assert (matrix[~(matrix == 0)] > 0).all()

    def test_symmetric(self):
        underlay = TransitStubUnderlay.for_size(120, seed=4)
        assert underlay.pairwise_latency(3, 40) == pytest.approx(
            underlay.pairwise_latency(40, 3)
        )

    def test_intra_stub_cheaper_than_cross_transit(self):
        params = TransitStubParams(stub_nodes_per_domain=10)
        underlay = TransitStubUnderlay(params, seed=5)
        stub_start = len(list(underlay.transit_nodes))
        # two nodes in the same stub domain vs nodes attached to different
        # transit domains (first and last stub domains)
        same_stub = underlay.pairwise_latency(stub_start, stub_start + 1)
        far = underlay.pairwise_latency(stub_start, underlay.num_nodes - 1)
        assert same_stub < far

    def test_deterministic_given_seed(self):
        a = TransitStubUnderlay.for_size(100, seed=6)
        b = TransitStubUnderlay.for_size(100, seed=6)
        assert a.edge_list() == b.edge_list()


class TestAttachment:
    def test_attachment_uses_stub_nodes(self):
        underlay = TransitStubUnderlay.for_size(150, seed=7)
        attachment = underlay.random_attachment(50, seed=8)
        stub = set(underlay.stub_nodes)
        assert len(attachment) == 50
        assert all(a in stub for a in attachment)
        assert len(set(attachment)) == 50  # distinct when stubs suffice

    def test_oversubscribed_attachment_allows_repeats(self):
        underlay = TransitStubUnderlay.for_size(30, seed=9)
        attachment = underlay.random_attachment(
            len(list(underlay.stub_nodes)) + 10, seed=10
        )
        assert len(attachment) == len(list(underlay.stub_nodes)) + 10
