"""Tests for the mpil-experiments command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig7"])
        assert args.command == "run"
        assert args.experiments == ["fig7"]
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig7", "fig8", "--scale", "smoke", "--seed", "3", "--out", str(tmp_path)]
        )
        assert args.experiments == ["fig7", "fig8"]
        assert args.scale == "smoke"
        assert args.seed == 3

    def test_unknown_scale_rejected(self, capsys):
        # not an argparse choices error anymore (registered rungs must
        # resolve too): the run resolves the rung and fails with the
        # one-line error listing every known rung
        code = main(["run", "fig7", "--scale", "galactic"])
        assert code == 2
        err = capsys.readouterr().err
        assert "unknown scale 'galactic'" in err
        assert "large" in err and "massive" in err

    def test_sweep_defaults(self):
        args = build_parser().parse_args(["sweep", "fig9"])
        assert args.command == "sweep"
        assert args.experiments == ["fig9"]
        assert args.seeds == "0..9"
        assert args.jobs == 1
        assert args.format == "table"
        assert str(args.out) == "results"

    def test_sweep_with_options(self, tmp_path):
        args = build_parser().parse_args(
            [
                "sweep",
                "fig9",
                "tab1",
                "--seeds",
                "0..3",
                "--jobs",
                "2",
                "--scale",
                "smoke",
                "--format",
                "json",
                "--out",
                str(tmp_path),
            ]
        )
        assert args.experiments == ["fig9", "tab1"]
        assert args.seeds == "0..3"
        assert args.jobs == 2
        assert args.format == "json"

    def test_sweep_bad_format_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "fig9", "--format", "xml"])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig1", "fig7", "tab1", "ablation-metric", "ext-outage"):
            assert experiment_id in output

    def test_list_filters_by_tags(self, capsys):
        assert main(["list", "--tags", "ext"]) == 0
        output = capsys.readouterr().out
        lines = [line for line in output.splitlines() if line.strip()]
        assert len(lines) == 7
        assert all(line.startswith(("ext-", "svc-")) for line in lines)

    def test_list_verbose_shows_metadata(self, capsys):
        assert main(["list", "--tags", "figure,paper", "--verbose"]) == 0
        output = capsys.readouterr().out
        assert "reproduces Figure 9" in output
        assert "tags:" in output
        assert "tab1" not in output  # tables are not tagged 'figure'

    def test_scenarios_prints_catalogue(self, capsys):
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        for family in ("flapping", "regional-outage", "join-storm"):
            assert family in output

    def test_scenarios_family_details(self, capsys):
        assert main(["scenarios", "churn-wave"]) == 0
        output = capsys.readouterr().out
        assert "ChurnWaveSchedule" in output
        assert "ext-wave" in output

    def test_scenarios_catalogue_joins_registry_metadata(self, capsys):
        """The experiment column comes from each spec's scenario_family —
        flapping lists all three paper sweeps, not a hand-maintained one."""
        assert main(["scenarios"]) == 0
        output = capsys.readouterr().out
        flapping_line = next(
            line for line in output.splitlines() if line.startswith("flapping")
        )
        assert "fig1,fig11,fig12" in flapping_line
        assert "ext-adversarial" in output

    def test_scenarios_figure_sweep(self, capsys):
        assert main(["scenarios", "--figure", "fig11"]) == 0
        output = capsys.readouterr().out
        assert "300:300" in output

    def test_run_prints_table(self, capsys):
        assert main(["run", "fig7", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "expected_local_maxima" in output
        assert "completed in" in output

    def test_run_writes_seeded_artifacts(self, tmp_path, capsys):
        assert main(["run", "fig8", "--scale", "smoke", "--seed", "2", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        written = tmp_path / "fig8_smoke_seed2.txt"
        assert written.exists()
        assert "expected_replicas" in written.read_text()
        # the run also went through the result store
        stored = tmp_path / "fig8" / "smoke" / "seed_2.json"
        assert stored.exists()
        assert (tmp_path / "fig8" / "smoke" / "manifest.json").exists()

    def test_run_different_seeds_do_not_overwrite(self, tmp_path, capsys):
        assert main(["run", "fig7", "--scale", "smoke", "--seed", "0", "--out", str(tmp_path)]) == 0
        assert main(["run", "fig7", "--scale", "smoke", "--seed", "1", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "fig7_smoke_seed0.txt").exists()
        assert (tmp_path / "fig7_smoke_seed1.txt").exists()


class TestSweepMain:
    def test_sweep_writes_store_and_prints_aggregate(self, tmp_path, capsys):
        code = main(
            [
                "sweep",
                "fig7",
                "--seeds",
                "0..2",
                "--scale",
                "smoke",
                "--out",
                str(tmp_path),
                "--format",
                "json",
            ]
        )
        assert code == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["experiment_id"] == "fig7"
        assert "swept 3 tasks" in captured.err
        for seed in range(3):
            assert (tmp_path / "fig7" / "smoke" / f"seed_{seed}.json").exists()
        assert (tmp_path / "fig7" / "smoke" / "aggregate.json").exists()
        assert (tmp_path / "fig7" / "smoke" / "aggregate.csv").exists()

    def test_sweep_table_format(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0,1",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "fig7:" in output

    def test_sweep_csv_format(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0..1",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                    "--format",
                    "csv",
                ]
            )
            == 0
        )
        lines = capsys.readouterr().out.splitlines()
        assert lines[0].startswith("nodes,") or "," in lines[0]


SPEC_TOML = """
[experiment]
id = "{experiment_id}"
title = "CLI-composed severity sweep"
tags = ["composed"]

[sweep]
column = "severity"
values = [0.0, 1.0]

[[scenario]]
family = "regional-outage"
start = 90.0
duration = 600.0
severity = "$severity"
"""


class TestComposeMain:
    def _write_spec(self, tmp_path, experiment_id):
        pytest.importorskip("tomllib")
        path = tmp_path / "sweep.toml"
        path.write_text(SPEC_TOML.format(experiment_id=experiment_id))
        return path

    def _unregister(self, experiment_id):
        from repro.experiments import unregister

        unregister(experiment_id)

    def test_compose_runs_and_prints_table(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, "cli-composed")
        try:
            assert main(["compose", str(path), "--scale", "smoke"]) == 0
        finally:
            self._unregister("cli-composed")
        output = capsys.readouterr().out
        assert "cli-composed" in output
        assert "severity" in output
        assert "completed in" in output

    def test_compose_writes_store_artifacts(self, tmp_path, capsys):
        path = self._write_spec(tmp_path, "cli-composed-out")
        out = tmp_path / "results"
        try:
            code = main(
                ["compose", str(path), "--scale", "smoke", "--seed", "2",
                 "--out", str(out)]
            )
        finally:
            self._unregister("cli-composed-out")
        assert code == 0
        capsys.readouterr()
        assert (out / "cli-composed-out" / "smoke" / "seed_2.json").exists()
        assert (out / "cli-composed-out_smoke_seed2.txt").exists()

    def test_compose_rejects_registered_id(self, tmp_path, capsys):
        """A spec file cannot shadow a built-in experiment id."""
        path = self._write_spec(tmp_path, "fig9")
        assert main(["compose", str(path), "--scale", "smoke"]) == 2
        err = capsys.readouterr().err
        assert "already registered" in err
        assert "Traceback" not in err

    def test_compose_rejects_registered_id_in_fresh_process(self, tmp_path):
        """The shadow check must hold even when compose is the process's
        first registry touch (register() loads the built-ins itself)."""
        import json as json_module
        import subprocess
        import sys

        path = tmp_path / "shadow.json"
        path.write_text(
            json_module.dumps(
                {
                    "experiment": {"id": "fig9", "title": "shadow attempt"},
                    "sweep": {"column": "severity", "values": [0.0]},
                    "scenario": [
                        {
                            "family": "regional-outage",
                            "start": 90.0,
                            "duration": 600.0,
                            "severity": "$severity",
                        }
                    ],
                }
            )
        )
        import os
        import pathlib

        src = str(pathlib.Path(__file__).resolve().parent.parent / "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.experiments.cli", "compose", str(path),
             "--scale", "smoke"],
            capture_output=True,
            text=True,
            env=env,
        )
        assert proc.returncode == 2, proc.stderr
        assert "already registered" in proc.stderr
        assert "Traceback" not in proc.stderr


class TestErrorPaths:
    """Every expected user-facing error (ExperimentError/ConfigurationError)
    surfaces as one stderr line, never a traceback; internal-bug classes
    still propagate with their stack."""

    def _assert_one_line_error(self, capsys, argv, fragment):
        assert main(argv) == 2
        captured = capsys.readouterr()
        error_lines = captured.err.strip().splitlines()
        assert len(error_lines) == 1
        assert error_lines[0].startswith("mpil-experiments")
        assert "error:" in error_lines[0]
        assert fragment in error_lines[0]
        assert "Traceback" not in captured.err

    def test_unknown_experiment_name(self, capsys):
        self._assert_one_line_error(
            capsys, ["run", "fig99", "--scale", "smoke"], "fig99"
        )

    def test_unknown_sweep_experiment_name(self, capsys):
        self._assert_one_line_error(
            capsys, ["sweep", "nope", "--seeds", "0..1", "--scale", "smoke"], "nope"
        )

    def test_unknown_scenario_family(self, capsys):
        self._assert_one_line_error(
            capsys, ["scenarios", "meteor-strike"], "meteor-strike"
        )

    def test_unknown_scenario_figure(self, capsys):
        self._assert_one_line_error(
            capsys, ["scenarios", "--figure", "fig99"], "fig99"
        )

    def test_scenario_family_and_figure_conflict(self, capsys):
        self._assert_one_line_error(
            capsys, ["scenarios", "churn", "--figure", "fig11"], "not both"
        )

    def test_unknown_list_tag(self, capsys):
        self._assert_one_line_error(
            capsys, ["list", "--tags", "meteors"], "meteors"
        )

    def test_compose_missing_file(self, capsys, tmp_path):
        self._assert_one_line_error(
            capsys, ["compose", str(tmp_path / "absent.toml")], "does not exist"
        )

    def test_malformed_seed_range(self, capsys):
        self._assert_one_line_error(
            capsys, ["sweep", "fig7", "--seeds", "0..x", "--scale", "smoke"], "0..x"
        )

    def test_empty_seed_range(self, capsys):
        self._assert_one_line_error(
            capsys, ["sweep", "fig7", "--seeds", "5..2", "--scale", "smoke"], "5..2"
        )

    def test_outage_without_domain_structure(self, capsys, monkeypatch):
        """Composing a regional-outage scenario on an overlay without
        domain structure fails with a one-line ConfigurationError."""
        from repro.overlay.transit_stub import TransitStubUnderlay

        single = TransitStubUnderlay.for_size(12, seed=0)  # 1 transit domain
        monkeypatch.setattr(
            TransitStubUnderlay,
            "for_size",
            classmethod(lambda cls, n, seed=0: single),
        )
        self._assert_one_line_error(
            capsys, ["run", "ext-outage", "--scale", "smoke"], "domain structure"
        )


class TestStatusAndResume:
    """The resumable-sweep surface: `status`, `sweep --resume`, and the
    jobs-N-resume vs jobs-1 parity regression."""

    def _artifact_bytes(self, root):
        return {
            str(path.relative_to(root)): path.read_bytes()
            for path in sorted(root.rglob("*.json")) + sorted(root.rglob("*.csv"))
            if path.name != "manifest.json"
        }

    def test_parser_resume_flags(self, tmp_path):
        args = build_parser().parse_args(
            [
                "sweep",
                "fig9",
                "--resume",
                "--max-retries",
                "5",
                "--task-timeout",
                "30",
            ]
        )
        assert args.resume is True
        assert args.max_retries == 5
        assert args.task_timeout == 30.0
        defaults = build_parser().parse_args(["sweep", "fig9"])
        assert defaults.resume is False
        assert defaults.max_retries == 2
        assert defaults.task_timeout is None

    def test_parser_status_defaults(self):
        args = build_parser().parse_args(["status", "fig9"])
        assert args.command == "status"
        assert args.experiment == "fig9"
        assert args.scale is None
        assert str(args.out) == "results"

    def test_status_renders_ledger_table(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0..1",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert main(["status", "fig7", "--out", str(tmp_path)]) == 0
        output = capsys.readouterr().out
        assert "fig7/smoke: 0 pending, 0 running, 2 done, 0 failed" in output
        assert "(2 tasks, 2 attempts)" in output
        assert "seed 0" in output and "seed 1" in output
        assert output.count("sha256:") == 2

    def test_status_scale_filter_without_entries(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(
            ["status", "fig7", "--scale", "paper", "--out", str(tmp_path)]
        )
        assert code == 2
        assert "no ledger entries" in capsys.readouterr().err

    def test_status_without_ledger(self, tmp_path, capsys):
        code = main(["status", "fig7", "--out", str(tmp_path / "absent")])
        assert code == 2
        captured = capsys.readouterr()
        assert "no sweep ledger" in captured.err
        assert "Traceback" not in captured.err

    def test_status_unknown_experiment(self, tmp_path, capsys):
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        code = main(["status", "fig99", "--out", str(tmp_path)])
        assert code == 2
        error_lines = capsys.readouterr().err.strip().splitlines()
        assert len(error_lines) == 1
        assert "fig99" in error_lines[0]

    def test_status_locked_ledger(self, tmp_path, capsys, monkeypatch):
        import sqlite3

        from repro.experiments import ledger as ledger_module
        from repro.experiments import store as store_module

        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0",
                    "--scale",
                    "smoke",
                    "--out",
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        monkeypatch.setattr(
            store_module,
            "TaskLedger",
            lambda path: ledger_module.TaskLedger(path, timeout=0.1),
        )
        blocker = sqlite3.connect(tmp_path / "ledger.sqlite")
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            code = main(["status", "fig7", "--out", str(tmp_path)])
        finally:
            blocker.rollback()
            blocker.close()
        assert code == 2
        captured = capsys.readouterr()
        error_lines = captured.err.strip().splitlines()
        assert len(error_lines) == 1
        assert "locked" in error_lines[0] or "ledger" in error_lines[0]
        assert "Traceback" not in captured.err

    def test_sweep_resume_skips_verified_tasks(self, tmp_path, capsys):
        base = [
            "sweep",
            "fig7",
            "--scale",
            "smoke",
            "--out",
            str(tmp_path),
        ]
        assert main(base + ["--seeds", "0..1"]) == 0
        capsys.readouterr()
        assert main(base + ["--seeds", "0..2", "--resume"]) == 0
        captured = capsys.readouterr()
        assert "[fig7 seed=0] skipped" in captured.err
        assert "[fig7 seed=1] skipped" in captured.err
        assert "swept 1 tasks, skipped 2, failed 0" in captured.err

    def test_sweep_failure_exit_code(self, tmp_path, capsys):
        from repro.experiments.registry import register, unregister
        from repro.experiments.spec import ExperimentSpec, Pipeline

        def measure(ctx, built, cell):
            raise RuntimeError("always broken")

        register(
            ExperimentSpec(
                experiment_id="cli-always-fails",
                title="cli failure stub",
                pipeline=Pipeline(columns=("seed",), measure=measure),
            )
        )
        try:
            code = main(
                [
                    "sweep",
                    "cli-always-fails",
                    "--seeds",
                    "0",
                    "--scale",
                    "smoke",
                    "--max-retries",
                    "0",
                    "--out",
                    str(tmp_path),
                ]
            )
        finally:
            unregister("cli-always-fails")
        assert code == 1
        captured = capsys.readouterr()
        assert "FAILED after 1 attempts" in captured.err
        assert "RuntimeError" in captured.err

    def test_jobs_n_resume_parity_with_jobs_1(self, tmp_path, capsys):
        """Regression: a sweep interrupted and resumed with --jobs 2 must
        produce the same bytes as one uninterrupted --jobs 1 run."""
        reference, resumed = tmp_path / "reference", tmp_path / "resumed"
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0..2",
                    "--scale",
                    "smoke",
                    "--jobs",
                    "1",
                    "--out",
                    str(reference),
                ]
            )
            == 0
        )
        # a partial run (two of three seeds), then a parallel resume
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0..1",
                    "--scale",
                    "smoke",
                    "--jobs",
                    "2",
                    "--out",
                    str(resumed),
                ]
            )
            == 0
        )
        assert (
            main(
                [
                    "sweep",
                    "fig7",
                    "--seeds",
                    "0..2",
                    "--scale",
                    "smoke",
                    "--jobs",
                    "2",
                    "--resume",
                    "--out",
                    str(resumed),
                ]
            )
            == 0
        )
        capsys.readouterr()
        assert self._artifact_bytes(reference) == self._artifact_bytes(resumed)


class TestServeMain:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.command == "serve"
        assert args.experiment == "svc-steady"
        assert args.rate is None and args.duration is None and args.window is None
        assert args.format == "table"

    def test_serve_parser_overrides(self, tmp_path):
        args = build_parser().parse_args(
            [
                "serve",
                "svc-outage",
                "--scale",
                "smoke",
                "--seed",
                "5",
                "--rate",
                "2.5",
                "--duration",
                "120",
                "--window",
                "30",
                "--format",
                "json",
                "--out",
                str(tmp_path),
            ]
        )
        assert args.experiment == "svc-outage"
        assert (args.rate, args.duration, args.window) == (2.5, 120.0, 30.0)
        assert args.format == "json"

    def test_serve_prints_windowed_table(self, capsys):
        assert main(["serve", "svc-steady", "--scale", "smoke",
                     "--duration", "60", "--rate", "0.5"]) == 0
        captured = capsys.readouterr()
        assert "latency_p99" in captured.out
        assert "served in" in captured.err  # timing goes to stderr

    def test_serve_json_is_parseable_with_nonzero_p99(self, capsys):
        assert main(["serve", "svc-outage", "--scale", "smoke", "--format", "json",
                     "--duration", "120", "--rate", "1", "--window", "60"]) == 0
        payload = json.loads(capsys.readouterr().out)
        columns = payload["columns"]
        p99_index = columns.index("latency_p99")
        assert any(row[p99_index] > 0 for row in payload["rows"])
        assert "_p99" in payload["stat_suffixes"]

    def test_serve_rejects_non_service_experiment(self, capsys):
        assert main(["serve", "fig7"]) == 2  # one-line error, no traceback
        assert "not a service-mode experiment" in capsys.readouterr().err

    def test_serve_persists_replicate(self, tmp_path, capsys):
        assert main(["serve", "svc-steady", "--scale", "smoke", "--duration", "60",
                     "--rate", "0.5", "--seed", "4", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        assert (tmp_path / "svc-steady" / "smoke" / "seed_4.json").exists()
