"""Tests for the mpil-experiments command-line interface."""

from __future__ import annotations

import pytest

from repro.experiments.cli import build_parser, main


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_command_defaults(self):
        args = build_parser().parse_args(["run", "fig7"])
        assert args.command == "run"
        assert args.experiments == ["fig7"]
        assert args.scale == "default"
        assert args.seed == 0

    def test_run_with_options(self, tmp_path):
        args = build_parser().parse_args(
            ["run", "fig7", "fig8", "--scale", "smoke", "--seed", "3", "--out", str(tmp_path)]
        )
        assert args.experiments == ["fig7", "fig8"]
        assert args.scale == "smoke"
        assert args.seed == 3

    def test_unknown_scale_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "fig7", "--scale", "galactic"])


class TestMain:
    def test_list_prints_experiments(self, capsys):
        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in ("fig1", "fig7", "tab1", "ablation-metric"):
            assert experiment_id in output

    def test_run_prints_table(self, capsys):
        assert main(["run", "fig7", "--scale", "smoke"]) == 0
        output = capsys.readouterr().out
        assert "expected_local_maxima" in output
        assert "completed in" in output

    def test_run_writes_output_files(self, tmp_path, capsys):
        assert main(["run", "fig8", "--scale", "smoke", "--out", str(tmp_path)]) == 0
        capsys.readouterr()
        written = tmp_path / "fig8_smoke.txt"
        assert written.exists()
        assert "expected_replicas" in written.read_text()
