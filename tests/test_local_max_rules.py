"""Behavioural tests for the two local-maximum rules end-to-end.

The paper's pseudo-code tests the current node against "all nodes in
neighbor list" (including already-visited ones); the ``unvisited-only``
variant exists as an ablation.  These tests pin the end-to-end consequences
of the choice.
"""

from __future__ import annotations

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.network import MPILNetwork
from repro.overlay.graph import OverlayGraph

SPACE = IdSpace(bits=4, digit_bits=1)


def _path_network(rule: str) -> MPILNetwork:
    """A 3-node path 0-1-2 with scores 3 > 2 > 1 against object 1111.

    Walking downhill from node 0, node 1's only unvisited neighbor (2) is
    worse than node 1, but its visited neighbor (0) is better.
    """
    ids = [
        SPACE.from_digits([1, 1, 1, 0]),  # node 0: 3 common with 1111
        SPACE.from_digits([1, 1, 0, 0]),  # node 1: 2 common
        SPACE.from_digits([1, 0, 0, 0]),  # node 2: 1 common
    ]
    overlay = OverlayGraph.from_edges(3, [(0, 1), (1, 2)])
    config = MPILConfig(
        max_flows=1, per_flow_replicas=3, tie_break="lowest-id", local_max_rule=rule
    )
    return MPILNetwork(overlay, space=SPACE, ids=ids, config=config, seed=0)


OBJECT = SPACE.from_digits([1, 1, 1, 1])


class TestAllNeighborsRule:
    def test_downhill_nodes_do_not_store(self):
        net = _path_network("all-neighbors")
        result = net.insert(0, OBJECT)
        # node 0 is the only local max: walking downhill, node 1 sees the
        # better visited neighbor 0 behind it and node 2 sees the better
        # neighbor 1 — under the paper's rule neither stores.
        assert result.replicas == (0,)


class TestUnvisitedOnlyRule:
    def test_every_downhill_node_becomes_a_maximum(self):
        net = _path_network("unvisited-only")
        result = net.insert(0, OBJECT)
        # with visited neighbors ignored, each node on the downhill walk has
        # no better unvisited neighbor and stores — until the per-flow
        # replica budget (3) is spent.
        assert set(result.replicas) == {0, 1, 2}

    def test_rule_changes_replica_count_not_correctness(self):
        strict = _path_network("all-neighbors")
        loose = _path_network("unvisited-only")
        strict_insert = strict.insert(0, OBJECT)
        loose_insert = loose.insert(0, OBJECT)
        assert loose_insert.replica_count >= strict_insert.replica_count
        assert strict.lookup(2, OBJECT).success
        assert loose.lookup(2, OBJECT).success
