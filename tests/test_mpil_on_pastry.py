"""Tests for MPIL running over the Pastry overlay (Section 6.2)."""

from __future__ import annotations

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.pastry.mpil_on_pastry import make_mpil_over_pastry, pastry_neighbor_overlay
from repro.pastry.protocol import PastryNetwork
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


def _pastry(n=50, seed=1):
    return PastryNetwork(n=n, space=SPACE, seed=seed)


class TestNeighborOverlay:
    def test_adjacency_is_leafset_union_table(self):
        pastry = _pastry()
        overlay = pastry_neighbor_overlay(pastry)
        assert overlay.directed
        for node in range(pastry.n):
            expected = set(pastry.leaf_sets[node]) | set(
                pastry.tables[node].values()
            )
            expected.discard(node)
            assert set(overlay.neighbors(node)) == expected

    def test_shares_node_ids(self):
        pastry = _pastry()
        mpil = make_mpil_over_pastry(pastry, seed=2)
        assert mpil.ids == pastry.ids

    def test_separate_replica_directories(self):
        pastry = _pastry()
        mpil = make_mpil_over_pastry(pastry, seed=3)
        rng = derive_rng(3, "keys")
        key = SPACE.random_identifier(rng)
        mpil.insert_static(0, key)
        assert mpil.directory.replica_count(key) >= 1
        assert pastry.directory.replica_count(key) == 0


class TestStaticBehaviour:
    def test_insert_then_lookup_on_static_overlay(self):
        pastry = _pastry(seed=4)
        config = MPILConfig(max_flows=10, per_flow_replicas=5)
        mpil = make_mpil_over_pastry(pastry, config=config, seed=4)
        rng = derive_rng(4, "keys")
        successes = 0
        for _ in range(20):
            key = SPACE.random_identifier(rng)
            origin = rng.randrange(pastry.n)
            result = mpil.insert_static(origin, key)
            assert 1 <= result.replica_count <= config.replica_bound
            outcome = mpil.lookup_at(rng.randrange(pastry.n), key, start_time=0.0)
            successes += outcome.success
        assert successes >= 18  # near-100% on a static overlay

    def test_perturbation_hurts_but_redundancy_helps(self):
        pastry = _pastry(n=60, seed=5)
        mpil = make_mpil_over_pastry(pastry, seed=5)
        rng = derive_rng(5, "keys")
        keys = [SPACE.random_identifier(rng) for _ in range(25)]
        for key in keys:
            mpil.insert_static(rng.randrange(60), key)
        schedule = FlappingSchedule(
            FlappingConfig(30, 30, 1.0), 60, seed=6, always_online={0}
        )
        mpil.availability = schedule
        successes = sum(
            mpil.lookup_at(0, key, start_time=100.0 + 60.0 * i).success
            for i, key in enumerate(keys)
        )
        assert 0 < successes < 25

    def test_ds_flag_changes_processing(self):
        pastry = _pastry(n=60, seed=7)
        mpil = make_mpil_over_pastry(pastry, seed=7)
        rng = derive_rng(7, "keys")
        keys = [SPACE.random_identifier(rng) for _ in range(30)]
        for key in keys:
            mpil.insert_static(rng.randrange(60), key)
        schedule = FlappingSchedule(
            FlappingConfig(30, 30, 0.9), 60, seed=8, always_online={0}
        )
        mpil.availability = schedule
        ds_msgs = nods_msgs = 0
        for i, key in enumerate(keys):
            t = 100.0 + 60.0 * i
            ds_msgs += mpil.lookup_at(
                0, key, start_time=t, duplicate_suppression=True
            ).counters.messages_sent
            nods_msgs += mpil.lookup_at(
                0, key, start_time=t, duplicate_suppression=False
            ).counters.messages_sent
        assert nods_msgs >= ds_msgs  # re-forwarding can only add traffic
