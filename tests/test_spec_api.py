"""Tests for the declarative experiment API: ExperimentSpec pipelines, the
decorator registry and its metadata, the TOML/dict compose path, and the
``repro.api`` facade."""

from __future__ import annotations

import json

import pytest

from repro import api
from repro.errors import ExperimentError
from repro.experiments import (
    ExperimentResult,
    ExperimentSpec,
    Pipeline,
    all_experiment_ids,
    get_spec,
    list_experiments,
    register,
    run_experiment,
    unregister,
)
from repro.experiments.compose import compose_spec
from repro.experiments.registry import experiment
from repro.experiments.spec import RunContext, validate_seed


def _toy_pipeline() -> Pipeline:
    return Pipeline(
        columns=("x", "y"),
        key_columns=("x",),
        cells=lambda ctx, built: (1, 2),
        measure=lambda ctx, built, cell: [(cell, cell * 10 + ctx.seed)],
        notes="toy",
    )


@pytest.fixture
def toy_spec() -> ExperimentSpec:
    return ExperimentSpec(
        experiment_id="toy", title="Toy experiment", pipeline=_toy_pipeline()
    )


class TestExperimentSpec:
    def test_run_collects_rows_from_all_cells(self, toy_spec):
        result = toy_spec.run(scale="smoke", seed=3)
        assert isinstance(result, ExperimentResult)
        assert result.experiment_id == "toy"
        assert result.rows == [(1, 13), (2, 23)]
        assert result.scale == "smoke"
        assert result.notes == "toy"
        assert result.key_columns == ("x",)

    def test_build_feeds_cells_and_measure(self):
        calls: list[str] = []

        def build(ctx: RunContext) -> str:
            calls.append("build")
            return "built"

        spec = ExperimentSpec(
            experiment_id="staged",
            title="Staged",
            pipeline=Pipeline(
                columns=("v",),
                build=build,
                cells=lambda ctx, built: (built.upper(),),
                measure=lambda ctx, built, cell: [(f"{built}:{cell}",)],
                notes=lambda ctx, built: f"notes-from-{built}",
            ),
        )
        result = spec.run(scale="smoke")
        assert calls == ["build"]  # build runs exactly once
        assert result.rows == [("built:BUILT",)]
        assert result.notes == "notes-from-built"

    def test_seed_validation_is_the_single_choke_point(self, toy_spec):
        for bad in (True, "0", 1.5, None):
            with pytest.raises(ExperimentError, match="seed must be an int"):
                toy_spec.run(scale="smoke", seed=bad)
        with pytest.raises(ExperimentError, match="seed must be an int"):
            run_experiment("fig7", scale="smoke", seed="0")

    def test_registered_run_annotations_declare_int_seed(self):
        """The old modules annotated ``seed: object``; the spec runner now
        owns validation and the public signature says what it accepts."""
        import inspect

        signature = inspect.signature(get_spec("fig9").run)
        assert signature.parameters["seed"].annotation == "int"

    def test_validate_seed_passthrough(self):
        assert validate_seed(7) == 7

    def test_empty_columns_rejected(self):
        with pytest.raises(ExperimentError, match="at least one result column"):
            Pipeline(columns=(), measure=lambda ctx, built, cell: [])

    def test_key_columns_must_be_columns(self):
        with pytest.raises(ExperimentError, match="key_columns"):
            Pipeline(
                columns=("a",),
                key_columns=("b",),
                measure=lambda ctx, built, cell: [],
            )

    def test_spec_needs_id_and_title(self):
        with pytest.raises(ExperimentError, match="non-empty id"):
            ExperimentSpec(experiment_id="", title="t", pipeline=_toy_pipeline())
        with pytest.raises(ExperimentError, match="non-empty title"):
            ExperimentSpec(experiment_id="x", title="", pipeline=_toy_pipeline())


class TestRegistryMetadata:
    def test_every_registered_spec_carries_metadata(self):
        for spec in list_experiments():
            assert spec.experiment_id in all_experiment_ids()
            assert spec.title
            assert spec.tags  # every built-in experiment is tagged

    def test_paper_figures_declare_their_artifact(self):
        assert get_spec("fig9").figure == "Figure 9"
        assert get_spec("tab1").figure == "Table 1"
        assert get_spec("ablation-ds").figure is None

    def test_tag_filtering(self):
        ext = {spec.experiment_id for spec in list_experiments(("ext",))}
        assert ext == {
            "ext-churn",
            "ext-outage",
            "ext-wave",
            "ext-joinstorm",
            "ext-adversarial",
            "svc-steady",
            "svc-outage",
        }
        service = {spec.experiment_id for spec in list_experiments(("service",))}
        assert service == {"svc-steady", "svc-outage"}
        paper_tables = [spec.experiment_id for spec in list_experiments(("table", "paper"))]
        assert paper_tables == ["tab1", "tab2", "tab3"]
        assert list_experiments(("no-such-tag",)) == []

    def test_scenario_families_on_ext_specs(self):
        assert get_spec("ext-outage").scenario_family == "regional-outage"
        assert get_spec("fig11").scenario_family == "flapping"
        assert get_spec("tab1").scenario_family is None

    def test_duplicate_id_rejected(self, toy_spec):
        register(toy_spec)
        try:
            with pytest.raises(ExperimentError, match="already registered"):
                register(toy_spec)
            with pytest.raises(ExperimentError, match="already registered"):

                @experiment(id="toy", title="Another toy")
                def duplicate() -> Pipeline:
                    return _toy_pipeline()

        finally:
            unregister("toy")

    def test_decorator_registers_and_returns_the_spec(self):
        @experiment(id="decorated-toy", title="Decorated", tags=("test-only",))
        def decorated() -> Pipeline:
            return _toy_pipeline()

        try:
            assert isinstance(decorated, ExperimentSpec)
            assert get_spec("decorated-toy") is decorated
            assert decorated.tags == ("test-only",)
            result = run_experiment("decorated-toy", scale="smoke", seed=1)
            assert result.rows == [(1, 11), (2, 21)]
        finally:
            unregister("decorated-toy")

    def test_unregister_unknown_id(self):
        with pytest.raises(ExperimentError, match="not registered"):
            unregister("never-registered")

    def test_unregister_builtin_rejected(self):
        """Built-in modules import at most once per process, so removing
        one would be unrecoverable; the registry refuses."""
        with pytest.raises(ExperimentError, match="built in"):
            unregister("fig9")
        assert "fig9" in all_experiment_ids()


def _composed_source(experiment_id: str = "composed-test") -> dict:
    return {
        "experiment": {
            "id": experiment_id,
            "title": "Composed outage severity sweep",
            "tags": ["ext", "composed"],
        },
        "sweep": {"column": "severity", "values": [0.0, 0.5, 1.0]},
        "scenario": [
            {"family": "flapping", "period": "30:30", "probability": 0.5},
            {
                "family": "regional-outage",
                "start": 90.0,
                "duration": 600.0,
                "severity": "$severity",
            },
        ],
        "variants": {"names": ["pastry", "mpil-ds", "mpil-nods"], "rejoin": True},
        "workload": {"spacing": 60.0, "window": [0.33, 0.66]},
    }


class TestCompose:
    def test_round_trip_compose_run_result(self):
        spec = compose_spec(_composed_source())
        assert spec.experiment_id == "composed-test"
        assert spec.tags == ("ext", "composed")
        result = spec.run(scale="smoke", seed=1)
        assert result.columns == (
            "severity",
            "MSPastry",
            "MPIL with DS",
            "MPIL without DS",
        )
        assert result.key_columns == ("severity",)
        assert result.column("severity") == [0.0, 0.5, 1.0]
        for column in result.columns[1:]:
            for rate in result.column(column):
                assert 0.0 <= rate <= 100.0
        assert "composed scenario" in result.notes

    def test_composed_runs_are_deterministic(self):
        spec = compose_spec(_composed_source())
        a = spec.run(scale="smoke", seed=2)
        b = spec.run(scale="smoke", seed=2)
        assert json.dumps(a.to_dict(), sort_keys=True) == json.dumps(
            b.to_dict(), sort_keys=True
        )

    def test_severity_axis_degrades_success(self):
        """The composed severity sweep must reproduce the nested-outage
        monotonicity the hand-written ext-outage experiment pins."""
        spec = compose_spec(_composed_source())
        result = spec.run(scale="smoke", seed=0)
        rates = result.column("MPIL without DS")
        assert rates == sorted(rates, reverse=True)
        assert rates[0] > rates[-1]

    def test_single_scenario_needs_no_timeline(self):
        source = _composed_source()
        source["scenario"] = [
            {"family": "churn", "mean_session": "$severity", "mean_downtime": 300.0}
        ]
        source["sweep"] = {"column": "severity", "values": [300.0, 30.0]}
        result = compose_spec(source).run(scale="smoke", seed=0)
        assert len(result.rows) == 2

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (lambda s: s.pop("experiment"), r"\[experiment\] table"),
            (lambda s: s["experiment"].pop("id"), "non-empty 'id'"),
            (lambda s: s.pop("sweep"), r"\[sweep\] table"),
            (lambda s: s["sweep"].update(values=[]), "non-empty 'values'"),
            (lambda s: s.pop("scenario"), r"\[\[scenario\]\]"),
            (
                lambda s: s["scenario"][0].update(family="meteor-strike"),
                "unknown scenario family",
            ),
            (
                lambda s: s["scenario"][0].update(wingspan=3),
                "unknown parameter",
            ),
            (
                lambda s: s["scenario"][0].pop("period"),
                "missing required parameter",
            ),
            (
                lambda s: s["scenario"][0].update(probability="oops"),
                "must be a number",
            ),
            (
                lambda s: s["sweep"].update(values=[0.0, "half"]),
                "must be a number",
            ),
            (
                lambda s: s["scenario"][1].update(severity="$intensity"),
                "unknown sweep axis",
            ),
            (
                lambda s: s["variants"].update(names=["pastry", "carrier-pigeon"]),
                "unknown variant",
            ),
            (lambda s: s["variants"].update(names=[]), "at least one"),
            (
                lambda s: s["scenario"][0].update(period="thirty:thirty"),
                "thirty",
            ),
            (
                lambda s: s["scenario"].append(
                    {
                        "family": "adversarial-removal",
                        "fraction": 0.1,
                        "start": 5.0,
                        "targeting": "diameter",
                    }
                ),
                "targeting must be",
            ),
            (lambda s: s["workload"].update(spacing=-1.0), "spacing"),
            (lambda s: s["workload"].update(spacing="fast"), "must be a number"),
            (lambda s: s["workload"].update(window=[0.9, 0.1]), "window"),
            (lambda s: s["workload"].update(window=["a", "b"]), "must be a number"),
            # bare strings are not lists: they would silently iterate
            # character by character
            (lambda s: s["experiment"].update(tags="ext"), "must be a list"),
            (lambda s: s["variants"].update(names="pastry"), "must be a list"),
            (lambda s: s["sweep"].update(values="0.5"), "'values' list"),
        ],
    )
    def test_malformed_specs_fail_eagerly(self, mutate, fragment):
        source = _composed_source()
        mutate(source)
        with pytest.raises(ExperimentError, match=fragment):
            compose_spec(source)


def _service_source(experiment_id: str = "composed-service") -> dict:
    source = _composed_source(experiment_id)
    del source["workload"]
    source["sweep"] = {"column": "severity", "values": [0.0, 1.0]}
    source["service"] = {
        "rate": 0.5,
        "duration": 120.0,
        "window": 60.0,
        "arrival": "poisson",
        "insert_fraction": 0.1,
        "slo_latency": 1.0,
        "slo_availability": 0.9,
    }
    return source


class TestComposeService:
    """The [service] table routes a composed sweep through the open-loop
    service driver instead of the spaced lookup workload."""

    def test_service_spec_runs_windowed_rows(self):
        spec = compose_spec(_service_source())
        result = spec.run(scale="smoke", seed=0)
        assert result.columns[:3] == ("severity", "variant", "window")
        assert {"latency_p50", "latency_p99", "slo_ok"} < set(result.columns)
        assert result.key_columns == ("severity", "variant", "window")
        # 2 severities x 3 variants x 2 windows
        assert len(result.rows) == 12
        assert "_p50" in result.stat_suffixes and "_p99" in result.stat_suffixes

    def test_service_spec_deterministic(self):
        spec = compose_spec(_service_source())
        a = spec.run(scale="smoke", seed=3)
        b = spec.run(scale="smoke", seed=3)
        assert a.rows == b.rows

    def test_service_params_substitute_sweep_axis(self):
        source = _service_source()
        source["sweep"] = {"column": "rate", "values": [0.25, 0.5]}
        source["scenario"] = [
            {"family": "flapping", "period": "30:30", "probability": 0.5}
        ]
        source["service"]["rate"] = "$rate"
        result = compose_spec(source).run(scale="smoke", seed=0)
        arrivals_by_rate = {
            rate: sum(
                row[result.columns.index("arrivals")]
                for row in result.rows
                if row[0] == rate and row[1] == "MPIL with DS"
            )
            for rate in (0.25, 0.5)
        }
        # double the offered rate, roughly double the arrivals
        assert arrivals_by_rate[0.5] > arrivals_by_rate[0.25]

    @pytest.mark.parametrize(
        "mutate, fragment",
        [
            (
                lambda s: s.update(workload={"spacing": 60.0}),
                "not both",
            ),
            (lambda s: s["service"].update(burstiness=2.0), "unknown parameter"),
            (lambda s: s["service"].update(arrival="burst"), "arrival"),
            (lambda s: s["service"].update(rate="fast"), "must be a number"),
            (
                lambda s: s["service"].update(duration="$severity"),
                None,  # axis substitution is allowed; no error
            ),
        ],
    )
    def test_service_table_validation(self, mutate, fragment):
        source = _service_source()
        mutate(source)
        if fragment is None:
            compose_spec(source)
        else:
            with pytest.raises(ExperimentError, match=fragment):
                compose_spec(source)


class TestApiFacade:
    def test_run_by_id_matches_registry(self):
        assert (
            api.run("fig7", scale="smoke", seed=0).to_dict()
            == run_experiment("fig7", scale="smoke", seed=0).to_dict()
        )

    def test_run_unregistered_spec(self, toy_spec):
        result = api.run(toy_spec, scale="smoke", seed=2)
        assert result.rows == [(1, 12), (2, 22)]

    def test_list_experiments_filters(self):
        assert [s.experiment_id for s in api.list_experiments(("ext",))] == [
            "ext-churn",
            "ext-outage",
            "ext-wave",
            "ext-joinstorm",
            "ext-adversarial",
            "svc-steady",
            "svc-outage",
        ]

    def test_get_returns_registered_spec(self):
        assert api.get("fig9").experiment_id == "fig9"

    def test_sweep_through_store(self, tmp_path):
        report = api.sweep("fig7", seeds="0..1", scale="smoke", store=tmp_path)
        assert len(report.outcomes) == 2
        assert (tmp_path / "fig7" / "smoke" / "seed_0.json").exists()
        assert (tmp_path / "fig7" / "smoke" / "aggregate.json").exists()

    def test_sweep_accepts_iterables(self):
        report = api.sweep(["fig7"], seeds=(1, 3), scale="smoke")
        assert {outcome.seed for outcome in report.outcomes} == {1, 3}

    def test_compose_register_and_unregister(self):
        spec = api.compose(_composed_source("composed-registered"), register_spec=True)
        try:
            assert "composed-registered" in all_experiment_ids()
            assert api.get("composed-registered") is spec
        finally:
            api.unregister("composed-registered")
        assert "composed-registered" not in all_experiment_ids()

    def test_compose_from_toml_file(self, tmp_path):
        tomllib = pytest.importorskip("tomllib")  # noqa: F841 - 3.11+ only
        toml_text = """
[experiment]
id = "composed-from-file"
title = "TOML-defined severity sweep"
tags = ["composed"]

[sweep]
column = "severity"
values = [0.0, 1.0]

[[scenario]]
family = "regional-outage"
start = 90.0
duration = 600.0
severity = "$severity"
"""
        path = tmp_path / "sweep.toml"
        path.write_text(toml_text)
        spec = api.compose(path)
        result = spec.run(scale="smoke", seed=0)
        assert result.experiment_id == "composed-from-file"
        assert len(result.rows) == 2

    def test_compose_from_json_file(self, tmp_path):
        path = tmp_path / "sweep.json"
        path.write_text(json.dumps(_composed_source("composed-json")))
        spec = api.compose(path)
        assert spec.experiment_id == "composed-json"

    def test_compose_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="does not exist"):
            api.compose(tmp_path / "nope.toml")


class TestResultColumnErrors:
    def test_unknown_column_lists_available(self):
        result = ExperimentResult(
            experiment_id="x", title="t", columns=("a", "b"), rows=[(1, 2)]
        )
        with pytest.raises(ExperimentError, match="available columns: a, b"):
            result.column("c")
        with pytest.raises(ExperimentError, match="unknown column 'z'"):
            result.filtered(z=1)
