"""Integration and property tests for the static MPIL driver."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.network import MPILNetwork
from repro.errors import ConfigurationError, RoutingError
from repro.overlay.complete import complete_graph
from repro.overlay.random_graphs import (
    fixed_degree_random_graph,
    ring_lattice_graph,
)
from repro.sim.rng import derive_rng
from repro.sim.trace import TraceRecorder

SPACE = IdSpace(bits=32, digit_bits=4)


def _network(overlay, seed=0, **config_kwargs):
    config = MPILConfig(**{"max_flows": 10, "per_flow_replicas": 3, **config_kwargs})
    return MPILNetwork(overlay, space=SPACE, config=config, seed=seed)


class TestEndToEnd:
    @pytest.mark.parametrize(
        "overlay_factory,min_successes",
        [
            (lambda: complete_graph(30), 10),
            (lambda: ring_lattice_graph(40, k=3), 5),
            (lambda: fixed_degree_random_graph(60, degree=6, seed=1), 8),
        ],
        ids=["complete", "ring", "random-regular"],
    )
    def test_insert_then_lookup_succeeds(self, overlay_factory, min_successes):
        # MPIL "can never guarantee a 100% lookup success rate" on arbitrary
        # overlays (Section 4.4) — a sparse ring in a small digit space is
        # its hardest case (coarse scores make most nodes local maxima, so
        # flows stop early) — so the thresholds are per-topology.
        overlay = overlay_factory()
        net = _network(overlay, seed=2)
        rng = derive_rng(2, "objects")
        successes = 0
        for _trial in range(10):
            origin = rng.randrange(overlay.n)
            obj = net.random_object_id(rng)
            insert = net.insert(origin, obj)
            assert insert.replica_count >= 1
            successes += net.lookup(rng.randrange(overlay.n), obj).success
        assert successes >= min_successes

    def test_complete_graph_stores_at_global_maxima(self):
        """On a complete graph every node sees every other, so replicas are
        global metric maxima and the first lookup hop finds one."""
        overlay = complete_graph(25)
        net = _network(overlay, seed=3)
        rng = derive_rng(3, "objects")
        obj = net.random_object_id(rng)
        insert = net.insert(0, obj)
        scores = [net.ids[v].common_digits(obj) for v in range(overlay.n)]
        top = max(scores)
        for node in insert.replicas:
            assert scores[node] == top
        lookup = net.lookup(5, obj)
        assert lookup.success
        assert lookup.first_reply_hop <= 1

    def test_replica_bound_holds(self):
        overlay = fixed_degree_random_graph(80, degree=10, seed=4)
        config = MPILConfig(max_flows=4, per_flow_replicas=2)
        net = MPILNetwork(overlay, space=SPACE, config=config, seed=4)
        rng = derive_rng(4, "objects")
        for _ in range(15):
            result = net.insert(rng.randrange(overlay.n), net.random_object_id(rng))
            assert result.replica_count <= config.replica_bound
            assert result.flows_created <= config.max_flows

    def test_deterministic_given_seed(self):
        overlay = fixed_degree_random_graph(50, degree=6, seed=5)
        runs = []
        for _ in range(2):
            net = _network(overlay, seed=11)
            rng = derive_rng(11, "objects")
            obj = net.random_object_id(rng)
            insert = net.insert(3, obj)
            lookup = net.lookup(7, obj)
            runs.append((insert.replicas, insert.traffic, lookup.success, lookup.traffic))
        assert runs[0] == runs[1]

    def test_delete_removes_all_replicas(self):
        overlay = ring_lattice_graph(30, k=2)
        net = _network(overlay, seed=6)
        rng = derive_rng(6, "objects")
        obj = net.random_object_id(rng)
        insert = net.insert(0, obj)
        removed = net.delete(obj)
        assert removed == insert.replica_count
        assert not net.lookup(5, obj).success


class TestValidation:
    def test_origin_out_of_range(self):
        net = _network(ring_lattice_graph(10, k=1))
        with pytest.raises(RoutingError):
            net.insert(10, SPACE.identifier(1))
        with pytest.raises(RoutingError):
            net.lookup(-1, SPACE.identifier(1))

    def test_id_count_mismatch(self):
        overlay = ring_lattice_graph(10, k=1)
        ids = SPACE.random_unique_identifiers(9, derive_rng(0, "x"))
        with pytest.raises(ConfigurationError):
            MPILNetwork(overlay, space=SPACE, ids=ids)

    def test_ids_must_match_space(self):
        overlay = ring_lattice_graph(4, k=1)
        other_space = IdSpace(bits=8, digit_bits=4)
        ids = other_space.random_unique_identifiers(4, derive_rng(0, "y"))
        with pytest.raises(ConfigurationError):
            MPILNetwork(overlay, space=SPACE, ids=ids)


class TestAccounting:
    def test_duplicates_counted_on_reconvergence(self):
        # On a dense graph with many equal-metric neighbors, flows reconverge
        # and duplicates must be visible in the accounting.
        overlay = complete_graph(40)
        net = _network(overlay, seed=7, max_flows=20, per_flow_replicas=3)
        rng = derive_rng(7, "objects")
        total_dups = sum(
            net.insert(rng.randrange(overlay.n), net.random_object_id(rng)).duplicates
            for _ in range(10)
        )
        assert total_dups > 0

    def test_traffic_matches_trace_sends(self):
        overlay = ring_lattice_graph(30, k=2)
        trace = TraceRecorder()
        net = MPILNetwork(
            overlay,
            space=SPACE,
            config=MPILConfig(max_flows=5, per_flow_replicas=2),
            seed=8,
            trace=trace,
        )
        rng = derive_rng(8, "objects")
        result = net.insert(0, net.random_object_id(rng))
        assert result.traffic == len(trace.of_kind("send"))
        assert len(trace.of_kind("store")) == result.replica_count

    def test_lookup_traffic_at_first_reply_le_total(self):
        overlay = fixed_degree_random_graph(60, degree=8, seed=9)
        net = _network(overlay, seed=9)
        rng = derive_rng(9, "objects")
        obj = net.random_object_id(rng)
        net.insert(0, obj)
        result = net.lookup(30, obj)
        if result.success:
            assert result.traffic_at_first_reply <= result.traffic


@settings(max_examples=15)
@given(
    max_flows=st.integers(1, 12),
    per_flow=st.integers(1, 4),
    seed=st.integers(0, 5),
)
def test_flow_and_replica_bounds_property(max_flows, per_flow, seed):
    overlay = ring_lattice_graph(24, k=2)
    config = MPILConfig(max_flows=max_flows, per_flow_replicas=per_flow)
    net = MPILNetwork(overlay, space=SPACE, config=config, seed=seed)
    rng = derive_rng(seed, "prop-objects")
    obj = net.random_object_id(rng)
    insert = net.insert(seed % overlay.n, obj)
    assert insert.flows_created <= max_flows
    assert insert.replica_count <= max_flows * per_flow
    lookup = net.lookup((seed + 7) % overlay.n, obj)
    assert lookup.flows_created <= max_flows
