"""Tests for the overlay graph abstraction and generators."""

from __future__ import annotations

import pytest

from repro.errors import OverlayError
from repro.overlay.complete import complete_graph
from repro.overlay.graph import OverlayGraph
from repro.overlay.power_law import (
    estimated_exponent,
    power_law_graph,
    sample_power_law_degrees,
)
from repro.overlay.random_graphs import (
    connect_components,
    fixed_degree_random_graph,
    gnp_random_graph,
    random_regular_graph,
    ring_lattice_graph,
)


class TestOverlayGraph:
    def test_from_edges_symmetric(self):
        g = OverlayGraph.from_edges(4, [(0, 1), (1, 2), (2, 3)])
        assert g.neighbors(1) == (0, 2)
        assert g.degree(0) == 1
        assert g.num_edges == 3
        assert g.is_connected()

    def test_self_loop_rejected(self):
        with pytest.raises(OverlayError):
            OverlayGraph.from_edges(3, [(0, 0)])
        with pytest.raises(OverlayError):
            OverlayGraph([[0], [0]])

    def test_out_of_range_rejected(self):
        with pytest.raises(OverlayError):
            OverlayGraph.from_edges(3, [(0, 3)])

    def test_asymmetry_rejected_for_undirected(self):
        with pytest.raises(OverlayError):
            OverlayGraph([[1], []])

    def test_directed_allows_asymmetry(self):
        g = OverlayGraph([[1], []], directed=True)
        assert g.neighbors(0) == (1,)
        assert g.neighbors(1) == ()
        assert g.is_connected()  # weakly connected

    def test_components(self):
        g = OverlayGraph.from_edges(5, [(0, 1), (2, 3)])
        comps = g.components()
        assert sorted(len(c) for c in comps) == [1, 2, 2]
        assert not g.is_connected()

    def test_degree_histogram_and_average(self):
        g = ring_lattice_graph(10, k=1)
        assert g.degree_histogram() == {2: 10}
        assert g.average_degree() == 2.0

    def test_networkx_round_trip(self):
        g = ring_lattice_graph(8, k=2)
        back = OverlayGraph.from_networkx(g.to_networkx())
        assert [back.neighbors(i) for i in range(8)] == [g.neighbors(i) for i in range(8)]

    def test_edges_listed_once(self):
        g = ring_lattice_graph(6, k=1)
        edges = list(g.edges())
        assert len(edges) == 6
        assert len(set(edges)) == 6


class TestGenerators:
    def test_complete_graph(self):
        g = complete_graph(7)
        assert all(g.degree(i) == 6 for i in range(7))
        with pytest.raises(OverlayError):
            complete_graph(0)

    def test_random_regular_degrees_and_connectivity(self):
        g = random_regular_graph(40, 6, seed=1)
        assert all(g.degree(i) == 6 for i in range(40))
        assert g.is_connected()

    def test_random_regular_parity_validation(self):
        with pytest.raises(OverlayError):
            random_regular_graph(7, 3, seed=0)
        with pytest.raises(OverlayError):
            random_regular_graph(5, 5, seed=0)

    def test_fixed_degree_random_is_regular(self):
        g = fixed_degree_random_graph(30, degree=4, seed=2)
        assert all(g.degree(i) == 4 for i in range(30))

    def test_gnp(self):
        g = gnp_random_graph(30, 0.2, seed=3)
        assert g.n == 30
        with pytest.raises(OverlayError):
            gnp_random_graph(10, 1.5)

    def test_ring_lattice_validation(self):
        with pytest.raises(OverlayError):
            ring_lattice_graph(2, k=1)
        with pytest.raises(OverlayError):
            ring_lattice_graph(10, k=5)

    def test_connect_components(self):
        g = OverlayGraph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        connected = connect_components(g, seed=1)
        assert connected.is_connected()
        # existing edges preserved
        assert 1 in connected.neighbors(0)


class TestPowerLaw:
    def test_minimum_degree_respected(self):
        g = power_law_graph(300, min_degree=2, seed=4)
        assert min(g.degree(i) for i in range(300)) >= 2

    def test_connected(self):
        g = power_law_graph(300, seed=5)
        assert g.is_connected()

    def test_heavy_tail(self):
        g = power_law_graph(800, seed=6)
        degrees = sorted((g.degree(i) for i in range(800)), reverse=True)
        # hubs exist: the top node has far more neighbors than the median
        assert degrees[0] >= 8 * degrees[len(degrees) // 2]
        exponent = estimated_exponent(g)
        assert 1.5 < exponent < 3.5

    def test_degree_sequence_sampler(self):
        degrees = sample_power_law_degrees(500, 2.2, 2, 60, seed=7)
        assert len(degrees) == 500
        assert sum(degrees) % 2 == 0
        assert min(degrees) >= 2
        assert max(degrees) <= 61  # +1 allowed by the parity bump

    def test_sampler_validation(self):
        with pytest.raises(OverlayError):
            sample_power_law_degrees(10, 0.9, 2, 10, seed=0)
        with pytest.raises(OverlayError):
            sample_power_law_degrees(10, 2.2, 0, 10, seed=0)
        with pytest.raises(OverlayError):
            sample_power_law_degrees(10, 2.2, 5, 4, seed=0)

    def test_small_n_rejected(self):
        with pytest.raises(OverlayError):
            power_law_graph(3)
