"""Tests for the Pastry insert/lookup protocol."""

from __future__ import annotations

import pytest

from repro.core.identifiers import IdSpace
from repro.errors import ConfigurationError, RoutingError
from repro.pastry.config import PastryConfig
from repro.pastry.protocol import PastryNetwork
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.sim.counters import TrafficCounters
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


@pytest.fixture(scope="module")
def network():
    return PastryNetwork(n=60, space=SPACE, seed=1)


class TestConstruction:
    def test_space_config_mismatch_rejected(self):
        with pytest.raises(ConfigurationError):
            PastryNetwork(n=10, space=IdSpace(bits=16, digit_bits=2), seed=0)

    def test_needs_n_or_ids(self):
        with pytest.raises(ConfigurationError):
            PastryNetwork(space=SPACE)

    def test_structure_sizes(self, network):
        assert network.n == 60
        assert network.average_leafset_size() == pytest.approx(8.0)
        assert network.average_table_entries() > 0


class TestStaticInsert:
    def test_plain_insert_stores_at_root_only(self, network):
        rng = derive_rng(2, "keys")
        key = SPACE.random_identifier(rng)
        result = network.insert_static(5, key)
        assert result.replicas == (network.root(key),)
        assert result.root == network.root(key)
        assert result.path[0] == 5
        assert result.path[-1] == result.root
        assert network.directory.has(result.root, key)

    def test_rr_insert_stores_along_route(self, network):
        rng = derive_rng(3, "keys")
        key = SPACE.random_identifier(rng)
        result = network.insert_static(7, key, replicate_on_route=True)
        assert set(result.replicas) == set(dict.fromkeys(result.path))
        for node in result.replicas:
            assert network.directory.has(node, key)

    def test_insert_message_count_is_path_length(self, network):
        rng = derive_rng(4, "keys")
        key = SPACE.random_identifier(rng)
        result = network.insert_static(9, key)
        assert result.messages == len(result.path) - 1


class TestLookup:
    def test_static_lookup_succeeds(self, network):
        rng = derive_rng(5, "keys")
        for _ in range(20):
            key = SPACE.random_identifier(rng)
            network.insert_static(rng.randrange(60), key)
            outcome = network.lookup(rng.randrange(60), key)
            assert outcome.success
            assert outcome.delivered_node == network.root(key)
            assert not outcome.misdelivered
            assert not outcome.dropped

    def test_lookup_without_insert_misdelivers(self, network):
        rng = derive_rng(6, "keys")
        key = SPACE.random_identifier(rng)
        outcome = network.lookup(0, key)
        assert not outcome.success
        assert outcome.misdelivered

    def test_counters_accumulate(self, network):
        rng = derive_rng(7, "keys")
        key = SPACE.random_identifier(rng)
        network.insert_static(0, key)
        counters = TrafficCounters()
        network.lookup(11, key, counters=counters)
        assert counters.messages_sent >= 1
        assert counters.replies_received == 1

    def test_origin_validated(self, network):
        with pytest.raises(RoutingError):
            network.lookup(60, SPACE.identifier(0))

    def test_offline_root_causes_failure(self):
        net = PastryNetwork(n=40, space=SPACE, seed=8)
        rng = derive_rng(8, "keys")
        key = SPACE.random_identifier(rng)
        net.insert_static(0, key)
        root = net.root(key)

        class RootDown:
            def is_online(self, node, time):  # noqa: ARG002
                return node != root

        outcome = net.lookup(1, key, availability=RootDown())
        assert not outcome.success
        # the lookup had to retransmit toward the dead root before rerouting
        assert outcome.retransmissions > 0 or outcome.misdelivered

    def test_heavy_flapping_reduces_success(self):
        net = PastryNetwork(n=60, space=SPACE, seed=9)
        rng = derive_rng(9, "keys")
        keys = [SPACE.random_identifier(rng) for _ in range(30)]
        for key in keys:
            net.insert_static(rng.randrange(60), key)
        schedule = FlappingSchedule(
            FlappingConfig(30, 30, 1.0), 60, seed=10, always_online={0}
        )
        successes = sum(
            net.lookup(0, key, start_time=100.0 + 60.0 * i, availability=schedule).success
            for i, key in enumerate(keys)
        )
        assert successes < 30  # perturbation must hurt
        assert successes > 0  # but not annihilate a 50%-online network

    def test_hop_cap_produces_drop(self):
        config = PastryConfig(max_route_hops=1)
        net = PastryNetwork(n=60, space=SPACE, config=config, seed=11)
        rng = derive_rng(11, "keys")
        dropped = 0
        for _ in range(30):
            key = SPACE.random_identifier(rng)
            outcome = net.lookup(rng.randrange(60), key)
            dropped += outcome.dropped
        assert dropped > 0
