"""Tests for routing metrics and the vectorised neighbor metric table."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import IdSpace
from repro.core.metric import (
    CommonDigitsMetric,
    NeighborMetricTable,
    PrefixLengthMetric,
    SuffixLengthMetric,
    common_digits,
    metric_by_name,
)
from repro.errors import ConfigurationError, RoutingError
from repro.overlay.random_graphs import ring_lattice_graph

SPACE = IdSpace(bits=16, digit_bits=4)
METRICS = [CommonDigitsMetric(), PrefixLengthMetric(), SuffixLengthMetric()]


def _random_ids(n, seed=0):
    rng = random.Random(seed)
    return SPACE.random_unique_identifiers(n, rng)


class TestScalarMetrics:
    def test_names(self):
        assert CommonDigitsMetric().name == "common-digits"
        assert PrefixLengthMetric().name == "prefix"
        assert SuffixLengthMetric().name == "suffix"

    def test_metric_by_name(self):
        assert isinstance(metric_by_name("common-digits"), CommonDigitsMetric)
        assert isinstance(metric_by_name("prefix"), PrefixLengthMetric)
        assert isinstance(metric_by_name("suffix"), SuffixLengthMetric)
        with pytest.raises(ConfigurationError):
            metric_by_name("hamming")

    def test_common_digits_helper(self):
        a, b = SPACE.from_hex("ab12"), SPACE.from_hex("ab92")
        assert common_digits(a, b) == 3

    def test_prefix_metric_scores(self):
        metric = PrefixLengthMetric()
        assert metric.score(SPACE.from_hex("abcd"), SPACE.from_hex("abff")) == 2
        assert metric.score(SPACE.from_hex("abcd"), SPACE.from_hex("abcd")) == 4

    def test_suffix_metric_scores(self):
        metric = SuffixLengthMetric()
        assert metric.score(SPACE.from_hex("abcd"), SPACE.from_hex("ffcd")) == 2
        assert metric.score(SPACE.from_hex("abcd"), SPACE.from_hex("abcf")) == 0


class TestNeighborMetricTable:
    def _table(self, metric, n=12, seed=3):
        overlay = ring_lattice_graph(n, k=2)
        ids = _random_ids(n, seed)
        return overlay, ids, NeighborMetricTable(overlay, ids, metric=metric)

    @pytest.mark.parametrize("metric", METRICS, ids=lambda m: m.name)
    def test_vectorised_matches_scalar(self, metric):
        overlay, ids, table = self._table(metric)
        rng = random.Random(9)
        for _ in range(20):
            node = rng.randrange(overlay.n)
            target = SPACE.random_identifier(rng)
            scores = table.scores(node, target)
            expected = [metric.score(target, ids[v]) for v in overlay.neighbors(node)]
            assert scores.tolist() == expected

    def test_neighbor_array_alignment(self):
        overlay, _ids, table = self._table(CommonDigitsMetric())
        for node in range(overlay.n):
            assert table.neighbor_array(node).tolist() == list(overlay.neighbors(node))

    def test_self_score(self):
        overlay, ids, table = self._table(CommonDigitsMetric())
        target = SPACE.from_hex("1234")
        for node in range(overlay.n):
            assert table.self_score(node, target) == target.common_digits(ids[node])

    def test_id_count_mismatch_rejected(self):
        overlay = ring_lattice_graph(6, k=1)
        with pytest.raises(RoutingError):
            NeighborMetricTable(overlay, _random_ids(5))

    def test_scores_dtype_and_shape(self):
        overlay, _ids, table = self._table(CommonDigitsMetric())
        scores = table.scores(0, SPACE.from_hex("0000"))
        assert scores.shape == (overlay.degree(0),)
        assert np.issubdtype(scores.dtype, np.integer)


@given(st.integers(0, SPACE.max_value), st.integers(0, SPACE.max_value))
def test_prefix_vectorised_equals_scalar(x, y):
    metric = PrefixLengthMetric()
    a, b = SPACE.identifier(x), SPACE.identifier(y)
    matrix = b.digits_array.reshape(1, -1)
    assert metric.scores_matrix(a.digits_array, matrix)[0] == metric.score(a, b)


@given(st.integers(0, SPACE.max_value), st.integers(0, SPACE.max_value))
def test_suffix_vectorised_equals_scalar(x, y):
    metric = SuffixLengthMetric()
    a, b = SPACE.identifier(x), SPACE.identifier(y)
    matrix = b.digits_array.reshape(1, -1)
    assert metric.scores_matrix(a.digits_array, matrix)[0] == metric.score(a, b)
