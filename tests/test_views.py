"""Tests for the probed-view oracle (maintenance beliefs)."""

from __future__ import annotations

import itertools

import pytest

from repro.errors import ConfigurationError
from repro.pastry.config import PastryConfig
from repro.pastry.maintenance import MaintenanceReplay
from repro.pastry.views import LEAFSET, TABLE, ProbedViewOracle
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule


def _oracle(idle, offline, p, n=6, seed=0, **kwargs):
    schedule = FlappingSchedule(FlappingConfig(idle, offline, p), n, seed=seed)
    return ProbedViewOracle(schedule, PastryConfig(), seed=seed, **kwargs), schedule


class TestBasics:
    def test_all_online_all_believed_alive(self):
        oracle, _ = _oracle(30, 30, 0.0)
        for y, x in itertools.permutations(range(6), 2):
            for t in (0.0, 100.0, 1000.0):
                assert oracle.believes_alive(y, x, t, LEAFSET)
                assert oracle.believes_alive(y, x, t, TABLE)

    def test_self_belief(self):
        oracle, _ = _oracle(30, 30, 1.0)
        assert oracle.believes_alive(3, 3, 500.0)

    def test_initial_belief_alive(self):
        oracle, _ = _oracle(300, 300, 1.0)
        # before any probe could have fired
        assert oracle.believes_alive(0, 1, 0.0, LEAFSET)

    def test_long_dead_target_becomes_believed_dead(self):
        oracle, schedule = _oracle(300, 300, 1.0, seed=3)
        # find a time where node 1 has been offline for > one probe round
        # and node 0 online (so node 0 probed it)
        found = False
        for t in range(100, 3000, 10):
            t = float(t)
            if (
                not schedule.is_online(1, t)
                and not schedule.is_online(1, t - 45.0)
                and schedule.is_online(0, t)
                and schedule.is_online(0, t - 45.0)
            ):
                assert not oracle.believes_alive(0, 1, t, LEAFSET)
                found = True
                break
        assert found

    def test_recovered_target_becomes_believed_alive_again(self):
        oracle, schedule = _oracle(300, 300, 1.0, seed=4)
        # a time where node 1 has been online for > one probe round
        found = False
        for t in range(400, 4000, 10):
            t = float(t)
            if all(schedule.is_online(1, t - dt) for dt in (0.0, 20.0, 40.0)) and all(
                schedule.is_online(0, t - dt) for dt in (0.0, 20.0, 40.0)
            ):
                assert oracle.believes_alive(0, 1, t, LEAFSET)
                found = True
                break
        assert found

    def test_probe_phase_within_period(self):
        oracle, _ = _oracle(30, 30, 0.5)
        config = PastryConfig()
        for node in range(6):
            assert 0 <= oracle.probe_phase(node, LEAFSET) < config.leafset_probe_period
            assert (
                0
                <= oracle.probe_phase(node, TABLE)
                < config.routing_table_probe_period
            )

    def test_unknown_kind_rejected(self):
        oracle, _ = _oracle(30, 30, 0.5)
        with pytest.raises(ConfigurationError):
            oracle.probe_period("gossip")

    def test_scan_limit_validated(self):
        schedule = FlappingSchedule(FlappingConfig(1, 1, 0.5), 4, seed=0)
        with pytest.raises(ConfigurationError):
            ProbedViewOracle(schedule, PastryConfig(), scan_limit=0)

    def test_short_flap_bridged_by_probe_retries(self):
        """With 1:1 flapping, a probe that catches a node offline retries 3 s
        later when the node is back: nodes stay believed alive."""
        oracle, schedule = _oracle(1, 1, 1.0, seed=5)
        sampled = 0
        believed_alive = 0
        for t in range(50, 250):
            t = float(t)
            if schedule.is_online(0, t):
                sampled += 1
                believed_alive += oracle.believes_alive(0, 1, t, LEAFSET)
        assert sampled > 0
        assert believed_alive / sampled > 0.95


class TestAgainstReplay:
    """The oracle's backward scan must agree with a forward event replay."""

    @pytest.mark.parametrize("idle,offline,p", [(30, 30, 0.7), (45, 15, 0.5), (300, 300, 0.9)])
    def test_exact_agreement(self, idle, offline, p):
        oracle, _schedule = _oracle(idle, offline, p, n=5, seed=11, scan_limit=10_000)
        horizon = 40 * (idle + offline)
        pairs = list(itertools.permutations(range(5), 2))
        replay = MaintenanceReplay(oracle, pairs, kind=LEAFSET, until=horizon)
        times = [13.7 + k * (horizon - 20) / 60 for k in range(60)]
        for y, x in pairs:
            for t in times:
                assert oracle.believes_alive(y, x, t, LEAFSET) == replay.believes_alive(
                    y, x, t
                ), (y, x, t)

    def test_replay_transitions_sorted(self):
        oracle, _ = _oracle(30, 30, 0.8, n=4, seed=12)
        replay = MaintenanceReplay(oracle, [(0, 1)], kind=LEAFSET, until=1000.0)
        events = replay.transitions(0, 1)
        assert events == sorted(events)


class TestMaintenanceTrafficEstimate:
    def test_scales_with_duration_and_sizes(self):
        oracle, _ = _oracle(30, 30, 0.5, n=10)
        small = oracle.expected_maintenance_messages(1000.0, 8.0, 20.0)
        double_duration = oracle.expected_maintenance_messages(2000.0, 8.0, 20.0)
        assert double_duration == pytest.approx(2 * small)
        more_entries = oracle.expected_maintenance_messages(1000.0, 8.0, 40.0)
        assert more_entries > small

    def test_offline_nodes_probe_less(self):
        heavy, _ = _oracle(30, 30, 1.0, n=10)
        light, _ = _oracle(30, 30, 0.1, n=10)
        assert heavy.expected_maintenance_messages(
            1000.0, 8.0, 20.0
        ) < light.expected_maintenance_messages(1000.0, 8.0, 20.0)
