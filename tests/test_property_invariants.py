"""Property-based invariants for the core metrics and every availability
process.

Two invariant families back the scenario engine:

- *metric geometry*: the routing metrics are genuine (ultra)metrics —
  common-digits distance (Hamming on digit strings) satisfies the triangle
  inequality, prefix/suffix match lengths are ultrametric, and all are
  symmetric;
- *schedule consistency*: for every
  :class:`repro.perturbation.base.AvailabilityProcess` implementation, the
  point view (``is_online``) and the interval view (``offline_intervals``)
  must agree — a schedule may never report a node online during one of its
  own offline windows, nor offline outside of them.
"""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import IdSpace
from repro.perturbation.adversarial import (
    AdversarialRemoval,
    AdversarialRemovalConfig,
)
from repro.perturbation.base import AvailabilityProcess, merge_intervals
from repro.perturbation.churn import ChurnConfig, ChurnSchedule
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.outage import RegionalOutage, RegionalOutageConfig
from repro.perturbation.storms import JoinStormConfig, JoinStormSchedule
from repro.perturbation.timeline import ScenarioTimeline
from repro.perturbation.waves import ChurnWaveConfig, ChurnWaveSchedule

SPACE = IdSpace(bits=16, digit_bits=4)
ids = st.integers(0, SPACE.max_value)


# -- metric geometry ----------------------------------------------------------


@given(ids, ids)
def test_common_digits_symmetry(x, y):
    a, b = SPACE.identifier(x), SPACE.identifier(y)
    assert a.common_digits(b) == b.common_digits(a)


@given(ids, ids, ids)
def test_common_digits_distance_triangle_inequality(x, y, z):
    """M - common_digits is Hamming distance on digit strings: a metric."""
    a, b, c = (SPACE.identifier(v) for v in (x, y, z))
    m = SPACE.num_digits

    def dist(u, v):
        return m - u.common_digits(v)

    assert dist(a, c) <= dist(a, b) + dist(b, c)
    assert dist(a, a) == 0


@given(ids, ids, ids)
def test_prefix_match_is_ultrametric(x, y, z):
    """Shared-prefix length: match(a, c) >= min(match(a, b), match(b, c))."""
    a, b, c = (SPACE.identifier(v) for v in (x, y, z))
    assert a.prefix_match_len(b) == b.prefix_match_len(a)
    assert a.prefix_match_len(c) >= min(a.prefix_match_len(b), b.prefix_match_len(c))


@given(ids, ids, ids)
def test_suffix_match_is_ultrametric(x, y, z):
    a, b, c = (SPACE.identifier(v) for v in (x, y, z))
    assert a.suffix_match_len(b) == b.suffix_match_len(a)
    assert a.suffix_match_len(c) >= min(a.suffix_match_len(b), b.suffix_match_len(c))


@given(ids, ids, ids)
def test_circular_distance_is_a_metric(x, y, z):
    a, b, c = (SPACE.identifier(v) for v in (x, y, z))
    assert a.circular_distance(b) == b.circular_distance(a)
    assert a.circular_distance(a) == 0
    assert a.circular_distance(c) <= a.circular_distance(b) + b.circular_distance(c)
    assert a.circular_distance(b) <= SPACE.size // 2


# -- schedule consistency -----------------------------------------------------

HORIZON = 400.0

seeds = st.integers(0, 2**31 - 1)
nodes_counts = st.integers(2, 8)
times = st.floats(0.0, HORIZON, allow_nan=False, allow_infinity=False)


def build_flapping(seed: int, num_nodes: int) -> FlappingSchedule:
    config = FlappingConfig(
        idle_period=7.0, offline_period=13.0, probability=0.7
    )
    return FlappingSchedule(config, num_nodes, seed=seed, always_online={0})


def build_churn(seed: int, num_nodes: int) -> ChurnSchedule:
    config = ChurnConfig(mean_session=25.0, mean_downtime=15.0)
    return ChurnSchedule(config, num_nodes, seed=seed, always_online={0})


def build_wave(seed: int, num_nodes: int) -> ChurnWaveSchedule:
    config = ChurnWaveConfig(
        mean_session=25.0,
        mean_downtime=15.0,
        wave_period=80.0,
        wave_duration=20.0,
        intensity=4.0,
    )
    return ChurnWaveSchedule(config, num_nodes, seed=seed, always_online={0})


def build_outage(seed: int, num_nodes: int) -> RegionalOutage:
    regions = [node % 2 for node in range(num_nodes)]
    config = RegionalOutageConfig(start=50.0, duration=120.0, severity=0.5)
    return RegionalOutage(regions, config, seed=seed, always_online={0})


def build_storm(seed: int, num_nodes: int) -> JoinStormSchedule:
    config = JoinStormConfig(arrival_time=90.0, late_fraction=0.6, stagger=30.0)
    return JoinStormSchedule(config, num_nodes, seed=seed, always_online={0})


def build_adversarial(seed: int, num_nodes: int) -> AdversarialRemoval:
    degrees = [(node * 7) % num_nodes for node in range(num_nodes)]
    config = AdversarialRemovalConfig(fraction=0.5, start=60.0, targeting="degree")
    return AdversarialRemoval(degrees, config, seed=seed, always_online={0})


def build_timeline(seed: int, num_nodes: int) -> ScenarioTimeline:
    return ScenarioTimeline(
        [build_flapping(seed, num_nodes), build_outage(seed, num_nodes)]
    )


ALL_BUILDERS = (
    build_flapping,
    build_churn,
    build_wave,
    build_outage,
    build_storm,
    build_adversarial,
    build_timeline,
)


def in_offline_window(intervals, time: float) -> bool:
    return any(start <= time < end for start, end in intervals)


@given(st.sampled_from(ALL_BUILDERS), seeds, nodes_counts, st.lists(times, min_size=1, max_size=8))
def test_point_and_interval_views_agree(builder, seed, num_nodes, sample_times):
    """A node is offline at t iff t falls in one of its reported windows."""
    process = builder(seed, num_nodes)
    assert isinstance(process, AvailabilityProcess)
    for node in range(num_nodes):
        intervals = process.offline_intervals(node, HORIZON)
        # windows are non-empty, ordered, and disjoint (inf only ever last)
        for start, end in intervals:
            assert start < end
        for (_s1, e1), (s2, _e2) in zip(intervals, intervals[1:]):
            assert e1 <= s2
        for t in sample_times:
            assert process.is_online(node, t) == (
                not in_offline_window(intervals, t)
            ), (builder.__name__, node, t)


@given(st.sampled_from(ALL_BUILDERS), seeds, nodes_counts)
def test_always_online_nodes_report_no_windows(builder, seed, num_nodes):
    process = builder(seed, num_nodes)
    for node in process.always_online:
        assert process.offline_intervals(node, HORIZON) == []
        assert process.is_online(node, 0.0)
        assert process.is_online(node, HORIZON / 2)


@given(st.sampled_from(ALL_BUILDERS), seeds, nodes_counts)
def test_schedules_are_deterministic(builder, seed, num_nodes):
    """Two instances from the same seed agree on every window."""
    a, b = builder(seed, num_nodes), builder(seed, num_nodes)
    for node in range(num_nodes):
        assert a.offline_intervals(node, HORIZON) == b.offline_intervals(node, HORIZON)


@given(
    st.lists(
        st.tuples(st.floats(0, 100, allow_nan=False), st.floats(0.001, 50, allow_nan=False)),
        max_size=10,
    )
)
def test_merge_intervals_properties(raw):
    intervals = [(start, start + width) for start, width in raw]
    merged = merge_intervals(intervals)
    # sorted, disjoint, non-touching
    for (s1, e1), (s2, e2) in zip(merged, merged[1:]):
        assert e1 < s2
    # coverage is preserved both ways at interval endpoints and midpoints
    def covered(windows, t):
        return any(s <= t < e for s, e in windows)

    for start, end in intervals:
        for t in (start, (start + end) / 2):
            assert covered(merged, t)
    for start, end in merged:
        assert covered(intervals, start)
