"""Tests for the ASCII table renderer."""

from __future__ import annotations

from repro.util.tables import format_float, render_table


class TestFormatFloat:
    def test_integers_pass_through(self):
        assert format_float(7) == "7"
        assert format_float(-3) == "-3"

    def test_floats_fixed_digits(self):
        assert format_float(2.5) == "2.500"
        assert format_float(0.25, digits=2) == "0.25"

    def test_whole_floats_compact(self):
        assert format_float(3.0) == "3"

    def test_nan(self):
        assert format_float(float("nan")) == "nan"

    def test_non_numeric_passthrough(self):
        assert format_float("abc") == "abc"
        assert format_float(True) == "True"


class TestRenderTable:
    def test_alignment_and_separator(self):
        text = render_table(["a", "bb"], [[1, 2.5], [10, 0.25]])
        lines = text.splitlines()
        assert lines[0] == "| a  | bb    |"
        assert lines[1] == "|----|-------|"
        assert lines[2] == "| 1  | 2.500 |"
        assert lines[3] == "| 10 | 0.250 |"
        assert len({len(line) for line in lines}) == 1  # rectangular

    def test_title(self):
        text = render_table(["x"], [[1]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_empty_rows(self):
        text = render_table(["col1", "col2"], [])
        assert "col1" in text
        assert len(text.splitlines()) == 2

    def test_wide_cells_stretch_columns(self):
        text = render_table(["x"], [["a-very-long-value"]])
        header, sep, row = text.splitlines()
        assert len(header) == len(sep) == len(row)
        assert "a-very-long-value" in row
