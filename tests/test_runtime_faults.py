"""Fault-injection suite for the resumable sweep runtime.

Each test injects one of the failure modes the runtime claims to survive —
a worker SIGKILLed mid-task, a worker hung past its deadline, a truncated
artifact, an orphaned ``running`` claim, a parent process killed mid-sweep
— and asserts the convergence contract: after (bounded-retry) recovery or
``--resume``, the store's deterministic artifacts are byte-identical to
those of the same sweep run uninterrupted with ``--jobs 1``.
"""

from __future__ import annotations

import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

from repro.experiments.registry import register, unregister
from repro.experiments.runner import SweepSpec, run_sweep
from repro.experiments.spec import ExperimentSpec, Pipeline
from repro.experiments.store import ResultStore

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent


def artifact_bytes(root):
    """relative path -> bytes for every deterministic artifact under root."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json")) + sorted(root.rglob("*.csv"))
        if path.name != "manifest.json"  # manifests hold volatile timestamps
    }


@pytest.fixture()
def faulty_experiment(tmp_path):
    """Register a deterministic experiment with an arm-able fault stub.

    The measure stage checks ``<flags>/<kind>_<seed>``; if present the flag
    is consumed (so exactly one attempt faults) and the fault fires:
    ``kill`` SIGKILLs the worker mid-task, ``hang`` sleeps far past any
    test timeout, ``raise`` raises.  Unarmed runs produce rows derived
    only from the seed — byte-identical however many faults preceded them.
    Worker processes inherit the registration through fork, so this works
    without any import-able module.
    """
    flags = tmp_path / "flags"
    flags.mkdir()

    def measure(ctx, built, cell):
        for kind in ("kill", "hang", "raise"):
            flag = flags / f"{kind}_{ctx.seed}"
            if flag.exists():
                flag.unlink()
                if kind == "kill":
                    os.kill(os.getpid(), signal.SIGKILL)
                elif kind == "hang":
                    time.sleep(120.0)
                else:
                    raise RuntimeError(f"armed failure for seed {ctx.seed}")
        return [(ctx.seed, round(0.5 * ctx.seed + 1.0, 3))]

    spec = ExperimentSpec(
        experiment_id="fault-stub",
        title="fault-injection stub",
        pipeline=Pipeline(
            columns=("seed", "value"), measure=measure, key_columns=("seed",)
        ),
        tags=("test",),
    )
    register(spec)
    try:
        yield flags
    finally:
        unregister("fault-stub")


def _sweep_spec(seeds=(0, 1, 2)):
    return SweepSpec(("fault-stub",), seeds=tuple(seeds), scale="smoke")


def _reference_run(tmp_path, seeds=(0, 1, 2)):
    """The uninterrupted --jobs 1 baseline every faulted run must match."""
    store = ResultStore(tmp_path / "reference")
    report = run_sweep(_sweep_spec(seeds), store, jobs=1)
    assert not report.failures
    return artifact_bytes(store.root)


class TestWorkerCrash:
    def test_sigkilled_worker_is_retried_to_convergence(
        self, tmp_path, faulty_experiment
    ):
        for seed in (0, 2):
            (faulty_experiment / f"kill_{seed}").touch()
        store = ResultStore(tmp_path / "faulted")
        report = run_sweep(
            _sweep_spec(), store, jobs=2, max_retries=2, retry_backoff=0.0
        )
        assert not report.failures
        assert sorted(o.seed for o in report.outcomes) == [0, 1, 2]
        rows = {r.seed: r for r in store.ledger.rows(experiment_id="fault-stub")}
        assert all(row.state == "done" for row in rows.values())
        # the killed seeds consumed their crashed attempt plus the retry
        assert rows[0].attempts == 2
        assert rows[1].attempts == 1
        assert rows[2].attempts == 2
        assert artifact_bytes(store.root) == _reference_run(tmp_path)

    def test_raising_worker_exhausts_budget_and_fails(
        self, tmp_path, faulty_experiment
    ):
        (faulty_experiment / "raise_1").touch()
        store = ResultStore(tmp_path / "faulted")
        report = run_sweep(
            _sweep_spec(), store, jobs=1, max_retries=0, retry_backoff=0.0
        )
        (failure,) = report.failures
        assert (failure.seed, failure.attempts) == (1, 1)
        assert "RuntimeError" in failure.error
        assert store.ledger.row(("fault-stub", "smoke", 1)).state == "failed"
        # the other seeds still completed and aggregated
        assert sorted(o.seed for o in report.outcomes) == [0, 2]
        assert len(report.aggregates) == 1
        # a resume retries the failed task (flag consumed -> now succeeds)
        resumed = run_sweep(
            _sweep_spec(), store, jobs=1, resume=True, retry_backoff=0.0
        )
        assert not resumed.failures
        assert [o.seed for o in resumed.outcomes] == [1]
        assert sorted(s.seed for s in resumed.skipped) == [0, 2]
        assert artifact_bytes(store.root) == _reference_run(tmp_path)


class TestHungWorker:
    def test_hung_worker_is_killed_and_retried(self, tmp_path, faulty_experiment):
        (faulty_experiment / "hang_1").touch()
        store = ResultStore(tmp_path / "faulted")
        report = run_sweep(
            _sweep_spec(),
            store,
            jobs=2,
            max_retries=1,
            task_timeout=1.0,
            retry_backoff=0.0,
        )
        assert not report.failures
        row = store.ledger.row(("fault-stub", "smoke", 1))
        assert (row.state, row.attempts) == ("done", 2)
        assert artifact_bytes(store.root) == _reference_run(tmp_path)

    def test_forever_hung_task_fails_with_timeout_error(
        self, tmp_path, faulty_experiment
    ):
        # a flag only arms one attempt, so allow zero retries to make the
        # single hung attempt final
        (faulty_experiment / "hang_0").touch()
        store = ResultStore(tmp_path / "faulted")
        report = run_sweep(
            _sweep_spec((0,)),
            store,
            jobs=1,
            max_retries=0,
            task_timeout=0.5,
            retry_backoff=0.0,
        )
        (failure,) = report.failures
        assert "timed out" in failure.error
        assert store.ledger.row(("fault-stub", "smoke", 0)).state == "failed"


class TestArtifactCorruption:
    def test_truncated_artifact_is_detected_and_rerun(
        self, tmp_path, faulty_experiment
    ):
        store = ResultStore(tmp_path / "faulted")
        run_sweep(_sweep_spec(), store, jobs=1)
        victim = store.seed_path("fault-stub", "smoke", 1)
        victim.write_bytes(victim.read_bytes()[:10])  # truncate mid-file

        resumed = run_sweep(_sweep_spec(), store, jobs=1, resume=True)
        assert [o.seed for o in resumed.outcomes] == [1]
        assert sorted(s.seed for s in resumed.skipped) == [0, 2]
        assert artifact_bytes(store.root) == _reference_run(tmp_path)

    def test_deleted_artifact_is_rerun(self, tmp_path, faulty_experiment):
        store = ResultStore(tmp_path / "faulted")
        run_sweep(_sweep_spec(), store, jobs=1)
        store.seed_path("fault-stub", "smoke", 2).unlink()

        resumed = run_sweep(_sweep_spec(), store, jobs=1, resume=True)
        assert [o.seed for o in resumed.outcomes] == [2]
        assert artifact_bytes(store.root) == _reference_run(tmp_path)


class TestOrphanedClaims:
    def test_orphaned_running_row_is_reclaimed(self, tmp_path, faulty_experiment):
        store = ResultStore(tmp_path / "faulted")
        run_sweep(_sweep_spec(), store, jobs=1)
        # simulate a parent killed between claim and complete: the row is
        # stranded 'running' (artifact state irrelevant to the orphan path)
        ledger = store.ledger
        task = ("fault-stub", "smoke", 1)
        ledger.reopen_done(task, "simulating crashed parent")
        ledger.claim(task, worker="pid:dead-parent")
        assert ledger.row(task).state == "running"

        resumed = run_sweep(_sweep_spec(), store, jobs=1, resume=True)
        assert [o.seed for o in resumed.outcomes] == [1]
        assert sorted(s.seed for s in resumed.skipped) == [0, 2]
        row = ledger.row(task)
        assert row.state == "done"
        assert row.attempts == 3  # first run + orphaned claim + reclaimed rerun
        assert artifact_bytes(store.root) == _reference_run(tmp_path)


class TestParityUnderParallelResume:
    def test_jobs_n_resume_matches_uninterrupted_jobs_1(
        self, tmp_path, faulty_experiment
    ):
        # crash two workers, resume with a pool: bytes must still match the
        # serial uninterrupted reference exactly
        for seed in (0, 1):
            (faulty_experiment / f"kill_{seed}").touch()
        store = ResultStore(tmp_path / "faulted")
        first = run_sweep(
            _sweep_spec(), store, jobs=2, max_retries=0, retry_backoff=0.0
        )
        assert {f.seed for f in first.failures} == {0, 1}

        resumed = run_sweep(
            _sweep_spec(), store, jobs=2, resume=True, retry_backoff=0.0
        )
        assert not resumed.failures
        assert sorted(o.seed for o in resumed.outcomes) == [0, 1]
        assert [s.seed for s in resumed.skipped] == [2]
        assert artifact_bytes(store.root) == _reference_run(tmp_path)


class TestParentKill:
    def test_parent_sigkill_then_cli_resume_converges(self, tmp_path):
        """Kill the *parent* sweep process mid-run; `sweep --resume` must
        finish the seed set with bytes identical to an uninterrupted run."""
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        out = tmp_path / "interrupted"
        command = [
            sys.executable,
            "-m",
            "repro.experiments.cli",
            "sweep",
            "fig7",
            "--seeds",
            "0..1",
            "--scale",
            "smoke",
            "--out",
            str(out),
        ]
        process = subprocess.Popen(
            command, env=env, stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL
        )
        try:
            # kill -9 the parent as soon as the first artifact is committed
            first = out / "fig7" / "smoke" / "seed_0.json"
            deadline = time.monotonic() + 60.0
            while not first.exists() and time.monotonic() < deadline:
                if process.poll() is not None:
                    break  # finished before we could kill it: still a valid run
                time.sleep(0.01)
            if process.poll() is None:
                process.kill()
            process.wait(timeout=30)
        finally:
            if process.poll() is None:  # pragma: no cover - cleanup guard
                process.kill()

        resume = subprocess.run(
            command + ["--resume"], env=env, capture_output=True, text=True
        )
        assert resume.returncode == 0, resume.stderr

        reference = tmp_path / "reference"
        spec = SweepSpec(("fig7",), seeds=(0, 1), scale="smoke")
        run_sweep(spec, ResultStore(reference), jobs=1)
        assert artifact_bytes(out) == artifact_bytes(reference)


class TestRetryBackoffCap:
    """Exponential retry backoff is capped (issue satellite): a generous
    retry budget must never schedule a multi-minute sleep."""

    def test_delay_doubles_then_caps(self):
        from repro.experiments.runtime import RuntimeConfig, backoff_delay

        config = RuntimeConfig(retry_backoff=1.0, retry_backoff_cap=30.0)
        assert [backoff_delay(config, n) for n in (1, 2, 3, 4, 5)] == [
            1.0,
            2.0,
            4.0,
            8.0,
            16.0,
        ]
        assert backoff_delay(config, 6) == 30.0  # 32 would exceed the cap
        assert backoff_delay(config, 50) == 30.0  # no overflow blow-up either

    def test_cap_applies_to_large_bases(self):
        from repro.experiments.runtime import RuntimeConfig, backoff_delay

        config = RuntimeConfig(retry_backoff=120.0, retry_backoff_cap=30.0)
        assert backoff_delay(config, 1) == 30.0

    def test_cap_validation(self):
        from repro.errors import ExperimentError
        from repro.experiments.runtime import RuntimeConfig

        with pytest.raises(ExperimentError, match="retry-backoff-cap"):
            RuntimeConfig(retry_backoff_cap=0.0)
        with pytest.raises(ExperimentError, match="retry-backoff-cap"):
            RuntimeConfig(retry_backoff_cap=-5.0)

    def test_run_sweep_threads_cap_through(self, tmp_path, faulty_experiment):
        (faulty_experiment / "raise_1").touch()
        store = ResultStore(tmp_path / "capped")
        started = time.monotonic()
        report = run_sweep(
            _sweep_spec(),
            store,
            jobs=1,
            max_retries=2,
            retry_backoff=100.0,  # uncapped, the retry would sleep >100s
            retry_backoff_cap=0.05,
        )
        assert time.monotonic() - started < 60.0
        assert not report.failures
        rows = {r.seed: r for r in store.ledger.rows(experiment_id="fault-stub")}
        assert rows[1].attempts == 2  # the armed raise plus the capped retry
