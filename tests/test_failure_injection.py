"""Failure-injection tests: extreme availability patterns against both
protocol stacks."""

from __future__ import annotations

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.timed import TimedMPILNetwork
from repro.overlay.random_graphs import fixed_degree_random_graph
from repro.pastry.protocol import PastryNetwork
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


class Blackout:
    """Everyone except an allowlist is offline."""

    def __init__(self, allow=frozenset()):
        self.allow = frozenset(allow)

    def is_online(self, node, time):  # noqa: ARG002
        return node in self.allow


class HoldersDown:
    def __init__(self, holders):
        self.holders = frozenset(holders)

    def is_online(self, node, time):  # noqa: ARG002
        return node not in self.holders


def _timed_network(seed=0, n=60):
    overlay = fixed_degree_random_graph(n, degree=8, seed=seed)
    net = TimedMPILNetwork(
        overlay,
        space=SPACE,
        config=MPILConfig(max_flows=8, per_flow_replicas=4),
        seed=seed,
    )
    rng = derive_rng(seed, "objects")
    obj = net.random_object_id(rng)
    net.insert_static(rng.randrange(n), obj)
    return net, obj


class TestMPILUnderTotalFailure:
    def test_total_blackout_zero_success(self):
        net, obj = _timed_network(seed=1)
        net.availability = Blackout(allow={0})
        result = net.lookup_at(0, obj, start_time=10.0)
        assert not result.success
        # every first-hop send was lost to an offline node
        assert result.counters.lost_offline == result.counters.messages_sent
        assert result.counters.messages_sent >= 1

    def test_only_holders_down_blocks_all_replies(self):
        net, obj = _timed_network(seed=2)
        holders = net.directory.holders(obj)
        net.availability = HoldersDown(holders)
        result = net.lookup_at(0, obj, start_time=10.0)
        assert not result.success
        assert result.counters.lost_offline >= 1

    def test_single_holder_alive_suffices(self):
        net, obj = _timed_network(seed=3)
        holders = sorted(net.directory.holders(obj))
        if len(holders) < 2:
            return  # nothing to selectively revive
        down = frozenset(holders[1:])
        net.availability = HoldersDown(down)
        # many client positions; redundancy should find the lone survivor
        successes = sum(
            net.lookup_at(origin, obj, start_time=10.0).success
            for origin in range(0, 40, 5)
            if origin not in down
        )
        assert successes >= 1


class TestPastryUnderTotalFailure:
    def test_everyone_dead_but_client(self):
        net = PastryNetwork(n=40, space=SPACE, seed=4)
        rng = derive_rng(4, "keys")
        key = SPACE.random_identifier(rng)
        net.insert_static(0, key)
        outcome = net.lookup(1, key, availability=Blackout(allow={1}))
        assert not outcome.success
        # the client retransmitted, learned its candidates dead, and either
        # misdelivered to itself or dropped
        assert outcome.retransmissions > 0
        assert outcome.misdelivered or outcome.dropped

    def test_root_neighborhood_down_misdelivers(self):
        net = PastryNetwork(n=40, space=SPACE, seed=5)
        rng = derive_rng(5, "keys")
        key = SPACE.random_identifier(rng)
        net.insert_static(0, key)
        root = net.root(key)
        down = {root} | set(net.leaf_sets[root])

        class NeighborhoodDown:
            def is_online(self, node, time):  # noqa: ARG002
                return node not in down

        origin = next(v for v in range(40) if v not in down)
        outcome = net.lookup(origin, key, availability=NeighborhoodDown())
        assert not outcome.success
