"""Tests for MPIL message types."""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.identifiers import IdSpace
from repro.core.messages import KIND_INSERT, KIND_LOOKUP, LookupReply, MPILMessage

SPACE = IdSpace(bits=16, digit_bits=4)


def _message(**overrides):
    defaults = dict(
        kind=KIND_INSERT,
        request_id=7,
        object_id=SPACE.identifier(0xABCD),
        origin=3,
        owner=3,
        at=3,
        route=(),
        max_flows=10,
        replicas_left=5,
        hop=0,
        given_flows=0,
    )
    defaults.update(overrides)
    return MPILMessage(**defaults)


class TestChild:
    def test_child_extends_route_with_current_node(self):
        parent = _message(at=3, route=(1, 2))
        child = parent.child(next_node=9, budget=4)
        assert child.route == (1, 2, 3)
        assert child.at == 9

    def test_child_increments_hop_and_sets_given_flows(self):
        parent = _message(hop=2, given_flows=0)
        child = parent.child(5, 1)
        assert child.hop == 3
        assert child.given_flows == 1

    def test_child_carries_budget_and_request_identity(self):
        parent = _message()
        child = parent.child(5, 2)
        assert child.max_flows == 2
        assert child.request_id == parent.request_id
        assert child.object_id == parent.object_id
        assert child.origin == parent.origin
        assert child.owner == parent.owner
        assert child.kind == parent.kind

    def test_route_grows_monotonically_over_generations(self):
        """Each hop appends exactly the forwarding node — this is what
        guarantees per-flow route simplicity (no revisits within a flow)."""
        msg = _message(at=0)
        visited = [0]
        for next_node in (4, 2, 8):
            msg = msg.child(next_node, msg.max_flows)
            assert msg.route == tuple(visited)
            assert len(set(msg.route)) == len(msg.route)
            visited.append(next_node)

    def test_replicas_left_copied_not_shared(self):
        parent = _message(replicas_left=3)
        child = parent.child(5, 1)
        child.replicas_left = 1
        assert parent.replicas_left == 3


class TestLookupReply:
    def test_frozen(self):
        reply = LookupReply(
            request_id=1, object_id=SPACE.identifier(1), holder=2, owner=3, hop=4
        )
        with pytest.raises(dataclasses.FrozenInstanceError):
            reply.holder = 9

    def test_kinds(self):
        assert KIND_INSERT == "insert"
        assert KIND_LOOKUP == "lookup"
