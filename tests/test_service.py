"""Tests for the sustained-traffic service mode (repro.service)."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.base import p50, p95, p99, percentile, t_critical_95
from repro.experiments.perturbed import build_testbed
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.service.arrivals import fixed_arrivals, generate_arrivals, poisson_arrivals
from repro.service.driver import (
    SERVICE_COLUMNS,
    QueryRecord,
    ServiceConfig,
    run_service,
    service_rows,
)
from repro.service.windows import (
    SLOPolicy,
    num_windows,
    peak_in_flight,
    summarize_windows,
    window_of,
)
from repro.sim.availability import AlwaysOnline
from repro.sim.rng import derive_rng


class TestPercentileHelper:
    """The windowed-percentile primitive (issue satellite: coverage for
    empty windows, single samples, and interpolation determinism)."""

    def test_empty_window_returns_zero_sentinel(self):
        assert percentile([], 99.0) == 0.0
        assert p50([]) == p95([]) == p99([]) == 0.0

    def test_single_sample_is_every_percentile(self):
        for q in (0.0, 50.0, 95.0, 99.0, 100.0):
            assert percentile([7.25], q) == 7.25

    def test_linear_interpolation_matches_numpy_definition(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert p50(values) == pytest.approx(2.5)
        assert percentile(values, 25.0) == pytest.approx(1.75)
        assert percentile([0.0, 10.0], 95.0) == pytest.approx(9.5)
        assert percentile(values, 0.0) == 1.0
        assert percentile(values, 100.0) == 4.0

    def test_interpolation_is_order_independent(self):
        shuffled = [3.0, 1.0, 4.0, 2.0, 5.0]
        assert p95(shuffled) == p95(sorted(shuffled)) == p95(sorted(shuffled, reverse=True))

    def test_deterministic_across_repeated_calls(self):
        rng = derive_rng(0, "percentile-samples")
        values = [rng.random() for _ in range(97)]
        first = [percentile(values, q) for q in (50.0, 95.0, 99.0)]
        second = [percentile(values, q) for q in (50.0, 95.0, 99.0)]
        assert first == second

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ExperimentError, match="percentile"):
            percentile([1.0], 101.0)
        with pytest.raises(ExperimentError, match="percentile"):
            percentile([1.0], -0.5)


class TestStudentTCI:
    """ci95 now uses the Student-t critical value (issue satellite)."""

    def test_known_critical_values(self):
        assert t_critical_95(1) == pytest.approx(12.706, abs=1e-3)
        assert t_critical_95(4) == pytest.approx(2.776, abs=1e-3)
        assert t_critical_95(9) == pytest.approx(2.262, abs=1e-3)

    def test_converges_to_normal_for_large_dof(self):
        assert t_critical_95(10_000) == pytest.approx(1.96, abs=1e-2)

    def test_ci95_uses_t_not_normal(self):
        from repro.experiments.base import ci95, stdev

        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        expected = t_critical_95(4) * stdev(values) / (5 ** 0.5)
        assert ci95(values) == pytest.approx(expected)
        assert ci95(values) > 1.96 * stdev(values) / (5 ** 0.5)

    def test_ci95_degenerate_inputs(self):
        from repro.experiments.base import ci95

        assert ci95([]) == 0.0
        assert ci95([3.0]) == 0.0


class TestArrivals:
    def test_fixed_arrivals_evenly_spaced(self):
        assert fixed_arrivals(1.0, 3.0) == [1.0, 2.0]
        assert fixed_arrivals(2.0, 2.0) == [0.5, 1.0, 1.5]

    def test_poisson_arrivals_deterministic_per_stream(self):
        first = poisson_arrivals(derive_rng(7, "arr"), 2.0, 100.0)
        second = poisson_arrivals(derive_rng(7, "arr"), 2.0, 100.0)
        assert first == second
        assert first != poisson_arrivals(derive_rng(8, "arr"), 2.0, 100.0)

    def test_poisson_arrivals_within_duration_and_ordered(self):
        times = poisson_arrivals(derive_rng(0, "arr"), 5.0, 50.0)
        assert all(0.0 < t < 50.0 for t in times)
        assert times == sorted(times)
        # mean count is rate * duration = 250; loose 4-sigma band
        assert 180 < len(times) < 320

    def test_generate_dispatch_and_unknown_kind(self):
        assert generate_arrivals("fixed", None, 1.0, 3.0) == [1.0, 2.0]
        assert generate_arrivals("poisson", derive_rng(0, "a"), 1.0, 10.0)
        with pytest.raises(ExperimentError, match="unknown arrival"):
            generate_arrivals("burst", None, 1.0, 3.0)

    def test_invalid_rate_and_duration_rejected(self):
        with pytest.raises(ExperimentError, match="rate"):
            fixed_arrivals(0.0, 10.0)
        with pytest.raises(ExperimentError, match="duration"):
            poisson_arrivals(derive_rng(0, "a"), 1.0, -1.0)


class TestWindows:
    def test_num_windows_and_window_of(self):
        assert num_windows(240.0, 60.0) == 4
        assert num_windows(250.0, 60.0) == 5  # trailing partial window
        assert window_of(0.0, 240.0, 60.0) == 0
        assert window_of(59.999, 240.0, 60.0) == 0
        assert window_of(60.0, 240.0, 60.0) == 1
        # arrivals at/after the nominal end clamp into the last window
        assert window_of(239.999, 240.0, 60.0) == 3
        with pytest.raises(ExperimentError, match="window"):
            num_windows(240.0, 0.0)

    def test_peak_in_flight_counts_overlap(self):
        # two requests overlap in window 0; one spans into window 1
        intervals = [(0.0, 5.0), (1.0, 12.0), (11.0, 13.0)]
        assert peak_in_flight(intervals, 20.0, 10.0) == [2, 2]

    def test_peak_in_flight_carries_depth_across_silent_windows(self):
        # one long request spans window 1 without any endpoint inside it
        intervals = [(5.0, 25.0)]
        assert peak_in_flight(intervals, 30.0, 10.0) == [1, 1, 1]

    def test_peak_in_flight_end_frees_before_simultaneous_start(self):
        intervals = [(0.0, 5.0), (5.0, 9.0)]
        assert peak_in_flight(intervals, 10.0, 10.0) == [1]

    def test_peak_in_flight_rejects_inverted_interval(self):
        with pytest.raises(ExperimentError, match="ends before"):
            peak_in_flight([(5.0, 1.0)], 10.0, 10.0)

    def _records(self):
        return [
            QueryRecord(arrival=1.0, kind="lookup", completion=2.0, latency=1.0, success=True),
            QueryRecord(arrival=1.5, kind="lookup", completion=5.0, latency=3.5, success=True),
            QueryRecord(arrival=3.0, kind="insert", completion=3.0, success=True),
            QueryRecord(arrival=11.0, kind="lookup", completion=13.0, success=False),
        ]

    def test_summarize_windows_totals_and_alignment(self):
        windows = summarize_windows(self._records(), 30.0, 10.0, SLOPolicy())
        assert [w.index for w in windows] == [0, 1, 2]  # idle window 2 still present
        first, second, third = windows
        assert (first.arrivals, first.lookups, first.successes) == (3, 2, 2)
        assert first.p50 == pytest.approx(2.25)
        assert first.success_rate == 1.0
        assert first.throughput == pytest.approx(2 / 10.0)
        assert first.peak_in_flight == 2
        # the failed lookup: no latency sample, success rate 0, zeroed tail
        assert (second.lookups, second.successes) == (1, 0)
        assert second.success_rate == 0.0
        assert second.p99 == 0.0
        assert not second.slo_ok  # violates through the availability floor
        # idle window: vacuously within SLO
        assert third.arrivals == 0 and third.success_rate == 1.0 and third.slo_ok

    def test_slo_policy_latency_bound(self):
        slo = SLOPolicy(latency_p99=0.5, availability=0.5)
        assert slo.ok(success_rate=1.0, latency_p99=0.4, lookups=10)
        assert not slo.ok(success_rate=1.0, latency_p99=0.6, lookups=10)
        assert not slo.ok(success_rate=0.4, latency_p99=0.1, lookups=10)
        assert slo.ok(success_rate=0.0, latency_p99=0.0, lookups=0)

    def test_slo_policy_validation(self):
        with pytest.raises(ExperimentError, match="latency"):
            SLOPolicy(latency_p99=0.0)
        with pytest.raises(ExperimentError, match="availability"):
            SLOPolicy(availability=1.5)


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.arrival == "poisson"

    @pytest.mark.parametrize(
        "kwargs, match",
        [
            ({"duration": 0.0}, "duration"),
            ({"rate": -1.0}, "rate"),
            ({"window": 0.0}, "window"),
            ({"window": 700.0, "duration": 600.0}, "window"),
            ({"arrival": "burst"}, "arrival"),
            ({"insert_fraction": 1.0}, "insert_fraction"),
        ],
    )
    def test_validation(self, kwargs, match):
        with pytest.raises(ExperimentError, match=match):
            ServiceConfig(**kwargs)


@pytest.fixture(scope="module")
def testbed():
    return build_testbed(60, 20, seed=0)


def _config(**kwargs):
    defaults = dict(
        duration=120.0, rate=1.0, window=30.0, arrival="poisson", insert_fraction=0.2
    )
    defaults.update(kwargs)
    return ServiceConfig(**defaults)


class TestRunService:
    def test_unknown_variant_rejected(self, testbed):
        with pytest.raises(ExperimentError, match="variant"):
            run_service(testbed, "chord", AlwaysOnline(), _config())

    @pytest.mark.parametrize("variant", ["pastry", "pastry-rr", "mpil-ds", "mpil-nods"])
    def test_same_seed_runs_are_identical(self, testbed, variant):
        first = run_service(testbed, variant, AlwaysOnline(), _config(), seed=3)
        second = run_service(testbed, variant, AlwaysOnline(), _config(), seed=3)
        assert first.records == second.records
        assert first.windows == second.windows

    def test_arrival_plan_is_variant_independent(self, testbed):
        reports = {
            variant: run_service(testbed, variant, AlwaysOnline(), _config(), seed=5)
            for variant in ("pastry", "mpil-ds")
        }
        for a, b in zip(reports["pastry"].records, reports["mpil-ds"].records):
            assert a.arrival == b.arrival
            assert a.kind == b.kind

    def test_open_loop_queries_overlap_in_flight(self, testbed):
        # drive hard enough that requests must overlap: open-loop arrivals
        # do not wait for completions
        config = _config(rate=20.0, duration=60.0, window=30.0, insert_fraction=0.0)
        report = run_service(testbed, "mpil-ds", AlwaysOnline(), config, seed=1)
        assert report.peak_in_flight > 1

    def test_all_records_resolved_and_windowed(self, testbed):
        report = run_service(testbed, "mpil-ds", AlwaysOnline(), _config(), seed=2)
        assert report.records
        for record in report.records:
            assert record.completion is not None  # engine drained to quiescence
        assert len(report.windows) == 4
        assert sum(w.arrivals for w in report.windows) == len(report.records)

    def test_successful_lookups_under_no_perturbation(self, testbed):
        report = run_service(testbed, "mpil-ds", AlwaysOnline(), _config(), seed=2)
        assert report.total_lookups > 0
        assert report.total_successes >= report.total_lookups  # inserts succeed too
        lookups = [r for r in report.records if r.kind == "lookup"]
        assert all(r.latency is not None and r.latency > 0 for r in lookups if r.success)

    @pytest.mark.parametrize("variant", ["pastry", "mpil-ds"])
    def test_service_inserts_are_rolled_back(self, testbed, variant):
        directory = (
            testbed.pastry.directory if variant == "pastry" else testbed.mpil.directory
        )
        before = len(directory)
        config = _config(insert_fraction=0.5)
        report = run_service(testbed, variant, AlwaysOnline(), config, seed=9)
        assert any(record.kind == "insert" for record in report.records)
        assert len(directory) == before

    def test_perturbation_degrades_success(self, testbed):
        flapping = FlappingSchedule(
            FlappingConfig(30, 30, 1.0), testbed.pastry.n, seed=1, always_online={0}
        )
        calm = run_service(testbed, "mpil-ds", AlwaysOnline(), _config(), seed=4)
        stormy = run_service(testbed, "mpil-ds", flapping, _config(), seed=4)
        assert stormy.total_successes < calm.total_successes
        assert stormy.violation_windows >= calm.violation_windows


class TestServiceRows:
    # service_rows wraps the schedule in rejoin/view models for Pastry,
    # which need a node-count-bearing perturbation process
    def _schedule(self, testbed):
        return FlappingSchedule(
            FlappingConfig(30, 30, 0.2), testbed.pastry.n, seed=7, always_online={0}
        )

    def test_row_shape_matches_columns(self, testbed):
        rows = service_rows(
            testbed,
            self._schedule(testbed),
            _config(),
            seed=0,
            rejoin_seed=0,
            variants=("pastry", "mpil-ds"),
        )
        assert rows
        assert all(len(row) == len(SERVICE_COLUMNS) for row in rows)
        # 2 variants x 4 windows
        assert len(rows) == 8

    def test_rows_deterministic(self, testbed):
        kwargs = dict(seed=1, rejoin_seed=2, variants=("pastry", "mpil-nods"))
        first = service_rows(testbed, self._schedule(testbed), _config(), **kwargs)
        second = service_rows(testbed, self._schedule(testbed), _config(), **kwargs)
        assert first == second
