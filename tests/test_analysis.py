"""Tests for the Section-5 analysis, including Monte-Carlo cross-checks."""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.analysis import (
    expected_hops_to_local_maximum,
    expected_local_maxima,
    expected_local_maxima_regular,
    expected_replicas_complete,
    prob_at_most_k_common,
    prob_k_common,
    prob_less_than_k_common,
    prob_local_maximum,
    prob_no_common_digits,
)
from repro.analysis.local_maxima import degree_distribution_of
from repro.core.identifiers import IdSpace
from repro.errors import ConfigurationError
from repro.overlay.random_graphs import random_regular_graph

PAPER = IdSpace(bits=160, digit_bits=4)
BASE4 = IdSpace(bits=160, digit_bits=2)
SMALL = IdSpace(bits=12, digit_bits=2)  # M=6 digits, base 4


class TestDistributions:
    def test_pmf_sums_to_one(self):
        ks = np.arange(0, SMALL.num_digits + 1)
        assert float(np.sum(prob_k_common(SMALL, ks))) == pytest.approx(1.0)

    def test_cdf_relations(self):
        for k in range(SMALL.num_digits + 1):
            below = prob_less_than_k_common(SMALL, k)
            at_most = prob_at_most_k_common(SMALL, k)
            assert at_most == pytest.approx(below + prob_k_common(SMALL, k))

    def test_paper_no_common_digit_probability(self):
        """Section 4.2: (3/4)^80 ≈ 1.0113e-10 for 160-bit base-4 IDs."""
        assert prob_no_common_digits(BASE4) == pytest.approx(1.0113e-10, rel=1e-3)

    def test_no_common_prefix_binary_statement(self):
        """Section 4.2: P(no common first digit) = 0.75 base-4, 0.5 binary."""
        assert prob_no_common_digits(IdSpace(bits=2, digit_bits=2)) == 0.75
        assert prob_no_common_digits(IdSpace(bits=1, digit_bits=1)) == 0.5


class TestLocalMaximaFormulas:
    def test_degree_zero_always_local_max(self):
        assert prob_local_maximum(PAPER, 0) == 1.0

    def test_decreasing_in_degree(self):
        values = [prob_local_maximum(PAPER, d) for d in (1, 10, 50, 100)]
        assert values == sorted(values, reverse=True)

    def test_figure7_magnitudes(self):
        """Figure 7 endpoints: ~N/(d+1) scaling, ~90 maxima for N=16000,
        d=100 and a few hundred for d=10."""
        assert expected_local_maxima_regular(PAPER, 16000, 100) == pytest.approx(
            90, rel=0.15
        )
        assert 200 < expected_local_maxima_regular(PAPER, 4000, 10) < 420

    def test_hops_is_inverse_probability(self):
        c = prob_local_maximum(PAPER, 40)
        assert expected_hops_to_local_maximum(PAPER, 40) == pytest.approx(1.0 / c)

    def test_mixture_matches_regular_for_point_distribution(self):
        mixture = expected_local_maxima(PAPER, 5000, {30: 1.0})
        assert mixture == pytest.approx(expected_local_maxima_regular(PAPER, 5000, 30))

    def test_degree_distribution_must_normalise(self):
        with pytest.raises(ConfigurationError):
            expected_local_maxima(PAPER, 100, {3: 0.4, 4: 0.4})

    def test_negative_degree_rejected(self):
        with pytest.raises(ConfigurationError):
            prob_local_maximum(PAPER, -1)
        with pytest.raises(ConfigurationError):
            expected_local_maxima_regular(PAPER, 0, 5)


class TestFigure8:
    def test_base4_matches_paper_range(self):
        """The paper plots 1.55-1.63 for N = 2000..16000 (base-4 digits)."""
        values = [expected_replicas_complete(BASE4, n) for n in (2000, 8000, 16000)]
        assert 1.50 < values[0] < 1.56
        assert 1.57 < values[1] < 1.62
        assert 1.60 < values[2] < 1.65
        assert values == sorted(values)

    def test_single_node(self):
        assert expected_replicas_complete(PAPER, 1) == 1.0

    def test_at_least_one_expected_maximum(self):
        for n in (10, 100, 5000):
            assert expected_replicas_complete(PAPER, n) >= 1.0


class TestMonteCarloAgreement:
    def test_regular_topology_local_maxima(self):
        """Empirical strict-local-maxima counts on random regular graphs
        match N*C within sampling error."""
        n, d = 400, 8
        overlay = random_regular_graph(n, d, seed=13)
        rng = random.Random(13)
        trials = 40
        counts = []
        for _ in range(trials):
            message = SMALL.random_identifier(rng)
            scores = [
                SMALL.random_identifier(rng).common_digits(message) for _ in range(n)
            ]
            count = sum(
                1
                for node in range(n)
                if all(scores[node] > scores[v] for v in overlay.neighbors(node))
            )
            counts.append(count)
        empirical = sum(counts) / trials
        predicted = expected_local_maxima_regular(SMALL, n, d)
        assert empirical == pytest.approx(predicted, rel=0.2)

    def test_complete_topology_replicas(self):
        """Empirical count of nodes that are >= every other node matches
        N * sum A * D^(N-1)."""
        n = 60
        rng = random.Random(14)
        trials = 300
        total = 0
        for _ in range(trials):
            message = SMALL.random_identifier(rng)
            scores = [
                SMALL.random_identifier(rng).common_digits(message) for _ in range(n)
            ]
            top = max(scores)
            total += sum(1 for s in scores if s == top)
        empirical = total / trials
        predicted = expected_replicas_complete(SMALL, n)
        assert empirical == pytest.approx(predicted, rel=0.15)

    def test_degree_distribution_of_overlay(self):
        overlay = random_regular_graph(50, 4, seed=15)
        dist = degree_distribution_of(overlay)
        assert dist == {4: 1.0}
