"""Tests for the flooding / random-walk baselines and the 1/C hops
validation."""

from __future__ import annotations

import random

import pytest

from repro.analysis import expected_hops_to_local_maximum
from repro.baselines import (
    flood_lookup,
    random_walk_lookup,
    walk_hops_to_local_maximum,
)
from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.metric import NeighborMetricTable
from repro.core.network import MPILNetwork
from repro.errors import RoutingError
from repro.overlay.random_graphs import (
    fixed_degree_random_graph,
    random_regular_graph,
    ring_lattice_graph,
)
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


def _inserted_network(seed=0, n=80, degree=8):
    overlay = fixed_degree_random_graph(n, degree=degree, seed=seed)
    net = MPILNetwork(
        overlay, space=SPACE, config=MPILConfig(max_flows=10, per_flow_replicas=5),
        seed=seed,
    )
    rng = derive_rng(seed, "baseline-objects")
    obj = net.random_object_id(rng)
    net.insert(rng.randrange(n), obj)
    return net, obj


class TestFlooding:
    def test_full_ttl_flood_finds_object(self):
        net, obj = _inserted_network(seed=1)
        result = flood_lookup(net.overlay, net.directory, 0, obj, ttl=6)
        assert result.success
        assert result.first_reply_hop is not None
        assert result.nodes_contacted > 1

    def test_zero_ttl_only_checks_origin(self):
        net, obj = _inserted_network(seed=2)
        holder = next(iter(net.directory.holders(obj)))
        assert flood_lookup(net.overlay, net.directory, holder, obj, ttl=0).success
        non_holder = next(
            v for v in range(net.overlay.n) if v not in net.directory.holders(obj)
        )
        result = flood_lookup(net.overlay, net.directory, non_holder, obj, ttl=0)
        assert not result.success
        assert result.traffic == 0

    def test_ttl_bounds_reach(self):
        net, obj = _inserted_network(seed=3)
        small = flood_lookup(net.overlay, net.directory, 0, obj, ttl=1)
        large = flood_lookup(net.overlay, net.directory, 0, obj, ttl=4)
        assert small.nodes_contacted <= large.nodes_contacted
        assert small.traffic <= large.traffic
        assert small.nodes_contacted <= 1 + net.overlay.degree(0)

    def test_flood_traffic_exceeds_mpil(self):
        net, obj = _inserted_network(seed=4)
        origin = next(
            v for v in range(net.overlay.n) if v not in net.directory.holders(obj)
        )
        flood = flood_lookup(net.overlay, net.directory, origin, obj, ttl=4)
        mpil = net.lookup(origin, obj)
        if flood.success and mpil.success:
            assert flood.traffic > mpil.traffic

    def test_holders_stop_forwarding(self):
        # On a ring, a holder between origin and the far side blocks the wave.
        overlay = ring_lattice_graph(10, k=1)
        net = MPILNetwork(overlay, space=SPACE, seed=5)
        obj = SPACE.identifier(123)
        net.directory.store(2, obj, owner=2)
        result = flood_lookup(overlay, net.directory, 0, obj, ttl=9)
        assert result.success
        assert (2, 2) in result.replies

    def test_validation(self):
        net, obj = _inserted_network(seed=6)
        with pytest.raises(RoutingError):
            flood_lookup(net.overlay, net.directory, -1, obj)
        with pytest.raises(RoutingError):
            flood_lookup(net.overlay, net.directory, 0, obj, ttl=-1)


class TestRandomWalks:
    def test_walks_eventually_find_replicas(self):
        net, obj = _inserted_network(seed=7)
        result = random_walk_lookup(
            net.overlay,
            net.directory,
            0,
            obj,
            walkers=16,
            max_steps=200,
            rng=random.Random(7),
        )
        assert result.success

    def test_walker_at_holder_replies_at_hop_zero(self):
        net, obj = _inserted_network(seed=8)
        holder = next(iter(net.directory.holders(obj)))
        result = random_walk_lookup(
            net.overlay, net.directory, holder, obj, rng=random.Random(8)
        )
        assert result.success
        assert result.first_reply_hop == 0
        assert result.traffic == 0

    def test_traffic_bounded_by_budget(self):
        net, obj = _inserted_network(seed=9)
        result = random_walk_lookup(
            net.overlay,
            net.directory,
            0,
            obj,
            walkers=3,
            max_steps=10,
            rng=random.Random(9),
        )
        assert result.traffic <= 3 * 10

    def test_validation(self):
        net, obj = _inserted_network(seed=10)
        with pytest.raises(RoutingError):
            random_walk_lookup(net.overlay, net.directory, 999, obj)
        with pytest.raises(RoutingError):
            random_walk_lookup(net.overlay, net.directory, 0, obj, walkers=0)
        with pytest.raises(RoutingError):
            random_walk_lookup(net.overlay, net.directory, 0, obj, max_steps=-1)


class TestHopsValidation:
    def test_expected_hops_matches_one_over_c(self):
        """Section 5.1: E[random-walk hops to a strict local maximum] = 1/C.

        Uses i.i.d. IDs (fresh per trial, matching the formula's model) on
        a random regular graph.
        """
        small = IdSpace(bits=12, digit_bits=2)
        n, d = 300, 6
        overlay = random_regular_graph(n, d, seed=20)
        rng = random.Random(20)
        hops = []
        for _ in range(150):
            ids = [small.random_identifier(rng) for _ in range(n)]
            table = NeighborMetricTable(overlay, ids)
            message = small.random_identifier(rng)
            result = walk_hops_to_local_maximum(
                overlay, table, rng.randrange(n), message, rng, strict=True
            )
            assert result is not None
            hops.append(result)
        empirical = sum(hops) / len(hops)
        predicted = expected_hops_to_local_maximum(small, d)
        assert empirical == pytest.approx(predicted, rel=0.25)

    def test_nonstrict_walk_stops_sooner(self):
        small = IdSpace(bits=12, digit_bits=2)
        overlay = random_regular_graph(200, 6, seed=21)
        rng = random.Random(21)
        ids = [small.random_identifier(rng) for _ in range(200)]
        table = NeighborMetricTable(overlay, ids)
        message = small.random_identifier(rng)
        loose = [
            walk_hops_to_local_maximum(
                overlay, table, i, message, random.Random(i), strict=False
            )
            for i in range(40)
        ]
        tight = [
            walk_hops_to_local_maximum(
                overlay, table, i, message, random.Random(i), strict=True
            )
            for i in range(40)
        ]
        assert sum(loose) <= sum(tight)
