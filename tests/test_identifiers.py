"""Unit and property tests for identifier spaces and identifiers."""

from __future__ import annotations

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.identifiers import Identifier, IdSpace
from repro.errors import IdSpaceError

SMALL = IdSpace(bits=16, digit_bits=4)
BINARY = IdSpace(bits=4, digit_bits=1)


class TestIdSpace:
    def test_paper_default_dimensions(self):
        space = IdSpace()
        assert space.bits == 160
        assert space.digit_bits == 4
        assert space.num_digits == 40
        assert space.base == 16

    def test_base4_dimensions(self):
        space = IdSpace(bits=160, digit_bits=2)
        assert space.num_digits == 80
        assert space.base == 4

    @pytest.mark.parametrize(
        "bits,digit_bits",
        [(0, 1), (-8, 4), (10, 3), (8, 0), (8, 9)],
    )
    def test_invalid_dimensions_rejected(self, bits, digit_bits):
        with pytest.raises(IdSpaceError):
            IdSpace(bits=bits, digit_bits=digit_bits)

    def test_from_digits_round_trip(self):
        identifier = BINARY.from_digits([1, 0, 1, 1])
        assert identifier.value == 0b1011
        assert list(identifier.digits) == [1, 0, 1, 1]

    def test_from_digits_validates_length_and_range(self):
        with pytest.raises(IdSpaceError):
            BINARY.from_digits([1, 0, 1])
        with pytest.raises(IdSpaceError):
            BINARY.from_digits([1, 0, 1, 2])

    def test_from_hex(self):
        identifier = SMALL.from_hex("beef")
        assert identifier.value == 0xBEEF
        assert identifier.to_hex() == "beef"

    def test_value_range_enforced(self):
        with pytest.raises(IdSpaceError):
            SMALL.identifier(1 << 16)
        with pytest.raises(IdSpaceError):
            SMALL.identifier(-1)

    def test_random_unique_identifiers_are_unique(self):
        rng = random.Random(7)
        ids = BINARY.random_unique_identifiers(16, rng)
        assert len({i.value for i in ids}) == 16

    def test_random_unique_identifiers_overflow(self):
        with pytest.raises(IdSpaceError):
            BINARY.random_unique_identifiers(17, random.Random(0))

    def test_digit_of(self):
        assert SMALL.digit_of(0xBEEF, 0) == 0xB
        assert SMALL.digit_of(0xBEEF, 3) == 0xF
        with pytest.raises(IdSpaceError):
            SMALL.digit_of(0xBEEF, 4)


class TestIdentifier:
    def test_paper_figure3_examples(self):
        """Figure 3: metric(1001, 1011) = 3 and metric(1001, 0010) = 1."""
        a = BINARY.from_digits([1, 0, 0, 1])
        assert a.common_digits(BINARY.from_digits([1, 0, 1, 1])) == 3
        assert a.common_digits(BINARY.from_digits([0, 0, 1, 0])) == 1

    def test_prefix_and_suffix_match(self):
        a = SMALL.from_hex("ab12")
        assert a.prefix_match_len(SMALL.from_hex("ab99")) == 2
        assert a.prefix_match_len(SMALL.from_hex("ab12")) == 4
        assert a.suffix_match_len(SMALL.from_hex("9912")) == 2
        assert a.suffix_match_len(SMALL.from_hex("ffff")) == 0

    def test_circular_distance_wraps(self):
        lo = SMALL.identifier(1)
        hi = SMALL.identifier(SMALL.max_value)
        assert lo.circular_distance(hi) == 2
        assert lo.distance(hi) == SMALL.max_value - 1

    def test_cross_space_operations_rejected(self):
        a = SMALL.identifier(1)
        b = BINARY.identifier(1)
        with pytest.raises(IdSpaceError):
            a.common_digits(b)
        with pytest.raises(IdSpaceError):
            a < b

    def test_ordering_and_hash(self):
        a, b = SMALL.identifier(5), SMALL.identifier(9)
        assert a < b
        assert a <= a
        assert a == SMALL.identifier(5)
        assert hash(a) == hash(SMALL.identifier(5))
        assert a != 5

    def test_repr_small_space_shows_digits(self):
        assert "1011" in repr(BINARY.from_digits([1, 0, 1, 1]))


@given(st.integers(0, SMALL.max_value), st.integers(0, SMALL.max_value))
def test_common_digits_matches_xor_formulation(x, y):
    """Section 4.1: the metric equals the number of zero digits in the XOR."""
    a, b = SMALL.identifier(x), SMALL.identifier(y)
    assert a.common_digits(b) == a.common_digits_via_xor(b)


@given(st.integers(0, SMALL.max_value), st.integers(0, SMALL.max_value))
def test_common_digits_symmetric_and_bounded(x, y):
    a, b = SMALL.identifier(x), SMALL.identifier(y)
    value = a.common_digits(b)
    assert value == b.common_digits(a)
    assert 0 <= value <= SMALL.num_digits
    assert a.common_digits(a) == SMALL.num_digits


@given(st.integers(0, SMALL.max_value), st.integers(0, SMALL.max_value))
def test_prefix_match_consistent_with_digits(x, y):
    a, b = SMALL.identifier(x), SMALL.identifier(y)
    k = a.prefix_match_len(b)
    assert a.digits[:k] == b.digits[:k]
    if k < SMALL.num_digits:
        assert a.digits[k] != b.digits[k]


@given(st.integers(0, SMALL.max_value))
def test_digits_round_trip(x):
    a = SMALL.identifier(x)
    assert SMALL.from_digits(list(a.digits)).value == x
