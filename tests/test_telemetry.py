"""Tests for repro.telemetry: spans, the metrics registry, sinks, and the
determinism contract (tracing on/off byte-identity, jobs-independent
telemetry blobs, lint-clean modules)."""

from __future__ import annotations

import hashlib
import io
import json
import pathlib
import sqlite3

import pytest

from repro import api
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.cli import main
from repro.experiments.ledger import TaskLedger
from repro.experiments.registry import run_experiment
from repro.experiments.runner import SweepSpec, run_sweep
from repro.experiments.store import ResultStore
from repro.lint import LintConfig, lint_paths, load_config
from repro.sim.engine import (
    add_events_processed,
    events_processed_total,
    reset_events_processed,
)
from repro.sim.trace import TraceRecorder
from repro.telemetry import (
    MetricsRegistry,
    SpanRecorder,
    Telemetry,
    current,
    runtime_registry,
    use,
)
from repro.telemetry.progress import ProgressMeter, format_rate, service_window_line
from repro.telemetry.sinks import read_jsonl, render_hop_tree, write_jsonl
from repro.telemetry.spans import Span

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def result_digest(result) -> str:
    """The artifact-byte digest the determinism gates compare."""
    return hashlib.sha256(
        json.dumps(result.to_dict(), sort_keys=True).encode()
    ).hexdigest()


def spans_digest(recorder: SpanRecorder) -> str:
    buffer = io.StringIO()
    write_jsonl(recorder, buffer)
    return hashlib.sha256(buffer.getvalue().encode()).hexdigest()


class TestMetricsRegistry:
    def test_counter_gauge_histogram(self):
        registry = MetricsRegistry()
        registry.counter("requests").inc()
        registry.counter("requests").inc(2)
        registry.gauge("depth").set(7)
        registry.histogram("hops").observe(3)
        registry.histogram("hops").observe(40)
        snapshot = registry.snapshot()
        assert snapshot["requests"] == 3
        assert snapshot["depth"] == 7
        assert snapshot["hops"]["count"] == 2
        assert snapshot["hops"]["sum"] == 43
        assert sum(snapshot["hops"]["buckets"]) == 2

    def test_label_order_does_not_split_series(self):
        registry = MetricsRegistry()
        registry.inc("messages", kind="lookup", scale="smoke")
        registry.inc("messages", scale="smoke", kind="lookup")
        assert len(registry) == 1
        snapshot = registry.snapshot()
        assert snapshot["messages{kind=lookup,scale=smoke}"] == 2

    def test_snapshot_keys_sorted(self):
        registry = MetricsRegistry()
        registry.inc("zeta")
        registry.inc("alpha")
        registry.gauge("mid").set(1)
        assert list(registry.snapshot()) == sorted(registry.snapshot())

    def test_reset_zeroes_in_place_keeping_handles_valid(self):
        registry = MetricsRegistry()
        counter = registry.counter("events")
        counter.inc(5)
        registry.reset()
        assert counter.value == 0
        counter.inc()  # the cached handle must still feed the registry
        assert registry.snapshot()["events"] == 1

    def test_series_filtering(self):
        registry = MetricsRegistry()
        registry.counter("a").inc()
        registry.gauge("b", variant="x").set(2)
        gauges = registry.series(kind="gauge")
        assert [g.name for g in gauges] == ["b"]
        assert dict(gauges[0].labels) == {"variant": "x"}
        assert [s.name for s in registry.series(name="a")] == ["a"]

    def test_histogram_bounds_must_ascend(self):
        registry = MetricsRegistry()
        with pytest.raises(ConfigurationError):
            registry.histogram("bad", bounds=(5.0, 1.0))

    def test_inc_convenience_matches_counter(self):
        registry = MetricsRegistry()
        registry.inc("n", 4, kind="x")
        assert registry.counter("n", kind="x").value == 4


class TestEngineCounterShims:
    def test_events_counter_backed_by_runtime_registry(self):
        before = events_processed_total()
        add_events_processed(11)
        assert events_processed_total() == before + 11
        assert (
            runtime_registry().counter("sim_events_processed_total").value
            == events_processed_total()
        )

    def test_reset_returns_previous_total(self):
        add_events_processed(3)
        previous = events_processed_total()
        assert reset_events_processed() == previous
        assert events_processed_total() == 0


class TestTraceRecorderDrops:
    def test_overflow_counted_not_silent(self):
        recorder = TraceRecorder(max_records=2)
        for i in range(5):
            recorder.emit(float(i), "send", node=i)
        assert len(recorder) == 2
        assert recorder.dropped == 3
        assert str(recorder) == "TraceRecorder(2 records, 3 dropped)"

    def test_clear_resets_drop_count(self):
        recorder = TraceRecorder(max_records=1)
        recorder.emit(0.0, "send", node=0)
        recorder.emit(1.0, "send", node=1)
        recorder.clear()
        assert recorder.dropped == 0
        assert str(recorder) == "TraceRecorder(0 records)"

    def test_unbounded_never_drops(self):
        recorder = TraceRecorder()
        for i in range(10):
            recorder.emit(float(i), "send", node=i)
        assert recorder.dropped == 0
        assert str(recorder) == "TraceRecorder(10 records)"


class TestSpanRecorder:
    def test_ids_allocated_even_when_dropped(self):
        recorder = SpanRecorder(max_spans=2)
        trace = recorder.begin_trace("lookup")
        ids = [recorder.emit(trace, "send", node=i) for i in range(4)]
        assert ids == [0, 1, 2, 3]  # cap-independent ids
        assert len(recorder) == 2
        assert recorder.dropped == 2
        assert "2 dropped" in str(recorder)

    def test_trace_ids_monotonic_and_first_seen(self):
        recorder = SpanRecorder()
        first = recorder.begin_trace("insert")
        second = recorder.begin_trace("lookup")
        recorder.emit(second, "send")
        recorder.emit(first, "send")
        assert first == "000000:insert" and second == "000001:lookup"
        assert recorder.trace_ids() == [second, first]

    def test_filters(self):
        recorder = SpanRecorder()
        trace = recorder.begin_trace("lookup")
        recorder.emit(trace, "send", node=1)
        recorder.emit(trace, "reply", node=2)
        assert [s.name for s in recorder.spans(node=2)] == ["reply"]
        assert [s.node for s in recorder.spans(name="send")] == [1]

    def test_attrs_sorted_for_identity(self):
        recorder = SpanRecorder()
        trace = recorder.begin_trace("lookup")
        recorder.emit(trace, "send", b=2, a=1)
        (span,) = recorder.spans()
        assert span.attrs == (("a", 1), ("b", 2))


class TestSinks:
    def _sample(self) -> list[Span]:
        recorder = SpanRecorder()
        trace = recorder.begin_trace("lookup")
        root = recorder.emit(trace, "lookup", node=0, start=0.0)
        send = recorder.emit(trace, "send", node=0, start=0.0, end=1.0,
                             parent_id=root, to=5)
        recorder.emit(trace, "reply", node=5, start=1.0, parent_id=send, hop=1)
        return recorder.spans()

    def test_jsonl_round_trip(self, tmp_path):
        spans = self._sample()
        path = tmp_path / "spans.jsonl"
        assert write_jsonl(spans, path) == 3
        assert read_jsonl(path) == sorted(spans, key=lambda s: s.span_id)

    def test_jsonl_bytes_deterministic(self):
        spans = self._sample()
        first, second = io.StringIO(), io.StringIO()
        write_jsonl(reversed(spans), first)  # input order must not matter
        write_jsonl(spans, second)
        assert first.getvalue() == second.getvalue()

    def test_read_reports_bad_line_number(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"trace_id": "000000:x", "span_id": 0}\nnot json\n')
        with pytest.raises(ConfigurationError, match="line 1"):
            read_jsonl(path)

    def test_hop_tree_nests_children(self):
        tree = render_hop_tree(self._sample())
        lines = tree.splitlines()
        assert lines[0] == "trace 000000:lookup"
        assert lines[1].startswith("  lookup")
        assert lines[2].startswith("    send")
        assert lines[3].startswith("      reply")

    def test_hop_tree_orphans_render_at_root(self):
        span = Span(trace_id="000000:x", span_id=9, parent_id=4,
                    name="send", node=1, start=0.0, end=1.0)
        tree = render_hop_tree([span])
        assert "send" in tree

    def test_hop_tree_empty(self):
        assert render_hop_tree([]) == "(no spans)"


class TestTelemetryHandle:
    def test_use_nests_and_restores(self):
        outer, inner = Telemetry(), Telemetry()
        default = current()
        with use(outer):
            assert current() is outer
            with use(inner):
                assert current() is inner
            assert current() is outer
        assert current() is default

    def test_snapshot_shape(self):
        handle = Telemetry.with_spans(max_spans=10)
        handle.metrics.inc("n")
        trace = handle.spans.begin_trace("x")
        handle.spans.emit(trace, "send")
        snapshot = handle.snapshot()
        assert snapshot["metrics"] == {"n": 1}
        assert snapshot["spans"] == {"recorded": 1, "dropped": 0}

    def test_default_handle_records_no_spans(self):
        assert Telemetry().spans is None


class TestTracingDeterminism:
    """The PR's hard requirement: byte-identical artifacts off and on."""

    @pytest.mark.parametrize("experiment_id", ["fig9", "ext-outage"])
    def test_tracing_on_off_byte_identical(self, experiment_id):
        plain = run_experiment(experiment_id, "smoke", 1)
        handle = Telemetry.with_spans()
        traced = run_experiment(experiment_id, "smoke", 1, telemetry=handle)
        assert handle.spans is not None and len(handle.spans) > 0
        assert result_digest(plain) == result_digest(traced)

    def test_traced_twice_identical_span_stream(self):
        first = Telemetry.with_spans()
        second = Telemetry.with_spans()
        run_experiment("fig9", "smoke", 1, telemetry=first)
        run_experiment("fig9", "smoke", 1, telemetry=second)
        assert spans_digest(first.spans) == spans_digest(second.spans)

    def test_hop_tree_parent_links_complete(self):
        traced = api.telemetry("svc-outage", scale="smoke", seed=1)
        trace_ids = traced.spans.trace_ids()
        lookup_traces = [t for t in trace_ids if t.endswith(":timed-lookup")]
        assert lookup_traces, f"no timed-lookup traces among {trace_ids[:5]}"
        spans = traced.spans.spans(trace_id=lookup_traces[0])
        by_id = {span.span_id: span for span in spans}
        roots = [span for span in spans if span.parent_id is None]
        assert len(roots) == 1
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id, f"dangling parent on {span}"

    def test_metrics_blob_attached_to_result(self):
        result = run_experiment("fig9", "smoke", 1)
        assert result.metrics is not None
        assert result.metrics["experiment"] == "fig9"
        assert result.metrics["cells"] == len(result.metrics["per_cell"])
        assert "mpil_requests_total{kind=insert}" in result.metrics["final"]
        # never part of the artifact bytes
        assert "metrics" not in result.to_dict()


class TestSweepTelemetry:
    def _sweep(self, tmp_path, name, jobs):
        store = ResultStore(tmp_path / name)
        spec = SweepSpec(("fig9",), seeds=(0, 1), scale="smoke")
        report = run_sweep(spec, store, jobs=jobs)
        assert not report.failures
        return store

    def test_jobs_do_not_change_telemetry_blobs(self, tmp_path):
        serial = self._sweep(tmp_path, "serial", jobs=1)
        pooled = self._sweep(tmp_path, "pooled", jobs=2)
        for seed in (0, 1):
            serial_blob = serial.telemetry_path("fig9", "smoke", seed).read_bytes()
            pooled_blob = pooled.telemetry_path("fig9", "smoke", seed).read_bytes()
            assert serial_blob, "telemetry blob missing"
            assert (
                hashlib.sha256(serial_blob).hexdigest()
                == hashlib.sha256(pooled_blob).hexdigest()
            )

    def test_ledger_indexes_metrics_summary(self, tmp_path):
        store = self._sweep(tmp_path, "indexed", jobs=1)
        records = store.ledger.query_results(experiment_id="fig9")
        assert len(records) == 2
        for record in records:
            assert record.metrics["cells"] >= 1
            assert any(
                key.startswith("mpil_requests_total") for key in record.metrics["final"]
            )


class TestLedgerMigration:
    def test_old_database_gains_metrics_column(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        conn = sqlite3.connect(path)
        with conn:
            conn.executescript(
                """
                CREATE TABLE tasks (
                    experiment_id TEXT NOT NULL, scale TEXT NOT NULL,
                    seed INTEGER NOT NULL, state TEXT NOT NULL DEFAULT 'pending',
                    attempts INTEGER NOT NULL DEFAULT 0, worker TEXT,
                    checksum TEXT, error TEXT, updated_at TEXT,
                    PRIMARY KEY (experiment_id, scale, seed)
                );
                CREATE TABLE results (
                    experiment_id TEXT NOT NULL, scale TEXT NOT NULL,
                    seed INTEGER NOT NULL, path TEXT NOT NULL,
                    checksum TEXT NOT NULL, rows INTEGER NOT NULL,
                    wall_clock REAL NOT NULL, events_processed INTEGER NOT NULL,
                    written_at TEXT NOT NULL,
                    PRIMARY KEY (experiment_id, scale, seed)
                );
                INSERT INTO results VALUES
                    ('fig9', 'smoke', 0, 'fig9/smoke/seed_0.json',
                     'sha256:abc', 3, 1.5, 100, '2026-01-01T00:00:00+00:00');
                """
            )
        conn.close()
        with TaskLedger(path) as ledger:
            (record,) = ledger.query_results(experiment_id="fig9")
            assert record.metrics == {}  # pre-migration rows get the default
        with TaskLedger(path) as ledger:  # migration is idempotent
            assert len(ledger.query_results()) == 1


class TestLintRegression:
    """Telemetry modules honour the determinism contract (satellite 6)."""

    def test_repo_config_keeps_telemetry_clean(self):
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "telemetry")],
            config=load_config(pyproject=REPO_ROOT / "pyproject.toml"),
        )
        assert report.ok, [v.render() for v in report.violations]

    def test_only_progress_needs_the_wall_clock_allowance(self):
        report = lint_paths(
            [str(REPO_ROOT / "src" / "repro" / "telemetry")],
            config=LintConfig(root=REPO_ROOT),
        )
        det003 = [v for v in report.violations if v.rule_id == "DET003"]
        assert det003, "expected DET003 hits without the allowlist"
        assert {v.path for v in det003} == {"src/repro/telemetry/progress.py"}
        assert not [v for v in report.violations if v.rule_id == "DET004"]
        others = [v for v in report.violations if v.rule_id != "DET003"]
        assert not others, [v.render() for v in others]


class TestProgressRendering:
    def test_format_rate(self):
        assert format_rate(532.4) == "532"
        assert format_rate(12_400) == "12.4k"
        assert format_rate(3_100_000) == "3.1M"

    def test_meter_counts_and_label(self):
        meter = ProgressMeter(total_tasks=4)
        meter.task_finished(ok=True, events_processed=100)
        meter.task_finished(ok=False)
        line = meter.line(label="fig9 seed=0")
        assert line.startswith("[2/4] fig9 seed=0 done=1 failed=1")

    def test_service_window_line(self):
        line = service_window_line(
            "pastry", 3, arrivals=64, success_rate=92.5, p99=0.31,
            in_flight=5, slo_ok=False,
        )
        assert "window   3" in line
        assert "arrivals=64" in line
        assert "slo=VIOLATED" in line


class TestCliTelemetry:
    def test_trace_command_prints_parent_linked_tree(self, tmp_path, capsys):
        out = tmp_path / "spans.jsonl"
        code = main([
            "trace", "fig9", "--scale", "smoke", "--seed", "1",
            "--out", str(out),
        ])
        assert code == 0
        captured = capsys.readouterr()
        assert "trace 000000:insert" in captured.out
        spans = read_jsonl(out)
        assert spans
        by_id = {span.span_id for span in spans}
        for span in spans:
            if span.parent_id is not None:
                assert span.parent_id in by_id

    def test_trace_unknown_kind_lists_recorded_kinds(self, capsys):
        code = main([
            "trace", "fig9", "--scale", "smoke", "--seed", "1",
            "--kind", "nope",
        ])
        assert code == 2
        assert "recorded kinds: insert" in capsys.readouterr().err

    def test_run_trace_exports_jsonl(self, tmp_path, capsys):
        out = tmp_path / "run.jsonl"
        code = main([
            "run", "fig9", "--scale", "smoke", "--seed", "1",
            "--trace", str(out),
        ])
        assert code == 0
        assert read_jsonl(out)

    def test_status_shows_metrics_lines(self, tmp_path, capsys):
        store_root = tmp_path / "results"
        spec = SweepSpec(("fig9",), seeds=(0,), scale="smoke")
        report = run_sweep(spec, ResultStore(store_root), jobs=1)
        assert not report.failures
        code = main(["status", "fig9", "--out", str(store_root)])
        assert code == 0
        captured = capsys.readouterr().out
        assert "metrics:" in captured
        assert "mpil_" in captured


class TestApiTelemetry:
    def test_telemetry_matches_untraced_run(self):
        traced = api.telemetry("fig9", scale="smoke", seed=1)
        assert traced.result == api.run("fig9", scale="smoke", seed=1)
        assert len(traced.spans) > 0
        assert traced.metrics  # final registry snapshot rides along

    def test_rejects_unknown_experiment(self):
        with pytest.raises(ExperimentError):
            api.telemetry("nope")
