"""Tests for the replica directory and the Section 4.4 deletion protocol."""

from __future__ import annotations

import pytest

from repro.core.heartbeats import HeartbeatService
from repro.core.identifiers import IdSpace
from repro.core.network import MPILNetwork
from repro.core.replicas import ReplicaDirectory
from repro.errors import SimulationError
from repro.overlay.random_graphs import ring_lattice_graph
from repro.sim.engine import EventScheduler
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


class TestReplicaDirectory:
    def test_store_and_lookup(self):
        directory = ReplicaDirectory()
        obj = SPACE.identifier(42)
        assert directory.store(1, obj, owner=0)
        assert not directory.store(1, obj, owner=0)  # idempotent
        assert directory.has(1, obj)
        assert directory.holders(obj) == {1}
        assert directory.replica_count(obj) == 1
        assert len(directory) == 1

    def test_remove(self):
        directory = ReplicaDirectory()
        obj = SPACE.identifier(7)
        directory.store(1, obj, owner=0)
        directory.store(2, obj, owner=0)
        assert directory.remove(1, obj)
        assert not directory.remove(1, obj)
        assert directory.holders(obj) == {2}

    def test_remove_object(self):
        directory = ReplicaDirectory()
        obj = SPACE.identifier(9)
        for node in (1, 2, 3):
            directory.store(node, obj, owner=0)
        assert directory.remove_object(obj) == 3
        assert directory.holders(obj) == frozenset()
        assert directory.remove_object(obj) == 0

    def test_objects_at_node(self):
        directory = ReplicaDirectory()
        a, b = SPACE.identifier(1), SPACE.identifier(2)
        directory.store(5, a, owner=0)
        directory.store(5, b, owner=0)
        assert directory.objects_at(5) == {1, 2}
        directory.remove(5, a)
        assert directory.objects_at(5) == {2}

    def test_records_carry_metadata(self):
        directory = ReplicaDirectory()
        obj = SPACE.identifier(3)
        directory.store(4, obj, owner=9, hop=2, time=1.5)
        record = directory.record(4, obj)
        assert record.owner == 9
        assert record.stored_hop == 2
        assert record.stored_time == 1.5
        assert len(list(directory.iter_records())) == 1


def _network_with_insert(seed=0):
    overlay = ring_lattice_graph(30, k=2)
    net = MPILNetwork(overlay, space=SPACE, seed=seed)
    rng = derive_rng(seed, "objects")
    obj = net.random_object_id(rng)
    result = net.insert(0, obj)
    return net, obj, result


class TestHeartbeats:
    def test_owner_learns_holders_from_heartbeats(self):
        net, obj, result = _network_with_insert(seed=1)
        engine = EventScheduler()
        service = HeartbeatService(net, engine, period=30.0)
        service.register_insert(result)
        engine.run(until=1.0)  # first beats fire immediately
        assert service.known_holders(obj) == set(result.replicas)

    def test_periodic_beats_generate_traffic(self):
        net, _obj, result = _network_with_insert(seed=2)
        engine = EventScheduler()
        service = HeartbeatService(net, engine, period=10.0)
        service.register_insert(result)
        engine.run(until=35.0)
        # 1 immediate + 3 periodic rounds per replica
        assert service.counters.messages_sent >= 4 * result.replica_count

    def test_delete_removes_known_replicas(self):
        net, obj, result = _network_with_insert(seed=3)
        engine = EventScheduler()
        service = HeartbeatService(net, engine, period=30.0)
        service.register_insert(result)
        engine.run(until=1.0)
        removed = service.delete(obj)
        assert removed == result.replica_count
        assert net.directory.replica_count(obj) == 0
        assert not net.lookup(5, obj).success

    def test_deleted_replicas_stop_beating(self):
        net, obj, result = _network_with_insert(seed=4)
        engine = EventScheduler()
        service = HeartbeatService(net, engine, period=10.0)
        service.register_insert(result)
        engine.run(until=1.0)
        service.delete(obj)
        sent_before = service.counters.messages_sent
        engine.run(until=100.0)
        assert service.counters.messages_sent == sent_before

    def test_stale_holders_age_out(self):
        net, obj, result = _network_with_insert(seed=5)
        engine = EventScheduler()

        class DiesAt50:
            def is_online(self, node, time):  # noqa: ARG002
                return time < 50.0

        service = HeartbeatService(
            net, engine, period=10.0, failure_multiplier=2.0, availability=DiesAt50()
        )
        service.register_insert(result)
        engine.run(until=40.0)
        assert service.known_holders(obj)
        engine.run(until=200.0)
        assert service.known_holders(obj) == frozenset()

    def test_delete_unknown_object(self):
        net, _obj, _result = _network_with_insert(seed=6)
        service = HeartbeatService(net, EventScheduler(), period=10.0)
        assert service.delete(SPACE.identifier(1)) == 0

    def test_invalid_period(self):
        net, _obj, _result = _network_with_insert(seed=7)
        with pytest.raises(SimulationError):
            HeartbeatService(net, EventScheduler(), period=0.0)
