"""Tests for the Monte-Carlo analysis helpers."""

from __future__ import annotations

import random

import pytest

from repro.analysis import expected_local_maxima_regular
from repro.analysis.montecarlo import (
    count_local_maxima_for_ids,
    mean_local_maxima,
    sample_local_maxima_count,
)
from repro.core.identifiers import IdSpace
from repro.core.metric import NeighborMetricTable
from repro.errors import ConfigurationError
from repro.overlay.complete import complete_graph
from repro.overlay.random_graphs import random_regular_graph

SMALL = IdSpace(bits=12, digit_bits=2)


class TestSampling:
    def test_sample_count_in_range(self):
        overlay = random_regular_graph(100, 4, seed=0)
        count = sample_local_maxima_count(overlay, SMALL, random.Random(0))
        assert 0 <= count <= 100

    def test_mean_matches_closed_form(self):
        overlay = random_regular_graph(300, 6, seed=1)
        empirical = mean_local_maxima(overlay, SMALL, trials=60, seed=1)
        predicted = expected_local_maxima_regular(SMALL, 300, 6)
        assert empirical == pytest.approx(predicted, rel=0.2)

    def test_strict_leq_nonstrict(self):
        overlay = random_regular_graph(150, 4, seed=2)
        strict = mean_local_maxima(overlay, SMALL, trials=30, seed=2, strict=True)
        loose = mean_local_maxima(overlay, SMALL, trials=30, seed=2, strict=False)
        assert strict <= loose

    def test_trials_validated(self):
        overlay = random_regular_graph(20, 4, seed=3)
        with pytest.raises(ConfigurationError):
            mean_local_maxima(overlay, SMALL, trials=0)


class TestFixedIdCount:
    def test_complete_graph_counts_top_scorers(self):
        overlay = complete_graph(30)
        rng = random.Random(4)
        ids = [SMALL.random_identifier(rng) for _ in range(30)]
        table = NeighborMetricTable(overlay, ids)
        message = SMALL.random_identifier(rng)
        count = count_local_maxima_for_ids(overlay, table, message, strict=False)
        scores = [ids[v].common_digits(message) for v in range(30)]
        top = max(scores)
        assert count == sum(1 for s in scores if s == top)

    def test_matches_insertion_coverage(self):
        """Every replica an MPIL insert stores must sit at a (non-strict)
        local maximum, so the maxima count upper-bounds replica count."""
        from repro.core.config import MPILConfig
        from repro.core.network import MPILNetwork

        overlay = random_regular_graph(120, 6, seed=5)
        net = MPILNetwork(
            overlay,
            space=SMALL,
            config=MPILConfig(max_flows=30, per_flow_replicas=5),
            seed=5,
        )
        rng = random.Random(5)
        obj = net.random_object_id(rng)
        insert = net.insert(0, obj)
        maxima = count_local_maxima_for_ids(
            overlay, net.metric_table, obj, strict=False
        )
        assert insert.replica_count <= maxima
