"""Tests for declared-failure eviction and rejoin semantics."""

from __future__ import annotations

from repro.pastry.config import PastryConfig
from repro.pastry.rejoin import RejoinAdjustedAvailability
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule


def _adjusted(idle, offline, p, n=10, seed=0, **kwargs):
    schedule = FlappingSchedule(FlappingConfig(idle, offline, p), n, seed=seed)
    return (
        RejoinAdjustedAvailability(schedule, PastryConfig(), seed=seed, **kwargs),
        schedule,
    )


class TestThreshold:
    def test_short_offline_periods_never_evict(self):
        for label in ((1, 1), (30, 30), (45, 15)):
            adjusted, schedule = _adjusted(label[0], label[1], 1.0)
            assert not adjusted._evictions_possible
            for node in range(10):
                for t in (10.0, 100.0, 333.0, 1234.0):
                    assert adjusted.is_online(node, t) == schedule.is_online(node, t)

    def test_long_offline_periods_evict(self):
        adjusted, _ = _adjusted(300, 300, 1.0)
        assert adjusted._evictions_possible

    def test_zero_probability_never_evicts(self):
        adjusted, _ = _adjusted(300, 300, 0.0)
        assert not adjusted._evictions_possible
        assert adjusted.is_online(0, 5000.0)


class TestRejoinDelay:
    def test_offline_node_still_offline(self):
        adjusted, schedule = _adjusted(300, 300, 1.0, seed=1)
        for node in range(10):
            phase = schedule.phase(node)
            assert not adjusted.is_online(node, phase + 450.0)  # mid offline part

    def test_node_unavailable_right_after_recovery(self):
        """Immediately after a long outage the node is genuinely online but
        still rejoining, so the Pastry layer sees it offline."""
        adjusted, schedule = _adjusted(300, 300, 1.0, seed=2)
        node = 3
        phase = schedule.phase(node)
        recovery = phase + 600.0  # end of first cycle's offline episode
        assert schedule.is_online(node, recovery + 1.0)
        completion = adjusted._rejoin_completion(node, 0)
        if completion > recovery + 1.0:
            assert not adjusted.is_online(node, recovery + 1.0)
        assert adjusted.is_online(node, completion + 1.0) == schedule.is_online(
            node, completion + 1.0
        )

    def test_rejoin_eventually_completes_in_healthy_network(self):
        # p small: contacts are almost always online, so rejoin is immediate
        adjusted, schedule = _adjusted(300, 300, 0.15, n=20, seed=3)
        node = 0
        # find this node's first actual offline episode
        episode = None
        for k in range(40):
            if schedule.goes_offline(node, k):
                episode = k
                break
        if episode is None:
            return  # this seed never flapped the node; nothing to check
        completion = adjusted._rejoin_completion(node, episode)
        recovery = schedule.phase(node) + (episode + 1) * 600.0
        assert completion - recovery <= 2 * PastryConfig().leafset_probe_period

    def test_rejoin_completion_cached(self):
        adjusted, _ = _adjusted(300, 300, 1.0, seed=4)
        first = adjusted._rejoin_completion(2, 0)
        assert adjusted._rejoin_completion(2, 0) == first
        assert (2, 0) in adjusted._rejoin_cache

    def test_always_online_nodes_exempt(self):
        schedule = FlappingSchedule(
            FlappingConfig(300, 300, 1.0), 10, seed=5, always_online={0}
        )
        adjusted = RejoinAdjustedAvailability(schedule, PastryConfig(), seed=5)
        for t in (0.0, 450.0, 900.0, 5000.0):
            assert adjusted.is_online(0, t)

    def test_passthrough_properties(self):
        adjusted, schedule = _adjusted(300, 300, 0.5)
        assert adjusted.num_nodes == schedule.num_nodes
        assert adjusted.config is schedule.config

    def test_effective_availability_below_raw_at_high_p(self):
        adjusted, schedule = _adjusted(300, 300, 1.0, n=30, seed=6)
        times = [1000.0 + 37.0 * k for k in range(60)]
        raw = sum(schedule.is_online(n, t) for n in range(30) for t in times)
        adj = sum(adjusted.is_online(n, t) for n in range(30) for t in times)
        assert adj < raw
