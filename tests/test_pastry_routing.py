"""Tests for the Pastry per-hop routing rule and static routing."""

from __future__ import annotations

import random

from repro.core.identifiers import IdSpace
from repro.pastry.routing import DELIVER, pastry_next_hop, static_route
from repro.pastry.state import PastryRing, build_leaf_sets, build_routing_tables

SPACE = IdSpace(bits=16, digit_bits=4)


def _network(n, seed=0, leaf_size=8):
    rng = random.Random(seed)
    ids = SPACE.random_unique_identifiers(n, rng)
    ring = PastryRing(ids)
    leaf_sets = build_leaf_sets(ring, leaf_size)
    tables = build_routing_tables(ring, seed=seed)
    return ring, leaf_sets, tables


def _always_alive(_candidate, _kind):
    return True


class TestStaticRouting:
    def test_every_key_reaches_its_root(self):
        ring, leaf_sets, tables = _network(60, seed=1)
        rng = random.Random(2)
        for _ in range(80):
            key = SPACE.random_identifier(rng)
            origin = rng.randrange(60)
            path = static_route(origin, key, ring, leaf_sets, tables)
            assert path[-1] == ring.root_of(key)

    def test_routing_makes_progress_log_hops(self):
        ring, leaf_sets, tables = _network(100, seed=3)
        rng = random.Random(4)
        lengths = []
        for _ in range(50):
            key = SPACE.random_identifier(rng)
            path = static_route(rng.randrange(100), key, ring, leaf_sets, tables)
            lengths.append(len(path) - 1)
        # 100 nodes, base-16 digits: expect ~log16(100) ≈ 1.7 hops on average
        assert sum(lengths) / len(lengths) < 6

    def test_lookup_from_root_delivers_locally(self):
        ring, leaf_sets, tables = _network(40, seed=5)
        rng = random.Random(6)
        key = SPACE.random_identifier(rng)
        root = ring.root_of(key)
        path = static_route(root, key, ring, leaf_sets, tables)
        assert path == [root]


class TestNextHopRule:
    def test_deliver_at_root(self):
        ring, leaf_sets, tables = _network(40, seed=7)
        key = SPACE.identifier((ring.ids[3].value + 1) % SPACE.size)
        root = ring.root_of(key)
        decision = pastry_next_hop(
            root, key, ring, leaf_sets[root], tables[root], _always_alive
        )
        assert decision.action == DELIVER
        assert decision.node == root

    def test_dead_candidates_are_routed_around(self):
        ring, leaf_sets, tables = _network(40, seed=8)
        rng = random.Random(9)
        key = SPACE.random_identifier(rng)
        origin = rng.randrange(40)
        first = pastry_next_hop(
            origin, key, ring, leaf_sets[origin], tables[origin], _always_alive
        )
        if first.action == DELIVER:
            return
        dead = {first.node}

        def alive(candidate, _kind):
            return candidate not in dead

        second = pastry_next_hop(
            origin, key, ring, leaf_sets[origin], tables[origin], alive
        )
        assert second.node not in dead

    def test_all_dead_delivers_locally(self):
        ring, leaf_sets, tables = _network(30, seed=10)
        rng = random.Random(11)
        key = SPACE.random_identifier(rng)
        origin = rng.randrange(30)

        def nothing_alive(_candidate, _kind):
            return False

        decision = pastry_next_hop(
            origin, key, ring, leaf_sets[origin], tables[origin], nothing_alive
        )
        assert decision.action == DELIVER
        assert decision.node == origin

    def test_singleton_ring(self):
        ids = [SPACE.identifier(42)]
        ring = PastryRing(ids)
        decision = pastry_next_hop(
            0, SPACE.identifier(7), ring, (), {}, _always_alive
        )
        assert decision.action == DELIVER

    def test_leafset_source_for_near_keys(self):
        ring, leaf_sets, tables = _network(40, seed=12)
        node = 0
        # key right next to a leafset member
        member = leaf_sets[node][0]
        key = SPACE.identifier(ring.ids[member].value)
        decision = pastry_next_hop(
            node, key, ring, leaf_sets[node], tables[node], _always_alive
        )
        assert decision.action == "forward"
        assert decision.node == member
