"""Unit tests for the sqlite task ledger and the store's queryable index:
checked state transitions, attempt accounting, lock errors, checksums,
atomic artifact commits, and `ResultStore.query`."""

from __future__ import annotations

import sqlite3

import pytest

from repro.errors import ExperimentError, LedgerError
from repro.experiments import run_experiment
from repro.experiments.ledger import (
    ResultRecord,
    TaskLedger,
    file_checksum,
)
from repro.experiments.store import ResultStore

TASKS = [("fig7", "smoke", 0), ("fig7", "smoke", 1), ("fig9", "smoke", 0)]


@pytest.fixture()
def ledger(tmp_path):
    with TaskLedger(tmp_path / "ledger.sqlite") as ledger:
        ledger.ensure(TASKS)
        yield ledger


class TestTransitions:
    def test_ensure_inserts_pending(self, ledger):
        assert ledger.counts() == {
            "pending": 3, "running": 0, "done": 0, "failed": 0
        }
        row = ledger.row(TASKS[0])
        assert row.state == "pending"
        assert row.attempts == 0
        assert row.key == TASKS[0]

    def test_ensure_is_idempotent(self, ledger):
        ledger.claim(TASKS[0], worker="w0")
        ledger.ensure(TASKS)  # must not reset the running row
        assert ledger.row(TASKS[0]).state == "running"
        assert ledger.counts()["pending"] == 2

    def test_happy_path_claim_complete(self, ledger):
        ledger.claim(TASKS[0], worker="pid:123")
        row = ledger.row(TASKS[0])
        assert row.state == "running"
        assert row.attempts == 1
        assert row.worker == "pid:123"
        ledger.complete(TASKS[0], checksum="sha256:abc")
        row = ledger.row(TASKS[0])
        assert row.state == "done"
        assert row.checksum == "sha256:abc"

    def test_fail_records_error(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.fail(TASKS[0], error="worker died (exit code -9)")
        row = ledger.row(TASKS[0])
        assert row.state == "failed"
        assert "exit code -9" in row.error

    def test_release_returns_to_pending_keeping_attempts(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.release(TASKS[0], reason="orphaned")
        row = ledger.row(TASKS[0])
        assert row.state == "pending"
        assert row.attempts == 1  # the crashed claim still counts

    def test_reset_failed_reopens(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.fail(TASKS[0], error="boom")
        ledger.reset_failed(TASKS[0])
        assert ledger.row(TASKS[0]).state == "pending"

    def test_reopen_done_requires_done(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.complete(TASKS[0], checksum="sha256:abc")
        ledger.reopen_done(TASKS[0], reason="checksum mismatch")
        assert ledger.row(TASKS[0]).state == "pending"
        with pytest.raises(LedgerError, match="reopen_done"):
            ledger.reopen_done(TASKS[1], reason="not done")


class TestInvalidTransitions:
    """Every rejected transition raises LedgerError and changes nothing."""

    def test_claim_running_rejected(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        with pytest.raises(LedgerError, match="cannot claim"):
            ledger.claim(TASKS[0], worker="other")
        row = ledger.row(TASKS[0])
        assert (row.state, row.attempts, row.worker) == ("running", 1, "w")

    def test_task_cannot_be_done_twice(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.complete(TASKS[0], checksum="sha256:abc")
        with pytest.raises(LedgerError, match="cannot complete"):
            ledger.complete(TASKS[0], checksum="sha256:def")
        assert ledger.row(TASKS[0]).checksum == "sha256:abc"

    def test_done_is_absorbing(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.complete(TASKS[0], checksum="sha256:abc")
        for operation in (
            lambda: ledger.claim(TASKS[0], worker="w2"),
            lambda: ledger.fail(TASKS[0], error="late failure"),
            lambda: ledger.release(TASKS[0]),
            lambda: ledger.reset_failed(TASKS[0]),
        ):
            with pytest.raises(LedgerError):
                operation()
            assert ledger.row(TASKS[0]).state == "done"

    def test_complete_pending_rejected(self, ledger):
        with pytest.raises(LedgerError, match="cannot complete"):
            ledger.complete(TASKS[0], checksum="sha256:abc")

    def test_fail_pending_rejected(self, ledger):
        with pytest.raises(LedgerError, match="cannot fail"):
            ledger.fail(TASKS[0], error="boom")

    def test_unknown_task_rejected(self, ledger):
        with pytest.raises(LedgerError, match="unknown task"):
            ledger.claim(("fig7", "smoke", 99), worker="w")

    def test_ledger_error_is_an_experiment_error(self):
        assert issubclass(LedgerError, ExperimentError)


class TestResetAll:
    def test_reset_all_rewinds_everything(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        ledger.complete(TASKS[0], checksum="sha256:abc")
        ledger.claim(TASKS[1], worker="w")
        ledger.fail(TASKS[1], error="boom")
        ledger.reset_all(TASKS)
        for task in TASKS:
            row = ledger.row(task)
            assert (row.state, row.attempts, row.checksum) == ("pending", 0, None)


class TestReads:
    def test_rows_filters(self, ledger):
        ledger.claim(TASKS[2], worker="w")
        assert [r.key for r in ledger.rows(experiment_id="fig9")] == [TASKS[2]]
        assert len(ledger.rows(state="pending")) == 2
        assert len(ledger.rows(scale="smoke")) == 3

    def test_counts_filter(self, ledger):
        ledger.claim(TASKS[0], worker="w")
        counts = ledger.counts(experiment_id="fig7")
        assert counts == {"pending": 1, "running": 1, "done": 0, "failed": 0}

    def test_row_missing_is_none(self, ledger):
        assert ledger.row(("fig7", "smoke", 99)) is None


class TestLocking:
    def test_locked_ledger_is_one_line_error(self, tmp_path):
        path = tmp_path / "ledger.sqlite"
        with TaskLedger(path) as ledger:
            ledger.ensure(TASKS)
        blocker = sqlite3.connect(path)
        blocker.execute("BEGIN EXCLUSIVE")
        try:
            with pytest.raises(LedgerError, match="locked"):
                with TaskLedger(path, timeout=0.1) as contender:
                    contender.claim(TASKS[0], worker="w")
        finally:
            blocker.rollback()
            blocker.close()


class TestResultsIndex:
    RECORD = ResultRecord(
        experiment_id="fig7",
        scale="smoke",
        seed=0,
        path="fig7/smoke/seed_0.json",
        checksum="sha256:abc",
        rows=3,
        wall_clock=1.25,
        events_processed=42,
        written_at="2026-01-01T00:00:00+00:00",
    )

    def test_record_and_query(self, ledger):
        ledger.record_result(self.RECORD)
        assert ledger.query_results(experiment_id="fig7") == [self.RECORD]
        assert ledger.query_results(experiment_id="fig9") == []
        assert ledger.query_results(seeds=[0]) == [self.RECORD]
        assert ledger.query_results(seeds=[1]) == []

    def test_record_upserts(self, ledger):
        ledger.record_result(self.RECORD)
        import dataclasses

        updated = dataclasses.replace(self.RECORD, checksum="sha256:def")
        ledger.record_result(updated)
        (found,) = ledger.query_results(experiment_id="fig7")
        assert found.checksum == "sha256:def"


class TestStoreIntegration:
    def test_save_indexes_and_checksums(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_experiment("fig7", scale="smoke", seed=0)
        path = store.save(result, seed=0, wall_clock=1.0, events_processed=7)
        (record,) = store.query("fig7", "smoke")
        assert record.path == "fig7/smoke/seed_0.json"
        assert record.events_processed == 7
        # the indexed checksum is the hash of the bytes on disk
        assert record.checksum == file_checksum(path)

    def test_verify_artifact(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_experiment("fig7", scale="smoke", seed=0)
        path = store.save(result, seed=0)
        checksum = file_checksum(path)
        task = ("fig7", "smoke", 0)
        assert store.verify_artifact(task, checksum)
        assert not store.verify_artifact(task, "sha256:not-it")
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert not store.verify_artifact(task, checksum)
        path.unlink()
        assert not store.verify_artifact(task, checksum)

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_experiment("fig7", scale="smoke", seed=0)
        store.save(result, seed=0)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_query_empty_store(self, tmp_path):
        assert ResultStore(tmp_path).query() == []
