"""Tests for RNG streams, counters, latency models, and tracing."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.overlay.transit_stub import TransitStubUnderlay
from repro.sim.counters import TrafficCounters
from repro.sim.latency import ConstantLatency, UniformRandomLatency, UnderlayLatency
from repro.sim.rng import derive_rng, derive_seed
from repro.sim.trace import TraceRecorder


class TestRng:
    def test_same_labels_same_stream(self):
        assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
        r1, r2 = derive_rng(1, "a", 2), derive_rng(1, "a", 2)
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_different_labels_different_streams(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")
        assert derive_seed(1, "a") != derive_seed(2, "a")
        assert derive_seed(1, "a", 0) != derive_seed(1, "a", 1)

    def test_tuple_seed_supported(self):
        assert derive_seed((1, "x"), "a") == derive_seed((1, "x"), "a")


class TestCounters:
    def test_merge_adds_fields(self):
        a = TrafficCounters(messages_sent=2, duplicates=1)
        b = TrafficCounters(messages_sent=3, retransmissions=4)
        a.merge(b)
        assert a.messages_sent == 5
        assert a.duplicates == 1
        assert a.retransmissions == 4

    def test_copy_is_independent(self):
        a = TrafficCounters(messages_sent=1)
        b = a.copy()
        b.messages_sent += 1
        assert a.messages_sent == 1

    def test_total_excludes_duplicates(self):
        c = TrafficCounters(
            messages_sent=2, duplicates=9, replies_sent=1, retransmissions=1, probes_sent=1
        )
        assert c.total == 5

    def test_as_dict(self):
        assert TrafficCounters(messages_sent=2).as_dict()["messages_sent"] == 2


class TestLatencyModels:
    def test_constant(self):
        model = ConstantLatency(0.2)
        assert model.latency(1, 2) == 0.2
        with pytest.raises(ConfigurationError):
            ConstantLatency(-1)

    def test_uniform_random_symmetric_and_stable(self):
        model = UniformRandomLatency(0.01, 0.05, seed=3)
        x = model.latency(1, 2)
        assert model.latency(2, 1) == x
        assert model.latency(1, 2) == x
        assert 0.01 <= x <= 0.05
        assert model.latency(1, 1) == 0.0
        with pytest.raises(ConfigurationError):
            UniformRandomLatency(0.5, 0.1)

    def test_underlay_latency(self):
        underlay = TransitStubUnderlay.for_size(60, seed=1)
        attachment = underlay.random_attachment(10, seed=2)
        model = UnderlayLatency(underlay, attachment)
        assert model.latency(0, 0) == 0.0
        value = model.latency(0, 5)
        assert value > 0
        assert model.latency(5, 0) == pytest.approx(value)

    def test_underlay_attachment_validated(self):
        underlay = TransitStubUnderlay.for_size(60, seed=1)
        with pytest.raises(ConfigurationError):
            UnderlayLatency(underlay, [underlay.num_nodes + 5])


class TestTrace:
    def test_emit_and_filter(self):
        trace = TraceRecorder()
        trace.emit(0.0, "send", 1, to=2)
        trace.emit(1.0, "store", 2)
        trace.emit(2.0, "send", 2, to=3)
        assert len(trace) == 3
        assert len(trace.of_kind("send")) == 2
        assert len(trace.at_node(2)) == 2
        assert "send" in str(trace.of_kind("send")[0])

    def test_max_records_cap(self):
        trace = TraceRecorder(max_records=2)
        for i in range(5):
            trace.emit(float(i), "x", i)
        assert len(trace) == 2

    def test_clear(self):
        trace = TraceRecorder()
        trace.emit(0.0, "x", 0)
        trace.clear()
        assert len(trace) == 0
