"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import (
    EventScheduler,
    add_events_processed,
    events_processed_total,
    reset_events_processed,
)


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventScheduler()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        assert engine.run() == 3
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        engine = EventScheduler()
        fired = []
        for label in "abc":
            engine.schedule(1.0, fired.append, label)
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at_absolute_time(self):
        engine = EventScheduler(start_time=10.0)
        fired = []
        engine.schedule_at(12.5, fired.append, "x")
        engine.run()
        assert fired == ["x"]
        assert engine.now == 12.5

    def test_negative_delay_rejected(self):
        engine = EventScheduler()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        engine = EventScheduler(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(0.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventScheduler()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        engine.cancel(event)
        assert engine.run() == 0
        assert fired == []

    def test_peek_skips_cancelled(self):
        engine = EventScheduler()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(first)
        assert engine.peek_time() == 2.0


class TestRunBounds:
    def test_run_until_stops_and_advances_clock(self):
        engine = EventScheduler()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(5.0, fired.append, "b")
        assert engine.run(until=3.0) == 1
        assert fired == ["a"]
        assert engine.now == 3.0  # clock advanced to `until`
        assert engine.run() == 1
        assert fired == ["a", "b"]

    def test_max_events(self):
        engine = EventScheduler()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_processed_counter(self):
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.processed == 2

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False

    def test_max_events_with_until_advances_clock(self):
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        assert engine.run(until=3.0, max_events=10) == 1
        assert engine.now == 3.0


class TestBatchedRunUntil:
    def test_executes_events_up_to_and_including_bound(self):
        engine = EventScheduler()
        fired = []
        for t in (1.0, 2.0, 3.0):
            engine.schedule_at(t, fired.append, t)
        assert engine.run_until(2.0) == 2
        assert fired == [1.0, 2.0]
        assert engine.now == 2.0

    def test_advances_clock_past_drained_queue(self):
        engine = EventScheduler()
        assert engine.run_until(7.5) == 0
        assert engine.now == 7.5

    def test_skips_cancelled_in_batch(self):
        engine = EventScheduler()
        fired = []
        keep = engine.schedule_at(1.0, fired.append, "keep")
        drop = engine.schedule_at(2.0, fired.append, "drop")
        engine.cancel(drop)
        assert engine.run_until(10.0) == 1
        assert fired == ["keep"]
        assert keep.cancelled is False
        assert drop.cancelled is True

    def test_events_scheduled_during_batch_run(self):
        engine = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(0.0, chain, 0)
        assert engine.run_until(2.0) == 3  # depths 0, 1, 2; depth 3 at t=3.0
        assert engine.pending == 1


class TestBackwardsClock:
    """Regression: a bound earlier than `now` used to silently rewind the
    windowed timeline; the clock must refuse to move backwards."""

    def test_run_until_rejects_backwards_bound(self):
        engine = EventScheduler()
        engine.run_until(10.0)
        with pytest.raises(SimulationError, match="never moves backwards"):
            engine.run_until(5.0)
        assert engine.now == 10.0  # clock untouched by the failed call

    def test_run_rejects_backwards_until(self):
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        engine.run(until=4.0)
        with pytest.raises(SimulationError, match="never moves backwards"):
            engine.run(until=2.0)
        with pytest.raises(SimulationError, match="never moves backwards"):
            engine.run(until=2.0, max_events=1)
        assert engine.now == 4.0

    def test_equal_bound_is_a_no_op(self):
        engine = EventScheduler()
        engine.run_until(3.0)
        assert engine.run_until(3.0) == 0
        assert engine.run(until=3.0) == 0
        assert engine.now == 3.0


class TestFreelist:
    def test_slots_are_recycled(self):
        engine = EventScheduler()
        for _ in range(100):
            engine.post(engine.now + 1.0, lambda: None)
            engine.run()
        # one live event at a time: the slot arrays must not grow per event
        assert len(engine._callbacks) == 1

    def test_post_rejects_past_times(self):
        engine = EventScheduler(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.post(4.0, lambda: None)

    def test_cancel_after_fire_is_a_true_noop(self):
        engine = EventScheduler()
        events = [engine.schedule(1.0, lambda: None) for _ in range(50)]
        engine.run()
        for event in events:
            engine.cancel(event)  # all already fired
        assert engine._cancelled == set()
        assert engine._pending_seqs == set()

    def test_post_behaves_like_schedule_at(self):
        engine = EventScheduler()
        fired = []
        engine.post(2.0, fired.append, "b")
        engine.post(1.0, fired.append, "a")
        assert engine.run() == 2
        assert fired == ["a", "b"]


class TestProcessCounter:
    def test_reset_returns_previous_total(self):
        reset_events_processed()
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        engine.run()
        add_events_processed(5)
        assert events_processed_total() == 6
        assert reset_events_processed() == 6
        assert events_processed_total() == 0

    def test_step_counts_into_process_total(self):
        reset_events_processed()
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        assert engine.step() is True
        assert events_processed_total() == 1
