"""Tests for the discrete-event scheduler."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import EventScheduler


class TestScheduling:
    def test_events_fire_in_time_order(self):
        engine = EventScheduler()
        fired = []
        engine.schedule(3.0, fired.append, "c")
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(2.0, fired.append, "b")
        assert engine.run() == 3
        assert fired == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_ties_fire_in_insertion_order(self):
        engine = EventScheduler()
        fired = []
        for label in "abc":
            engine.schedule(1.0, fired.append, label)
        engine.run()
        assert fired == ["a", "b", "c"]

    def test_schedule_at_absolute_time(self):
        engine = EventScheduler(start_time=10.0)
        fired = []
        engine.schedule_at(12.5, fired.append, "x")
        engine.run()
        assert fired == ["x"]
        assert engine.now == 12.5

    def test_negative_delay_rejected(self):
        engine = EventScheduler()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)

    def test_scheduling_in_the_past_rejected(self):
        engine = EventScheduler(start_time=5.0)
        with pytest.raises(SimulationError):
            engine.schedule_at(4.0, lambda: None)

    def test_events_scheduled_during_run(self):
        engine = EventScheduler()
        fired = []

        def chain(depth):
            fired.append(depth)
            if depth < 3:
                engine.schedule(1.0, chain, depth + 1)

        engine.schedule(0.0, chain, 0)
        engine.run()
        assert fired == [0, 1, 2, 3]
        assert engine.now == 3.0


class TestCancellation:
    def test_cancelled_event_skipped(self):
        engine = EventScheduler()
        fired = []
        event = engine.schedule(1.0, fired.append, "x")
        engine.cancel(event)
        assert engine.run() == 0
        assert fired == []

    def test_peek_skips_cancelled(self):
        engine = EventScheduler()
        first = engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.cancel(first)
        assert engine.peek_time() == 2.0


class TestRunBounds:
    def test_run_until_stops_and_advances_clock(self):
        engine = EventScheduler()
        fired = []
        engine.schedule(1.0, fired.append, "a")
        engine.schedule(5.0, fired.append, "b")
        assert engine.run(until=3.0) == 1
        assert fired == ["a"]
        assert engine.now == 3.0  # clock advanced to `until`
        assert engine.run() == 1
        assert fired == ["a", "b"]

    def test_max_events(self):
        engine = EventScheduler()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        assert engine.run(max_events=3) == 3
        assert engine.pending == 2

    def test_processed_counter(self):
        engine = EventScheduler()
        engine.schedule(1.0, lambda: None)
        engine.schedule(2.0, lambda: None)
        engine.run()
        assert engine.processed == 2

    def test_step_on_empty_queue(self):
        assert EventScheduler().step() is False
