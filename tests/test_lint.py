"""Tests for repro.lint: the determinism-contract static analyzer.

Structure:

- one bad/good fixture pair per rule (flagged snippet, clean rewrite);
- suppression semantics (right id silences, wrong id does not);
- config semantics (path allowlists, excludes, TOML loading — including
  the 3.10 fallback parser cross-validated against tomllib);
- JSON report schema round-trip;
- the CLI ``lint`` command's exit codes and output formats;
- a seeded fixture *tree* with one violation per rule (the acceptance
  scenario: every rule reports id, path:line, and a one-line message);
- the self-lint gate: ``src/repro`` and ``benchmarks`` are clean under
  the full rule set with the repo's own pyproject allowlists.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.errors import ConfigurationError, ExperimentError
from repro.lint import (
    REPORT_SCHEMA_VERSION,
    LintConfig,
    LintReport,
    Violation,
    all_rules,
    get_rule,
    lint_paths,
    load_config,
)
from repro.lint.config import _parse_minimal_toml, find_pyproject
from repro.lint.engine import SYNTAX_RULE_ID, suppressions_by_line

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]

ALL_RULE_IDS = [
    "CON001",
    "DET001",
    "DET002",
    "DET003",
    "DET004",
    "DET005",
    "DET006",
    "ERR001",
]

#: rule id -> (bad snippet, 1-based line the violation lands on, clean snippet)
FIXTURES = {
    "DET001": (
        "import random\n"
        "rng = random.Random(7)\n",
        2,
        "from repro.sim.rng import derive_rng\n"
        "rng = derive_rng(7, 'fixture')\n",
    ),
    "DET002": (
        "import numpy as np\n"
        "np.random.seed(0)\n",
        2,
        "import numpy as np\n"
        "rng = np.random.default_rng(0)\n",
    ),
    "DET003": (
        "import time\n"
        "stamp = time.time()\n",
        2,
        "def stamp(now: float) -> float:\n"
        "    return now\n",
    ),
    "DET004": (
        "names = {'a', 'b'}\n"
        "for name in names | set():\n"
        "    print(name)\n",
        2,
        "names = {'a', 'b'}\n"
        "for name in sorted(names):\n"
        "    print(name)\n",
    ),
    "DET005": (
        "import pathlib\n"
        "def scan(root: pathlib.Path) -> list:\n"
        "    return [p for p in root.glob('*.json')]\n",
        3,
        "import pathlib\n"
        "def scan(root: pathlib.Path) -> list:\n"
        "    return [p for p in sorted(root.glob('*.json'))]\n",
    ),
    "DET006": (
        "import os\n"
        "scale = os.environ.get('REPRO_SCALE', 'smoke')\n",
        2,
        "def pick_scale(scale: str = 'smoke') -> str:\n"
        "    return scale\n",
    ),
    "CON001": (
        "import dataclasses\n"
        "@dataclasses.dataclass(frozen=True)\n"
        "class Box:\n"
        "    value: int\n"
        "    def bump(self) -> None:\n"
        "        object.__setattr__(self, 'value', self.value + 1)\n",
        6,
        "import dataclasses\n"
        "@dataclasses.dataclass(frozen=True)\n"
        "class Box:\n"
        "    value: int\n"
        "    def __post_init__(self) -> None:\n"
        "        object.__setattr__(self, 'value', abs(self.value))\n"
        "    def bump(self) -> 'Box':\n"
        "        return dataclasses.replace(self, value=self.value + 1)\n",
    ),
    "ERR001": (
        "def check(n: int) -> int:\n"
        "    if n < 0:\n"
        "        raise ValueError(f'n must be >= 0, got {n}')\n"
        "    return n\n",
        3,
        "from repro.errors import ConfigurationError\n"
        "def check(n: int) -> int:\n"
        "    if n < 0:\n"
        "        raise ConfigurationError(f'n must be >= 0, got {n}')\n"
        "    return n\n",
    ),
}

#: DET004's bad fixture uses a set *operation* result; the simple literal
#: case is covered separately below, so keep the table honest here
FIXTURES["DET004"] = (
    "for name in {'a', 'b'}:\n"
    "    print(name)\n",
    1,
    "for name in sorted({'a', 'b'}):\n"
    "    print(name)\n",
)


def lint_source(
    tmp_path: pathlib.Path,
    source: str,
    rule_id: str | None = None,
    filename: str = "snippet.py",
    config: LintConfig | None = None,
) -> LintReport:
    """Write ``source`` under ``tmp_path`` and lint it."""
    target = tmp_path / filename
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    return lint_paths(
        [target],
        config=config if config is not None else LintConfig(root=tmp_path),
        rules=[rule_id] if rule_id is not None else None,
    )


class TestRuleFixtures:
    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_bad_snippet_flagged_at_line(self, tmp_path, rule_id):
        bad, line, _good = FIXTURES[rule_id]
        report = lint_source(tmp_path, bad, rule_id)
        assert [v.rule_id for v in report.violations] == [rule_id]
        violation = report.violations[0]
        assert violation.line == line
        assert violation.path == "snippet.py"
        assert violation.message  # one-line, non-empty
        assert "\n" not in violation.message

    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_good_snippet_clean(self, tmp_path, rule_id):
        _bad, _line, good = FIXTURES[rule_id]
        report = lint_source(tmp_path, good, rule_id)
        assert report.ok, report.render_text()

    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_suppression_honored(self, tmp_path, rule_id):
        bad, line, _good = FIXTURES[rule_id]
        lines = bad.splitlines()
        lines[line - 1] += f"  # repro: allow[{rule_id}] fixture exemption"
        report = lint_source(tmp_path, "\n".join(lines) + "\n", rule_id)
        assert report.ok
        assert report.suppressed == 1

    @pytest.mark.parametrize("rule_id", sorted(FIXTURES))
    def test_wrong_suppression_id_does_not_silence(self, tmp_path, rule_id):
        bad, line, _good = FIXTURES[rule_id]
        other = "DET001" if rule_id != "DET001" else "DET002"
        lines = bad.splitlines()
        lines[line - 1] += f"  # repro: allow[{other}] wrong rule"
        report = lint_source(tmp_path, "\n".join(lines) + "\n", rule_id)
        assert [v.rule_id for v in report.violations] == [rule_id]


class TestRuleDetails:
    def test_det001_from_import_and_module_functions(self, tmp_path):
        source = (
            "from random import Random, shuffle\n"
            "import random\n"
            "r = Random(3)\n"
            "shuffle([1, 2])\n"
            "random.seed(5)\n"
            "x = random.randint(0, 9)\n"
        )
        report = lint_source(tmp_path, source, "DET001")
        assert [v.line for v in report.violations] == [3, 4, 5, 6]

    def test_det001_ignores_annotations_and_rng_parameters(self, tmp_path):
        source = (
            "import random\n"
            "def draw(rng: random.Random) -> int:\n"
            "    return rng.randint(0, 9)\n"
        )
        assert lint_source(tmp_path, source, "DET001").ok

    def test_det001_needs_the_import(self, tmp_path):
        # a local object that happens to be called `random` is not the module
        source = (
            "class _Fake:\n"
            "    def seed(self, n):\n"
            "        return n\n"
            "random = _Fake()\n"
            "random.seed(3)\n"
        )
        assert lint_source(tmp_path, source, "DET001").ok

    def test_det002_aliased_and_direct(self, tmp_path):
        source = (
            "import numpy\n"
            "import numpy as np\n"
            "numpy.random.seed(1)\n"
            "x = np.random.rand(4)\n"
            "state = np.random.RandomState(2)\n"
        )
        report = lint_source(tmp_path, source, "DET002")
        assert [v.line for v in report.violations] == [3, 4, 5]

    def test_det002_generator_api_clean(self, tmp_path):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng(7)\n"
            "x = rng.standard_normal(3)\n"
        )
        assert lint_source(tmp_path, source, "DET002").ok

    def test_det003_from_import_and_datetime(self, tmp_path):
        source = (
            "from time import perf_counter\n"
            "from datetime import datetime\n"
            "t0 = perf_counter()\n"
            "stamp = datetime.now()\n"
        )
        report = lint_source(tmp_path, source, "DET003")
        assert [v.line for v in report.violations] == [3, 4]

    def test_det004_comprehension_and_join(self, tmp_path):
        source = (
            "items = ['b', 'a']\n"
            "dedup = [x for x in set(items)]\n"
            "label = ','.join({'x', 'y'})\n"
        )
        report = lint_source(tmp_path, source, "DET004")
        assert [v.line for v in report.violations] == [2, 3]

    def test_det004_sorted_wrapping_clean(self, tmp_path):
        source = (
            "items = ['b', 'a']\n"
            "dedup = [x for x in sorted(set(items))]\n"
            "label = ','.join(sorted({'x', 'y'}))\n"
        )
        assert lint_source(tmp_path, source, "DET004").ok

    def test_det005_listdir_and_sorted_wrap(self, tmp_path):
        source = (
            "import os\n"
            "import pathlib\n"
            "bad = os.listdir('.')\n"
            "good = sorted(os.listdir('.'))\n"
            "also_good = sorted(pathlib.Path('.').iterdir())\n"
        )
        report = lint_source(tmp_path, source, "DET005")
        assert [v.line for v in report.violations] == [3]

    def test_det006_subscript_get_and_getenv(self, tmp_path):
        source = (
            "import os\n"
            "a = os.environ['HOME']\n"
            "b = os.environ.get('HOME')\n"
            "c = os.getenv('HOME')\n"
            "d = os.path.join('x', 'y')\n"
        )
        report = lint_source(tmp_path, source, "DET006")
        assert [v.line for v in report.violations] == [2, 3, 4]

    def test_err001_exception_and_exempt_typeerror(self, tmp_path):
        source = (
            "def f(flag):\n"
            "    if flag == 1:\n"
            "        raise Exception('boom')\n"
            "    if flag == 2:\n"
            "        raise TypeError('wrong kind')\n"
            "    raise NotImplementedError\n"
        )
        report = lint_source(tmp_path, source, "ERR001")
        assert [v.line for v in report.violations] == [3]

    def test_err001_reraise_clean(self, tmp_path):
        source = (
            "def f():\n"
            "    try:\n"
            "        return 1\n"
            "    except KeyError:\n"
            "        raise\n"
        )
        assert lint_source(tmp_path, source, "ERR001").ok

    def test_syntax_error_reported_not_raised(self, tmp_path):
        report = lint_source(tmp_path, "def broken(:\n")
        assert [v.rule_id for v in report.violations] == [SYNTAX_RULE_ID]
        assert not report.ok


class TestSuppressionParsing:
    def test_multiple_ids_and_reason(self):
        markers = suppressions_by_line(
            "x = 1\n"
            "y = glob()  # repro: allow[DET004, DET005] both fine here\n"
        )
        assert markers == {2: {"DET004", "DET005"}}

    def test_plain_comments_ignored(self):
        assert suppressions_by_line("# just a comment about repro\nx = 1\n") == {}


class TestConfig:
    def test_allowlist_exempts_file_and_counts(self, tmp_path):
        bad, _line, _good = FIXTURES["DET001"]
        config = LintConfig(root=tmp_path, allow={"DET001": ("pkg",)})
        report = lint_source(
            tmp_path, bad, "DET001", filename="pkg/stream.py", config=config
        )
        assert report.ok
        assert report.allowed == 1

    def test_allowlist_is_per_rule(self, tmp_path):
        bad, _line, _good = FIXTURES["DET001"]
        config = LintConfig(root=tmp_path, allow={"DET002": ("pkg",)})
        report = lint_source(
            tmp_path, bad, "DET001", filename="pkg/stream.py", config=config
        )
        assert not report.ok

    def test_glob_patterns_match(self, tmp_path):
        config = LintConfig(root=tmp_path, allow={"DET003": ("src/*/timing.py",)})
        assert config.is_allowed("DET003", tmp_path / "src" / "a" / "timing.py")
        assert not config.is_allowed("DET003", tmp_path / "src" / "a" / "other.py")

    def test_exclude_skips_files(self, tmp_path):
        bad, _line, _good = FIXTURES["ERR001"]
        (tmp_path / "vendored").mkdir()
        (tmp_path / "vendored" / "third_party.py").write_text(bad)
        report = lint_paths(
            [tmp_path],
            config=LintConfig(root=tmp_path, exclude=("vendored",)),
        )
        assert report.ok
        assert report.files_scanned == 0

    def test_load_config_from_pyproject(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text(
            "[tool.repro-lint]\n"
            'exclude = ["generated"]\n'
            "[tool.repro-lint.allow]\n"
            'DET001 = ["src/streams.py"]\n'
        )
        config = load_config(start=tmp_path / "sub" / "dir")
        assert config.root == tmp_path
        assert config.allow["DET001"] == ("src/streams.py",)
        assert config.exclude == ("generated",)

    def test_missing_table_yields_empty_config(self, tmp_path):
        (tmp_path / "pyproject.toml").write_text("[project]\nname = 'x'\n")
        config = load_config(start=tmp_path)
        assert config.allow == {}
        assert config.exclude == ()

    def test_no_pyproject_yields_empty_config(self, tmp_path):
        assert find_pyproject(tmp_path) is None or True  # env-independent
        config = load_config(start="/")
        assert config.exclude == ()

    def test_explicit_pyproject_must_exist(self, tmp_path):
        with pytest.raises(ConfigurationError):
            load_config(pyproject=tmp_path / "nope.toml")

    def test_bad_allow_shape_rejected(self):
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict({"allow": {"DET001": [1, 2]}})
        with pytest.raises(ConfigurationError):
            LintConfig.from_dict({"exclude": 7})

    def test_minimal_toml_parser_matches_tomllib(self):
        """The 3.10 fallback parser reads the repo's real config the same
        way tomllib does (multi-line arrays, comments, sub-tables)."""
        tomllib = pytest.importorskip("tomllib")
        text = (REPO_ROOT / "pyproject.toml").read_text()
        expected = tomllib.loads(text).get("tool", {}).get("repro-lint", {})
        assert _parse_minimal_toml(text, "repro-lint") == expected
        assert "DET001" in _parse_minimal_toml(text, "repro-lint")["allow"]


class TestReportSchema:
    def _report(self, tmp_path) -> LintReport:
        bad, _line, _good = FIXTURES["DET001"]
        return lint_source(tmp_path, bad, "DET001")

    def test_json_round_trip(self, tmp_path):
        report = self._report(tmp_path)
        payload = json.loads(report.to_json())
        assert payload["version"] == REPORT_SCHEMA_VERSION
        restored = LintReport.from_dict(payload)
        assert restored.violations == report.violations
        assert restored.files_scanned == report.files_scanned

    def test_schema_fields(self, tmp_path):
        payload = self._report(tmp_path).to_dict()
        assert sorted(payload) == [
            "allowed", "counts", "files_scanned", "suppressed",
            "version", "violations",
        ]
        (entry,) = payload["violations"]
        assert sorted(entry) == ["column", "line", "message", "path", "rule_id"]
        assert payload["counts"] == {"DET001": 1}

    def test_unknown_version_rejected(self, tmp_path):
        payload = self._report(tmp_path).to_dict()
        payload["version"] = 99
        with pytest.raises(ExperimentError):
            LintReport.from_dict(payload)

    def test_violations_sorted_deterministically(self, tmp_path):
        (tmp_path / "b.py").write_text("import random\nrandom.seed(1)\n")
        (tmp_path / "a.py").write_text(
            "import random\nrandom.seed(1)\nrandom.seed(2)\n"
        )
        report = lint_paths([tmp_path], config=LintConfig(root=tmp_path))
        keys = [(v.path, v.line) for v in report.violations]
        assert keys == sorted(keys) == [("a.py", 2), ("a.py", 3), ("b.py", 2)]

    def test_render_text_lines_are_grepable(self, tmp_path):
        report = self._report(tmp_path)
        first = report.render_text().splitlines()[0]
        assert first.startswith("snippet.py:2:")
        assert "DET001" in first


class TestEngineEdges:
    def test_missing_path_is_one_line_error(self):
        with pytest.raises(ConfigurationError):
            lint_paths(["definitely/not/here"])

    def test_empty_path_list_rejected(self):
        with pytest.raises(ConfigurationError):
            lint_paths([])

    def test_unknown_rule_rejected(self, tmp_path):
        (tmp_path / "x.py").write_text("pass\n")
        with pytest.raises(ExperimentError):
            lint_paths([tmp_path], config=LintConfig(root=tmp_path),
                       rules=["NOPE"])

    def test_every_rule_has_explain_metadata(self):
        rules = all_rules()
        assert [rule.rule_id for rule in rules] == ALL_RULE_IDS
        for rule in rules:
            assert rule.title and rule.rationale and rule.fix_pattern
            text = rule.explain()
            assert rule.rule_id in text and "Fix:" in text

    def test_get_rule_unknown_is_one_line_error(self):
        with pytest.raises(ExperimentError):
            get_rule("DET999")


class TestSeededFixtureTree:
    """The acceptance scenario: one seeded violation per rule, in a tree."""

    def test_every_rule_fires_once_with_location(self, tmp_path):
        expected: dict[str, tuple[str, int]] = {}
        for rule_id, (bad, line, _good) in FIXTURES.items():
            rel = f"pkg/bad_{rule_id.lower()}.py"
            path = tmp_path / rel
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(bad)
            expected[rule_id] = (rel, line)
        report = lint_paths([tmp_path], config=LintConfig(root=tmp_path))
        assert report.counts() == {rule_id: 1 for rule_id in FIXTURES}
        by_rule = {v.rule_id: v for v in report.violations}
        for rule_id, (rel, line) in expected.items():
            violation = by_rule[rule_id]
            assert (violation.path, violation.line) == (rel, line)
            assert violation.message and "\n" not in violation.message


class TestCli:
    def _tree(self, tmp_path) -> pathlib.Path:
        bad, _line, _good = FIXTURES["DET001"]
        tree = tmp_path / "tree"
        tree.mkdir()
        (tree / "bad.py").write_text(bad)
        return tree

    def test_violations_exit_1_and_print(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)  # no pyproject above tmp: empty config
        tree = self._tree(tmp_path)
        assert main(["lint", str(tree)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out and "bad.py:2" in out

    def test_clean_exit_0(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        clean = tmp_path / "clean"
        clean.mkdir()
        (clean / "ok.py").write_text("x = 1\n")
        assert main(["lint", str(clean)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_json_format_and_report_file(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        tree = self._tree(tmp_path)
        report_path = tmp_path / "out" / "lint.json"
        code = main(
            ["lint", str(tree), "--format", "json", "--report", str(report_path)]
        )
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"] == {"DET001": 1}
        assert json.loads(report_path.read_text()) == payload

    def test_rules_subset(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        tree = self._tree(tmp_path)
        # DET003 never fires on a DET001 fixture
        assert main(["lint", str(tree), "--rules", "DET003"]) == 0
        capsys.readouterr()

    def test_explain_and_list_rules(self, capsys):
        from repro.experiments.cli import main

        assert main(["lint", "--explain", "DET003"]) == 0
        out = capsys.readouterr().out
        assert "DET003" in out and "Fix:" in out
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ALL_RULE_IDS:
            assert rule_id in out

    def test_unknown_rule_exits_2(self, capsys):
        from repro.experiments.cli import main

        assert main(["lint", "--explain", "DET999"]) == 2
        assert "unknown lint rule" in capsys.readouterr().err

    def test_missing_path_exits_2(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        assert main(["lint", "does/not/exist"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_explicit_config_flag(self, tmp_path, capsys, monkeypatch):
        from repro.experiments.cli import main

        monkeypatch.chdir(tmp_path)
        tree = self._tree(tmp_path)
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro-lint.allow]\nDET001 = [\"tree\"]\n"
        )
        assert main(["lint", str(tree), "--config", str(pyproject)]) == 0
        capsys.readouterr()


class TestApiFacade:
    def test_api_lint_runs_and_reports(self, tmp_path):
        from repro import api

        bad, _line, _good = FIXTURES["DET002"]
        (tmp_path / "mod.py").write_text(bad)
        report = api.lint(
            [tmp_path], config=LintConfig(root=tmp_path), rules=["DET002"]
        )
        assert isinstance(report, LintReport)
        assert report.counts() == {"DET002": 1}

    def test_api_exports_lint(self):
        from repro import api

        assert "lint" in api.__all__
        assert "LintReport" in api.__all__


class TestSelfLint:
    """The repo must honour its own contract (the CI gate condition)."""

    def test_src_and_benchmarks_clean_under_full_rule_set(self):
        config = load_config(start=REPO_ROOT)
        assert config.root == REPO_ROOT  # the repo's own pyproject governs
        report = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"], config=config
        )
        assert report.ok, "\n" + report.render_text()
        # the allowlists are load-bearing: the carve-outs they cover exist
        assert report.allowed > 0

    def test_repo_allowlists_name_real_files(self):
        config = load_config(start=REPO_ROOT)
        for rule_id, patterns in config.allow.items():
            get_rule(rule_id)  # every allowlisted id is a registered rule
            for pattern in patterns:
                if any(ch in pattern for ch in "*?["):
                    continue
                assert (REPO_ROOT / pattern).exists(), (
                    f"[tool.repro-lint] allow.{rule_id} names a missing "
                    f"path: {pattern}"
                )

    def test_sorted_violation_dataclass_ordering(self):
        a = Violation("a.py", 1, 0, "DET001", "m")
        b = Violation("a.py", 1, 0, "DET002", "m")
        c = Violation("b.py", 1, 0, "DET001", "m")
        assert sorted([c, b, a]) == [a, b, c]
