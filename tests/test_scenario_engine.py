"""Tests for the composable perturbation-scenario engine.

Covers the four new availability-process families (regional outage, churn
wave, join storm, adversarial removal), their composition through
``ScenarioTimeline``, the interval-based rejoin model, the scenario
catalogue, seed validation, and the registered ``ext_*`` experiments —
including the integration property the issue pins: composed flapping +
regional-outage lookups degrade monotonically with outage severity.
"""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.experiments import run_experiment
from repro.experiments.ext_outage import run as run_outage
from repro.overlay.transit_stub import TransitStubUnderlay
from repro.pastry.config import PastryConfig
from repro.pastry.rejoin import IntervalRejoinAvailability
from repro.perturbation import (
    AdversarialRemoval,
    AdversarialRemovalConfig,
    ChurnWaveConfig,
    ChurnWaveSchedule,
    FlappingConfig,
    FlappingSchedule,
    JoinStormConfig,
    JoinStormSchedule,
    PerturbationScenario,
    RegionalOutage,
    RegionalOutageConfig,
    ScenarioTimeline,
    get_family,
    regions_from_attachment,
    scenario_families,
)
from repro.sim.rng import validate_seed


class TestSeedValidation:
    def test_int_and_composite_roots_accepted(self):
        assert validate_seed(3) == 3
        assert validate_seed((0, "flap", "30:30", 0.5)) == (0, "flap", "30:30", 0.5)
        assert validate_seed(((1, "outer"), "inner")) == ((1, "outer"), "inner")

    @pytest.mark.parametrize("bad", ["0", True, False, 0.0, None, ()])
    def test_aliasing_roots_rejected(self, bad):
        with pytest.raises(ConfigurationError):
            validate_seed(bad)

    @pytest.mark.parametrize("bad", ["0", True, 1.5])
    def test_schedules_reject_bad_seeds(self, bad):
        config = FlappingConfig(30.0, 30.0, 0.5)
        with pytest.raises(ConfigurationError):
            FlappingSchedule(config, 4, seed=bad)

    @pytest.mark.parametrize("bad", ["0", True, 1.5])
    def test_scenario_schedule_requires_int(self, bad):
        scenario = PerturbationScenario("30:30", 0.5)
        with pytest.raises(ConfigurationError):
            scenario.schedule(10, seed=bad)

    def test_scenario_schedule_accepts_int(self):
        schedule = PerturbationScenario("30:30", 0.5).schedule(10, seed=3)
        assert schedule.num_nodes == 10


class TestRegionalOutage:
    REGIONS = [0, 0, 0, 1, 1, 1, 2, 2, 2]

    def make(self, severity=1.0, **kwargs):
        config = RegionalOutageConfig(start=100.0, duration=50.0, severity=severity)
        return RegionalOutage(self.REGIONS, config, seed=1, **kwargs)

    def test_full_severity_darkens_everyone_in_window(self):
        outage = self.make(severity=1.0)
        for node in range(len(self.REGIONS)):
            assert outage.is_online(node, 99.0)
            assert not outage.is_online(node, 100.0)
            assert not outage.is_online(node, 149.0)
            assert outage.is_online(node, 150.0)

    def test_partial_severity_hits_whole_regions(self):
        outage = self.make(severity=0.5)
        # round(0.5 * 3) = 2 regions dark; membership is region-wide
        assert len(outage.regions_down) == 2
        for node in range(len(self.REGIONS)):
            expected = self.REGIONS[node] in outage.regions_down
            assert outage.affects(node) == expected
            assert outage.is_online(node, 120.0) == (not expected)

    def test_zero_severity_no_outage(self):
        outage = self.make(severity=0.0)
        assert outage.regions_down == frozenset()
        assert all(outage.is_online(n, 120.0) for n in range(len(self.REGIONS)))

    def test_exempt_node_stays_online(self):
        outage = self.make(severity=1.0, always_online={0})
        assert outage.is_online(0, 120.0)
        assert outage.offline_intervals(0, 1000.0) == []

    def test_severity_sweeps_are_nested(self):
        """Raising the severity only adds regions (prefix of one permuted
        order), which is what makes success-vs-severity curves monotone by
        construction."""
        regions = [node % 5 for node in range(25)]
        for seed in (0, 1, 2):
            down_sets = []
            for severity in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
                config = RegionalOutageConfig(start=10.0, duration=5.0, severity=severity)
                down_sets.append(RegionalOutage(regions, config, seed=seed).regions_down)
            for smaller, larger in zip(down_sets, down_sets[1:]):
                assert smaller <= larger
            assert down_sets[0] == frozenset()
            assert down_sets[-1] == frozenset(range(5))

    def test_explicit_regions_down(self):
        config = RegionalOutageConfig(start=10.0, duration=5.0, severity=0.0)
        outage = RegionalOutage(self.REGIONS, config, regions_down={2})
        assert not outage.is_online(8, 12.0)
        assert outage.is_online(0, 12.0)

    def test_single_region_rejected(self):
        config = RegionalOutageConfig(start=0.0, duration=1.0, severity=0.5)
        with pytest.raises(ConfigurationError, match="domain structure"):
            RegionalOutage([0, 0, 0], config)

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            RegionalOutageConfig(start=-1.0, duration=1.0, severity=0.5)
        with pytest.raises(ConfigurationError):
            RegionalOutageConfig(start=0.0, duration=0.0, severity=0.5)
        with pytest.raises(ConfigurationError):
            RegionalOutageConfig(start=0.0, duration=1.0, severity=1.5)

    def test_regions_from_transit_stub_attachment(self):
        underlay = TransitStubUnderlay.for_size(80, seed=0)
        attachment = underlay.random_attachment(40, seed=0)
        regions = regions_from_attachment(underlay, attachment)
        assert len(regions) == 40
        assert set(regions) <= set(range(underlay.num_transit_domains))
        assert len(set(regions)) >= 2

    def test_domainless_underlay_rejected(self):
        class Flat:
            pass

        with pytest.raises(ConfigurationError, match="domain structure"):
            regions_from_attachment(Flat(), [0, 1, 2])


class TestChurnWave:
    def test_intensity_one_matches_base_rates(self):
        config = ChurnWaveConfig(300.0, 300.0, 600.0, 150.0, 1.0)
        assert config.rate_multiplier(0.0) == 1.0
        assert config.rate_multiplier(700.0) == 1.0

    def test_intensity_one_degenerates_to_plain_churn(self):
        """Same seed, intensity 1: trajectories identical to ChurnSchedule."""
        from repro.perturbation import ChurnConfig, ChurnSchedule

        wave = ChurnWaveSchedule(
            ChurnWaveConfig(200.0, 100.0, 600.0, 150.0, 1.0), 12, seed=9
        )
        plain = ChurnSchedule(ChurnConfig(200.0, 100.0), 12, seed=9)
        for node in range(12):
            assert wave.offline_intervals(node, 5000.0) == plain.offline_intervals(
                node, 5000.0
            )

    def test_multiplier_profile(self):
        config = ChurnWaveConfig(300.0, 300.0, 600.0, 150.0, 4.0)
        assert config.rate_multiplier(10.0) == 4.0  # inside first wave
        assert config.rate_multiplier(150.0) == 1.0  # just after it
        assert config.rate_multiplier(610.0) == 4.0  # second wave
        assert config.rate_multiplier(-5.0) == 1.0

    def test_higher_intensity_means_more_flips(self):
        calm = ChurnWaveSchedule(
            ChurnWaveConfig(100.0, 100.0, 200.0, 100.0, 1.0), 40, seed=2
        )
        stormy = ChurnWaveSchedule(
            ChurnWaveConfig(100.0, 100.0, 200.0, 100.0, 16.0), 40, seed=2
        )
        horizon = 2000.0
        calm_flips = sum(
            len(calm.offline_intervals(node, horizon)) for node in range(40)
        )
        stormy_flips = sum(
            len(stormy.offline_intervals(node, horizon)) for node in range(40)
        )
        assert stormy_flips > calm_flips

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            ChurnWaveConfig(0.0, 300.0, 600.0, 150.0, 2.0)
        with pytest.raises(ConfigurationError):
            ChurnWaveConfig(300.0, 300.0, 600.0, 700.0, 2.0)  # duration > period
        with pytest.raises(ConfigurationError):
            ChurnWaveConfig(300.0, 300.0, 600.0, 150.0, 0.5)  # intensity < 1


class TestJoinStorm:
    def test_late_joiners_absent_then_present(self):
        storm = JoinStormSchedule(
            JoinStormConfig(arrival_time=100.0, late_fraction=0.5), 20, seed=3
        )
        assert len(storm.late_joiners) == 10
        for node in storm.late_joiners:
            assert not storm.is_online(node, 50.0)
            assert storm.is_online(node, 100.0)
            assert storm.offline_intervals(node, 200.0) == [(0.0, 100.0)]
        early = set(range(20)) - storm.late_joiners
        for node in early:
            assert storm.is_online(node, 50.0)
            assert storm.offline_intervals(node, 200.0) == []

    def test_stagger_spreads_arrivals(self):
        storm = JoinStormSchedule(
            JoinStormConfig(arrival_time=100.0, late_fraction=1.0, stagger=50.0),
            30,
            seed=4,
        )
        arrivals = {storm.arrival(node) for node in storm.late_joiners}
        assert len(arrivals) > 1
        assert all(100.0 <= a < 150.0 for a in arrivals)

    def test_exempt_nodes_never_late(self):
        storm = JoinStormSchedule(
            JoinStormConfig(arrival_time=100.0, late_fraction=1.0),
            10,
            seed=5,
            always_online={0, 1},
        )
        assert storm.late_joiners == frozenset(range(2, 10))

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            JoinStormConfig(arrival_time=0.0, late_fraction=0.5)
        with pytest.raises(ConfigurationError):
            JoinStormConfig(arrival_time=10.0, late_fraction=1.5)
        with pytest.raises(ConfigurationError):
            JoinStormConfig(arrival_time=10.0, late_fraction=0.5, stagger=-1.0)


class TestAdversarialRemoval:
    DEGREES = [5, 9, 1, 7, 3, 8, 2, 6, 0, 4]

    def test_degree_targeting_takes_the_hubs(self):
        removal = AdversarialRemoval(
            self.DEGREES, AdversarialRemovalConfig(fraction=0.3, start=10.0), seed=0
        )
        # highest degrees are 9 (node 1), 8 (node 5), 7 (node 3)
        assert removal.removed == frozenset({1, 3, 5})
        assert removal.is_online(1, 9.9)
        assert not removal.is_online(1, 10.0)
        assert not removal.is_online(1, 1e9)

    def test_ties_break_by_node_id(self):
        removal = AdversarialRemoval(
            [3, 3, 3, 3], AdversarialRemovalConfig(fraction=0.5), seed=0
        )
        assert removal.removed == frozenset({0, 1})

    def test_random_targeting_is_seeded(self):
        config = AdversarialRemovalConfig(fraction=0.4, targeting="random")
        a = AdversarialRemoval(self.DEGREES, config, seed=7)
        b = AdversarialRemoval(self.DEGREES, config, seed=7)
        c = AdversarialRemoval(self.DEGREES, config, seed=8)
        assert a.removed == b.removed
        assert len(a.removed) == 4
        assert a.removed != c.removed  # overwhelmingly likely across seeds

    def test_exempt_nodes_never_removed(self):
        removal = AdversarialRemoval(
            self.DEGREES,
            AdversarialRemovalConfig(fraction=1.0),
            seed=0,
            always_online={1},
        )
        assert 1 not in removal.removed
        assert removal.removed == frozenset(set(range(10)) - {1})

    def test_from_overlay_counts_in_edges_for_directed(self):
        from repro.overlay.graph import OverlayGraph

        # 0 -> 1, 2 -> 1: node 1 has out-degree 0 but total degree 2
        overlay = OverlayGraph([[1], [], [1]], directed=True)
        removal = AdversarialRemoval.from_overlay(
            overlay, AdversarialRemovalConfig(fraction=0.34), seed=0
        )
        assert removal.removed == frozenset({1})

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AdversarialRemovalConfig(fraction=-0.1)
        with pytest.raises(ConfigurationError):
            AdversarialRemovalConfig(fraction=0.5, targeting="psychic")


class TestScenarioTimeline:
    def test_conjunction_of_processes(self):
        flapping = FlappingSchedule(FlappingConfig(10.0, 10.0, 1.0), 6, seed=0)
        outage = RegionalOutage(
            [0, 0, 0, 1, 1, 1],
            RegionalOutageConfig(start=5.0, duration=10.0, severity=1.0),
            seed=0,
        )
        timeline = ScenarioTimeline([flapping, outage])
        assert timeline.num_nodes == 6
        for node in range(6):
            for t in (0.0, 7.0, 25.0, 60.0):
                assert timeline.is_online(node, t) == (
                    flapping.is_online(node, t) and outage.is_online(node, t)
                )

    def test_offline_intervals_union(self):
        outage_a = RegionalOutage(
            [0, 1],
            RegionalOutageConfig(start=10.0, duration=10.0, severity=1.0),
            seed=0,
        )
        outage_b = RegionalOutage(
            [0, 1],
            RegionalOutageConfig(start=15.0, duration=10.0, severity=1.0),
            seed=0,
        )
        timeline = ScenarioTimeline([outage_a, outage_b])
        assert timeline.offline_intervals(0, 100.0) == [(10.0, 25.0)]

    def test_always_online_is_intersection(self):
        storm = JoinStormSchedule(
            JoinStormConfig(100.0, 1.0), 4, seed=0, always_online={0, 1}
        )
        outage = RegionalOutage(
            [0, 0, 1, 1],
            RegionalOutageConfig(start=0.0, duration=1.0, severity=1.0),
            seed=0,
            always_online={1, 2},
        )
        timeline = ScenarioTimeline([storm, outage])
        assert timeline.always_online == frozenset({1})

    def test_mismatched_sizes_rejected(self):
        a = JoinStormSchedule(JoinStormConfig(10.0, 0.5), 4, seed=0)
        b = JoinStormSchedule(JoinStormConfig(10.0, 0.5), 5, seed=0)
        with pytest.raises(ConfigurationError):
            ScenarioTimeline([a, b])

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ScenarioTimeline([])

    def test_timelines_nest(self):
        a = JoinStormSchedule(JoinStormConfig(10.0, 0.5), 4, seed=0)
        b = JoinStormSchedule(JoinStormConfig(20.0, 0.5), 4, seed=1)
        nested = ScenarioTimeline([ScenarioTimeline([a]), b])
        for node in range(4):
            assert nested.is_online(node, 15.0) == (
                a.is_online(node, 15.0) and b.is_online(node, 15.0)
            )


class TestIntervalRejoin:
    CONFIG = PastryConfig()

    def test_short_windows_need_no_rejoin(self):
        # 30s offline windows are under the ~69s detection horizon
        flapping = FlappingSchedule(FlappingConfig(30.0, 30.0, 1.0), 8, seed=0)
        adjusted = IntervalRejoinAvailability(flapping, self.CONFIG, seed=0)
        for node in range(8):
            for t in (10.0, 100.0, 500.0):
                assert adjusted.is_online(node, t) == flapping.is_online(node, t)

    def test_storm_arrivals_pay_rejoin_delay(self):
        storm = JoinStormSchedule(
            JoinStormConfig(arrival_time=500.0, late_fraction=0.5),
            20,
            seed=1,
            always_online={0},
        )
        # compose with flapping so some rejoin contacts are offline
        flapping = FlappingSchedule(
            FlappingConfig(30.0, 30.0, 0.5), 20, seed=1, always_online={0}
        )
        timeline = ScenarioTimeline([flapping, storm])
        adjusted = IntervalRejoinAvailability(timeline, self.CONFIG, seed=1)
        late = sorted(storm.late_joiners)
        # absent well before the storm either way
        assert not any(adjusted.is_online(node, 100.0) for node in late)
        # rejoin can only delay availability relative to ground truth,
        # and by the end of the simulation everyone who is up has rejoined
        delayed = 0
        for node in late:
            for t in (505.0, 600.0, 2000.0):
                raw = timeline.is_online(node, t)
                got = adjusted.is_online(node, t)
                assert (not raw) or got or t < 2000.0  # delay only, never early
                if raw and not got:
                    delayed += 1
        assert delayed > 0  # the storm actually thrashed some rejoins

    def test_permanent_removal_never_returns(self):
        removal = AdversarialRemoval(
            [3, 1, 2, 0], AdversarialRemovalConfig(fraction=0.5, start=100.0), seed=0
        )
        adjusted = IntervalRejoinAvailability(removal, self.CONFIG, seed=0)
        for node in removal.removed:
            assert adjusted.is_online(node, 50.0)
            assert not adjusted.is_online(node, 101.0)
            assert not adjusted.is_online(node, 1e6)


class TestScenarioCatalogue:
    def test_families_cover_the_engine(self):
        names = {family.name for family in scenario_families()}
        assert names == {
            "flapping",
            "churn",
            "regional-outage",
            "churn-wave",
            "join-storm",
            "adversarial-removal",
        }

    def test_every_family_has_a_registered_sweep(self):
        """The family -> experiment linkage lives in the registry metadata
        (spec.scenario_family), not in the catalogue: every family must be
        swept by at least one registered experiment, and every declared
        scenario_family must name a real catalogue entry."""
        from repro.experiments import list_experiments

        families = {family.name for family in scenario_families()}
        swept: set[str] = set()
        for spec in list_experiments():
            if spec.scenario_family is not None:
                assert spec.scenario_family in families, spec.experiment_id
                swept.add(spec.scenario_family)
        assert swept == families

    def test_unknown_family(self):
        with pytest.raises(ConfigurationError):
            get_family("meteor-strike")


class TestScenarioExperiments:
    NEW_IDS = ("ext-outage", "ext-wave", "ext-joinstorm", "ext-adversarial")

    @pytest.mark.parametrize("experiment_id", NEW_IDS)
    def test_runs_at_smoke_scale(self, experiment_id):
        result = run_experiment(experiment_id, scale="smoke", seed=0)
        assert result.rows
        assert result.key_columns
        key_indices = [result.columns.index(c) for c in result.key_columns]
        for row in result.rows:
            assert len(row) == len(result.columns)
            for i, cell in enumerate(row):
                if i not in key_indices and isinstance(cell, (int, float)):
                    assert 0.0 <= cell <= 100.0

    def test_listed_by_cli(self, capsys):
        from repro.experiments.cli import main

        assert main(["list"]) == 0
        output = capsys.readouterr().out
        for experiment_id in self.NEW_IDS:
            assert experiment_id in output

    @pytest.mark.parametrize("seed", [0, 1])
    def test_outage_success_degrades_monotonically(self, seed):
        """The issue's integration property: composed flapping + regional
        outage lookup success is non-increasing in outage severity, for
        every protocol variant."""
        result = run_outage(scale="smoke", seed=seed)
        severities = result.column("outage_severity")
        assert severities == sorted(severities)
        for column in ("MSPastry", "MPIL with DS", "MPIL without DS"):
            rates = result.column(column)
            assert all(
                later <= earlier for earlier, later in zip(rates, rates[1:])
            ), (column, rates)

    def test_outage_requires_domain_structure(self, monkeypatch):
        """ext-outage on a single-region underlay fails with a
        ConfigurationError, not a traceback."""
        single = TransitStubUnderlay.for_size(12, seed=0)  # 1 transit domain
        monkeypatch.setattr(
            TransitStubUnderlay, "for_size", classmethod(lambda cls, n, seed=0: single)
        )
        with pytest.raises(ConfigurationError, match="domain structure"):
            run_outage(scale="smoke", seed=0)

    def test_joinstorm_pre_storm_success_drops_with_fraction(self):
        result = run_experiment("ext-joinstorm", scale="smoke", seed=0)
        pre = result.filtered(phase="pre")
        fractions = [row[0] for row in pre]
        assert fractions == sorted(fractions)
        nods = result.columns.index("MPIL without DS")
        rates = [row[nods] for row in pre]
        assert all(later <= earlier for earlier, later in zip(rates, rates[1:]))

    def test_adversarial_zero_fraction_is_a_clean_baseline(self):
        result = run_experiment("ext-adversarial", scale="smoke", seed=0)
        baseline = result.filtered(removed_fraction=0.0)[0]
        # nothing removed: targeted and random arms are the same network,
        # and success is at the static overlay's (near-perfect) level
        assert baseline[1:4] == baseline[4:7]
        assert all(rate >= 90.0 for rate in baseline[1:])
