"""Tests for the scale ladder: grouped Scale sub-specs, the rung
registry, run budgets, the SoA node-array core, bulk availability
bitmaps, and the multi-rung perf plumbing."""

from __future__ import annotations

import dataclasses
import json

import pytest

from repro import api
from repro.core.identifiers import IdSpace
from repro.core.metric import (
    CommonDigitsMetric,
    NeighborMetricTable,
    PrefixLengthMetric,
    SuffixLengthMetric,
)
from repro.core.soa import NodeArrays, pack_digit_matrix
from repro.errors import ExperimentError
from repro.experiments.cli import main
from repro.experiments.compose import compose_spec
from repro.experiments.registry import run_experiment
from repro.experiments.scales import (
    BudgetSpec,
    Scale,
    ServiceSpec,
    available_scales,
    get_scale,
    register_scale,
    unregister_scale,
)
from repro.overlay.random_graphs import fixed_degree_random_graph
from repro.pastry import state as pastry_state
from repro.perf.profiler import BenchResult, profile_experiment
from repro.perf.regression import check_budgets
from repro.perturbation.adversarial import AdversarialRemoval, AdversarialRemovalConfig
from repro.perturbation.churn import ChurnConfig, ChurnSchedule
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.outage import RegionalOutage, RegionalOutageConfig
from repro.perturbation.storms import JoinStormConfig, JoinStormSchedule
from repro.perturbation.timeline import ScenarioTimeline
from repro.perturbation.waves import ChurnWaveConfig, ChurnWaveSchedule
from repro.sim.latency import UniformRandomLatency
from repro.sim.rng import derive_rng

SMOKE = get_scale("smoke")


@pytest.fixture
def scratch_rungs():
    """Unregister any rung a test registers, even on failure."""
    registered: list[str] = []
    yield registered
    for name in registered:
        try:
            unregister_scale(name)
        except ExperimentError:
            pass


# ---------------------------------------------------------------------------
# Scale: grouped sub-specs with the flat legacy spelling
# ---------------------------------------------------------------------------


class TestScaleStructure:
    def test_flat_and_grouped_constructions_are_equal(self):
        flat = Scale(
            name="x",
            static_node_counts=(120,),
            static_graphs=1,
            static_ops=4,
            analysis_node_counts=(1000,),
            analysis_degrees=(10,),
            complete_node_counts=(1000,),
            pastry_nodes=50,
            perturbed_inserts=5,
            perturbed_lookups=5,
            flap_probabilities=(0.5,),
        )
        grouped = Scale(
            name="x",
            static=flat.static,
            analysis=flat.analysis,
            perturb=flat.perturb,
            service=flat.service,
            budget=flat.budget,
        )
        assert flat == grouped

    def test_every_flat_passthrough_reads_its_subspec(self):
        smoke = SMOKE
        assert smoke.static_node_counts == smoke.static.node_counts
        assert smoke.static_graphs == smoke.static.graphs
        assert smoke.static_ops == smoke.static.ops
        assert smoke.analysis_node_counts == smoke.analysis.node_counts
        assert smoke.analysis_degrees == smoke.analysis.degrees
        assert smoke.complete_node_counts == smoke.analysis.complete_node_counts
        assert smoke.pastry_nodes == smoke.perturb.pastry_nodes
        assert smoke.perturbed_inserts == smoke.perturb.inserts
        assert smoke.perturbed_lookups == smoke.perturb.lookups
        assert smoke.flap_probabilities == smoke.perturb.flap_probabilities
        assert smoke.outage_severities == smoke.perturb.outage_severities
        assert smoke.wave_intensities == smoke.perturb.wave_intensities
        assert smoke.storm_fractions == smoke.perturb.storm_fractions
        assert smoke.removal_fractions == smoke.perturb.removal_fractions
        assert smoke.service_duration == smoke.service.duration
        assert smoke.service_rate == smoke.service.rate
        assert smoke.service_window == smoke.service.window
        assert smoke.service_loads == smoke.service.loads

    def test_mixing_subspec_and_flat_field_rejected(self):
        with pytest.raises(TypeError, match="both"):
            Scale(name="x", service=ServiceSpec(), service_rate=2.0)

    def test_unknown_flat_field_rejected(self):
        with pytest.raises(TypeError, match="unexpected keyword"):
            Scale(name="x", warp_factor=9)

    def test_evolve_flat_field(self):
        evolved = SMOKE.evolve(pastry_nodes=123)
        assert evolved.pastry_nodes == 123
        assert evolved.name == "smoke"
        assert evolved.static == SMOKE.static
        assert evolved.service == SMOKE.service

    def test_evolve_whole_subspec_and_name(self):
        budget = BudgetSpec(max_wall_s=60.0)
        evolved = SMOKE.evolve(name="capped", budget=budget)
        assert evolved.name == "capped"
        assert evolved.budget is budget
        assert evolved.perturb == SMOKE.perturb

    def test_evolve_unknown_field_is_one_line_error(self):
        with pytest.raises(ExperimentError, match="unknown scale field") as info:
            SMOKE.evolve(warp_factor=9)
        assert "\n" not in str(info.value)

    def test_budget_validation(self):
        assert BudgetSpec().unlimited
        assert not BudgetSpec(max_wall_s=1.0).unlimited
        with pytest.raises(ExperimentError, match="positive"):
            BudgetSpec(max_wall_s=-1.0)
        with pytest.raises(ExperimentError, match="positive"):
            BudgetSpec(max_rss_mb=0)


# ---------------------------------------------------------------------------
# The ladder rungs and the runtime registry
# ---------------------------------------------------------------------------


class TestScaleRegistry:
    def test_ladder_rungs_are_builtin_and_budgeted(self):
        large = get_scale("large")
        assert large.static_node_counts == (100_000,)
        assert large.budget.max_wall_s is not None
        assert large.budget.max_rss_mb is not None
        massive = get_scale("massive")
        assert massive.static_node_counts == (1_000_000,)
        assert not massive.budget.unlimited
        # smoke..paper stay unbudgeted (the historical behaviour)
        for name in ("smoke", "default", "paper"):
            assert get_scale(name).budget.unlimited

    def test_unknown_rung_error_lists_available(self):
        with pytest.raises(ExperimentError, match="large") as info:
            get_scale("gigantic")
        message = str(info.value)
        assert "\n" not in message
        assert "massive" in message and "smoke" in message

    def test_register_resolve_unregister(self, scratch_rungs):
        rung = SMOKE.evolve(name="ladder-test-rung", pastry_nodes=60)
        register_scale(rung)
        scratch_rungs.append("ladder-test-rung")
        assert get_scale("ladder-test-rung") is rung
        assert "ladder-test-rung" in available_scales()
        unregister_scale("ladder-test-rung")
        assert "ladder-test-rung" not in available_scales()
        with pytest.raises(ExperimentError, match="unknown scale"):
            get_scale("ladder-test-rung")

    def test_builtin_names_are_immutable(self):
        with pytest.raises(ExperimentError, match="built-in"):
            register_scale(SMOKE.evolve(pastry_nodes=1))
        with pytest.raises(ExperimentError, match="built-in"):
            unregister_scale("smoke")

    def test_duplicate_registration_needs_replace(self, scratch_rungs):
        first = SMOKE.evolve(name="ladder-dup")
        register_scale(first)
        scratch_rungs.append("ladder-dup")
        with pytest.raises(ExperimentError, match="replace=True"):
            register_scale(SMOKE.evolve(name="ladder-dup"))
        second = SMOKE.evolve(name="ladder-dup", pastry_nodes=77)
        register_scale(second, replace=True)
        assert get_scale("ladder-dup").pastry_nodes == 77

    def test_api_facade(self, scratch_rungs):
        names = [scale.name for scale in api.scales()]
        assert names == sorted(names)
        assert {"smoke", "default", "paper", "large", "massive"} <= set(names)
        assert api.get_scale("large").name == "large"
        rung = api.get_scale("smoke").evolve(name="ladder-api-rung")
        api.register_scale(rung)
        scratch_rungs.append("ladder-api-rung")
        assert any(scale.name == "ladder-api-rung" for scale in api.scales())
        api.unregister_scale("ladder-api-rung")


# ---------------------------------------------------------------------------
# Budget enforcement
# ---------------------------------------------------------------------------


class TestBudgetEnforcement:
    def test_wall_clock_budget_aborts_with_one_line_error(self):
        capped = SMOKE.evolve(name="tiny-wall", max_wall_s=1e-9)
        with pytest.raises(ExperimentError, match="wall-clock budget") as info:
            run_experiment("fig7", scale=capped, seed=0)
        assert "\n" not in str(info.value)
        assert "tiny-wall" in str(info.value)

    def test_rss_budget_aborts_with_one_line_error(self):
        from repro.experiments.budget import current_rss_mb

        if current_rss_mb() is None:
            pytest.skip("no procfs RSS on this platform")
        capped = SMOKE.evolve(name="tiny-rss", max_rss_mb=0.5)
        with pytest.raises(ExperimentError, match="memory budget") as info:
            run_experiment("fig7", scale=capped, seed=0)
        assert "\n" not in str(info.value)

    def test_generous_budget_does_not_interfere(self):
        roomy = SMOKE.evolve(name="roomy", max_wall_s=3600.0, max_rss_mb=1 << 20)
        result = run_experiment("fig7", scale=roomy, seed=0)
        assert result.rows
        assert result.scale == "roomy"

    def test_budget_abort_leaves_no_partial_artifacts(
        self, tmp_path, capsys, scratch_rungs
    ):
        register_scale(SMOKE.evolve(name="ladder-capped", max_wall_s=1e-9))
        scratch_rungs.append("ladder-capped")
        out = tmp_path / "results"
        code = main(
            ["run", "fig7", "--scale", "ladder-capped", "--out", str(out)]
        )
        assert code == 2
        assert "wall-clock budget" in capsys.readouterr().err
        leftovers = [p for p in out.rglob("*") if p.is_file()]
        assert leftovers == []


# ---------------------------------------------------------------------------
# Compose: the [scale] table
# ---------------------------------------------------------------------------


def _composed_source(scale_table):
    return {
        "experiment": {"id": "ladder-composed", "title": "scale table test"},
        "sweep": {"column": "probability", "values": [0.5]},
        "scenario": [
            {"family": "flapping", "period": "30:30", "probability": "$probability"}
        ],
        "scale": scale_table,
    }


class TestComposeScaleTable:
    def test_scale_table_overrides_invoked_rung(self):
        spec = compose_spec(
            _composed_source(
                {
                    "pastry_nodes": 60,
                    "perturbed_lookups": 10,
                    "budget": {"max_wall_s": 300.0},
                }
            )
        )
        evolved = spec.scale_transform(SMOKE)
        assert evolved.pastry_nodes == 60
        assert evolved.perturbed_lookups == 10
        assert evolved.budget.max_wall_s == 300.0
        # fields the table doesn't pin follow the invoked rung
        assert evolved.perturbed_inserts == SMOKE.perturbed_inserts
        result = spec.run(scale="smoke", seed=0)
        assert result.rows

    def test_scale_table_base_and_name(self):
        spec = compose_spec(
            _composed_source({"base": "default", "name": "composed-rung"})
        )
        evolved = spec.scale_transform(SMOKE)
        assert evolved.name == "composed-rung"
        assert evolved.pastry_nodes == get_scale("default").pastry_nodes

    def test_unknown_scale_field_fails_at_compose_time(self):
        with pytest.raises(ExperimentError, match="unknown scale field"):
            compose_spec(_composed_source({"warp_factor": 9}))

    def test_unknown_budget_key_fails_at_compose_time(self):
        with pytest.raises(ExperimentError, match=r"scale.budget"):
            compose_spec(_composed_source({"budget": {"max_quarks": 1}}))

    def test_unknown_base_rung_fails_at_compose_time(self):
        with pytest.raises(ExperimentError, match="unknown scale"):
            compose_spec(_composed_source({"base": "galactic"}))


# ---------------------------------------------------------------------------
# The struct-of-arrays core
# ---------------------------------------------------------------------------


def _arrays_fixture(n=30, degree=6, seed=3):
    overlay = fixed_degree_random_graph(n, degree=degree, seed=seed)
    space = IdSpace(bits=16, digit_bits=4)
    ids = space.random_unique_identifiers(n, derive_rng(seed, "ladder-soa-ids"))
    return overlay, ids


class TestNodeArrays:
    def test_digit_matrix_matches_identifier_digits(self):
        _overlay, ids = _arrays_fixture()
        matrix = pack_digit_matrix(ids)
        for row, identifier in zip(matrix, ids):
            assert bytes(row.tolist()) == identifier.digits

    def test_neighbors_and_rows_with_self(self):
        overlay, ids = _arrays_fixture()
        arrays = NodeArrays(overlay, ids)
        for node in range(overlay.n):
            assert arrays.neighbors(node).tolist() == sorted(overlay.neighbors(node))
            rows = arrays.rows_ws(node).tolist()
            assert rows[0] == node
            assert rows[1:] == sorted(overlay.neighbors(node))

    def test_refresh_alive_matches_point_queries(self):
        overlay, ids = _arrays_fixture()
        arrays = NodeArrays(overlay, ids)
        assert arrays.online_count() == overlay.n
        process = FlappingSchedule(
            FlappingConfig(30, 30, 0.7), overlay.n, seed=5
        )
        for time in (0.0, 31.0, 45.0, 200.0):
            mask = arrays.refresh_alive(process, time)
            expected = [process.is_online(node, time) for node in range(overlay.n)]
            assert mask.tolist() == expected
            assert arrays.online_count() == sum(expected)


class TestMetricTableParity:
    @pytest.mark.parametrize(
        "metric_cls", [CommonDigitsMetric, PrefixLengthMetric, SuffixLengthMetric]
    )
    def test_soa_scores_match_per_pair_reference(self, metric_cls):
        overlay, ids = _arrays_fixture(n=24, degree=5, seed=9)
        metric = metric_cls()
        table = NeighborMetricTable(overlay, ids, metric=metric)
        targets = IdSpace(bits=16, digit_bits=4).random_unique_identifiers(
            6, derive_rng(9, "ladder-targets")
        )
        for target in targets:
            for node in range(overlay.n):
                neighbors = sorted(overlay.neighbors(node))
                expected = [metric.score(target, ids[j]) for j in neighbors]
                assert table.scores(node, target).tolist() == expected
                assert table.scores_with_self(node, target) == [
                    metric.score(target, ids[node])
                ] + expected


class TestMultiBlockTableBuild:
    def _ring(self, n, seed):
        space = IdSpace(bits=16, digit_bits=4)
        ids = space.random_unique_identifiers(n, derive_rng(seed, "ladder-ring"))
        return pastry_state.PastryRing(ids)

    def test_blocked_build_is_block_size_invariant(self, monkeypatch):
        ring = self._ring(40, seed=11)
        expected = pastry_state.build_routing_tables(ring, seed=11)
        monkeypatch.setattr(pastry_state, "_BUILD_BLOCK_BYTES", 1)
        assert pastry_state.build_routing_tables(ring, seed=11) == expected

    def test_blocked_build_with_latency_is_block_size_invariant(self, monkeypatch):
        ring = self._ring(40, seed=12)
        latency = UniformRandomLatency(0.01, 0.09, seed=12)
        expected = pastry_state.build_routing_tables(ring, latency=latency, seed=12)
        monkeypatch.setattr(pastry_state, "_BUILD_BLOCK_BYTES", 1)
        assert (
            pastry_state.build_routing_tables(ring, latency=latency, seed=12)
            == expected
        )


# ---------------------------------------------------------------------------
# Bulk availability bitmaps
# ---------------------------------------------------------------------------


def _mask_processes(n=50, seed=7):
    regions = [node % 4 for node in range(n)]
    flapping = FlappingSchedule(FlappingConfig(30, 30, 0.6), n, seed=seed)
    return {
        "flapping": flapping,
        "churn": ChurnSchedule(ChurnConfig(120.0, 60.0), n, seed=seed),
        "wave": ChurnWaveSchedule(
            ChurnWaveConfig(120.0, 60.0, 600.0, 120.0, 4.0), n, seed=seed
        ),
        "storm": JoinStormSchedule(
            JoinStormConfig(90.0, 0.4, stagger=30.0), n, seed=seed
        ),
        "outage": RegionalOutage(
            regions, RegionalOutageConfig(60.0, 120.0, 0.5), seed=seed
        ),
        "adversarial": AdversarialRemoval(
            list(range(n)), AdversarialRemovalConfig(0.3, start=50.0), seed=seed
        ),
        "timeline": ScenarioTimeline(
            [
                FlappingSchedule(FlappingConfig(30, 30, 0.6), n, seed=seed),
                RegionalOutage(
                    regions, RegionalOutageConfig(60.0, 120.0, 0.5), seed=seed
                ),
            ]
        ),
    }


class TestOnlineMasks:
    @pytest.mark.parametrize("name", sorted(_mask_processes(n=4, seed=0)))
    def test_mask_matches_point_queries(self, name):
        n = 50
        process = _mask_processes(n=n, seed=7)[name]
        for time in (-1.0, 0.0, 45.0, 61.0, 95.0, 130.0, 700.0):
            mask = process.online_mask(time)
            expected = [process.is_online(node, time) for node in range(n)]
            assert mask.tolist() == expected, f"{name} diverges at t={time}"

    def test_mask_order_independent_of_point_queries(self):
        # resolving the bitmap first must not change later point queries
        # (lazy per-node RNG streams), and vice versa
        n = 40
        a = FlappingSchedule(FlappingConfig(30, 30, 0.6), n, seed=13)
        b = FlappingSchedule(FlappingConfig(30, 30, 0.6), n, seed=13)
        times = (45.0, 105.0, 165.0)
        masks_first = [a.online_mask(t).tolist() for t in times]
        points_first = [
            [b.is_online(node, t) for node in range(n)] for t in times
        ]
        assert masks_first == points_first
        assert [
            [a.is_online(node, t) for node in range(n)] for t in times
        ] == masks_first
        assert [b.online_mask(t).tolist() for t in times] == points_first

    def test_timeline_memoises_same_instant(self):
        processes = _mask_processes(n=30, seed=3)
        timeline = processes["timeline"]
        first = timeline.online_mask(61.0)
        assert timeline.online_mask(61.0) is first
        assert timeline.online_mask(62.0) is not first


# ---------------------------------------------------------------------------
# BENCH schema v2: budgets and peak RSS in the bench gate
# ---------------------------------------------------------------------------


class TestBenchBudgets:
    def test_profile_records_budget_and_rss(self):
        rung = SMOKE.evolve(
            name="smoke-budgeted", max_wall_s=3600.0, max_rss_mb=1 << 20
        )
        result = profile_experiment(
            "fig7", scale=rung, seed=0, repeats=1, with_profile=False
        )
        assert result.scale == "smoke-budgeted"
        assert result.budget_max_wall_s == 3600.0
        assert result.budget_max_rss_mb == float(1 << 20)
        assert result.peak_rss_mb is None or result.peak_rss_mb > 0
        assert check_budgets([result]) == []

    def test_check_budgets_flags_violations(self):
        rung = SMOKE.evolve(
            name="smoke-budgeted", max_wall_s=3600.0, max_rss_mb=1 << 20
        )
        result = profile_experiment(
            "fig7", scale=rung, seed=0, repeats=1, with_profile=False
        )
        slow = dataclasses.replace(result, wall_clock_mean=7200.0)
        fat = dataclasses.replace(result, peak_rss_mb=float(1 << 21))
        violations = check_budgets([slow, fat])
        resources = {v.resource for v in violations}
        assert resources == {"wall clock", "peak RSS"}
        for violation in violations:
            assert "\n" not in violation.describe()
            assert "smoke-budgeted" in violation.describe()

    def test_v1_bench_payload_still_loads(self):
        payload = {
            "experiment_id": "fig9",
            "scale": "smoke",
            "seed": 0,
            "repeats": 1,
            "warm": True,
            "wall_clock_best": 0.5,
            "wall_clock_mean": 0.5,
            "events_processed": 100,
            "events_per_sec": 200.0,
            "hotspots": [],
            "git_rev": "deadbeef",
            "schema_version": 1,
        }
        result = BenchResult.from_dict(json.loads(json.dumps(payload)))
        assert result.peak_rss_mb is None
        assert result.budget_max_wall_s is None
        assert check_budgets([result]) == []
