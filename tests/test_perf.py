"""Tests for the ``repro.perf`` subsystem and the hot-path rewrites.

Three concerns:

- the profiler: deterministic event counts across repeats, BENCH JSON
  schema round-trip, the CLI ``perf`` command and its regression gate;
- the regression module: baseline round-trip and the >tolerance rule;
- the optimisations themselves: the rewritten ``pastry_next_hop``,
  ``decide_forwarding``, and ``build_routing_tables`` are pinned against
  straightforward reference implementations (the pre-optimisation
  algorithms, kept verbatim here) on seeded random instances, and the new
  cached views (scores-with-self, degrees, CSR adjacency) are pinned
  against their unbatched counterparts.
"""

from __future__ import annotations

import json
import random

import numpy as np
import pytest

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.network import MPILNetwork
from repro.core.routing import decide_forwarding
from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.cli import main
from repro.experiments.runner import TaskOutcome
from repro.experiments.store import ResultStore
from repro.overlay.graph import OverlayGraph
from repro.overlay.random_graphs import gnp_random_graph
from repro.pastry.routing import pastry_next_hop
from repro.pastry.state import PastryRing, build_leaf_sets, build_routing_tables
from repro.perf.profiler import (
    SCHEMA_VERSION,
    BenchResult,
    HotSpot,
    bench_path,
    load_bench,
    profile_experiment,
    write_bench,
)
from repro.perf.regression import (
    BaselineEntry,
    check_regressions,
    load_baseline,
    write_baseline,
)
from repro.sim.latency import UniformRandomLatency
from repro.sim.rng import derive_rng
from repro.util.cache import BoundedCache, clear_all_caches


def make_bench(
    experiment_id: str = "fig9",
    events_per_sec: float = 1000.0,
    events_processed: int = 500,
) -> BenchResult:
    return BenchResult(
        experiment_id=experiment_id,
        scale="smoke",
        seed=0,
        repeats=3,
        warm=True,
        wall_clock_best=events_processed / events_per_sec,
        wall_clock_mean=events_processed / events_per_sec,
        events_processed=events_processed,
        events_per_sec=events_per_sec,
        hotspots=(
            HotSpot(
                location="repro/x.py:1(f)", calls=3, total_time=0.1, cumulative_time=0.2
            ),
        ),
        git_rev="deadbeef",
    )


class TestProfiler:
    def test_event_counts_deterministic_across_repeats_and_calls(self):
        first = profile_experiment(
            "fig9", scale="smoke", seed=0, repeats=2, with_profile=False
        )
        second = profile_experiment(
            "fig9", scale="smoke", seed=0, repeats=1, with_profile=False
        )
        assert first.events_processed == second.events_processed
        assert first.events_processed > 0
        assert first.events_per_sec > 0
        assert first.wall_clock_best <= first.wall_clock_mean

    def test_cold_mode_measures_same_events(self):
        warm = profile_experiment(
            "tab1", scale="smoke", seed=0, repeats=1, with_profile=False
        )
        cold = profile_experiment(
            "tab1", scale="smoke", seed=0, repeats=1, warm=False, with_profile=False
        )
        assert warm.events_processed == cold.events_processed
        assert cold.warm is False

    def test_profile_pass_collects_hotspots(self):
        result = profile_experiment(
            "tab1", scale="smoke", seed=0, repeats=1, top=5
        )
        assert 0 < len(result.hotspots) <= 5
        spot = result.hotspots[0]
        assert spot.calls >= 1
        assert ":" in spot.location
        # top-k is cumulative-time ordered
        cumulatives = [s.cumulative_time for s in result.hotspots]
        assert cumulatives == sorted(cumulatives, reverse=True)

    def test_validation_errors(self):
        with pytest.raises(ExperimentError):
            profile_experiment("no-such-experiment")
        with pytest.raises(ExperimentError):
            profile_experiment("fig9", scale="no-such-scale")
        with pytest.raises(ExperimentError):
            profile_experiment("fig9", repeats=0)
        with pytest.raises(ExperimentError):
            profile_experiment("fig9", top=-1)

    def test_bench_round_trip(self, tmp_path):
        result = make_bench()
        path = write_bench(result, tmp_path)
        assert path == bench_path(tmp_path, "fig9")
        assert path.name == "BENCH_fig9.json"
        assert load_bench(path) == result

    def test_bench_schema_version_guard(self, tmp_path):
        result = make_bench()
        path = write_bench(result, tmp_path)
        payload = json.loads(path.read_text())
        assert payload["schema_version"] == SCHEMA_VERSION
        payload["schema_version"] = SCHEMA_VERSION + 1
        path.write_text(json.dumps(payload))
        with pytest.raises(ExperimentError, match="schema version"):
            load_bench(path)

    def test_load_bench_missing_file(self, tmp_path):
        with pytest.raises(ExperimentError, match="no BENCH file"):
            load_bench(tmp_path / "BENCH_missing.json")

    def test_summary_is_one_line_with_throughput(self):
        summary = make_bench().summary()
        assert "\n" not in summary
        assert "events/s" in summary
        assert "fig9" in summary


class TestRegressionGate:
    def test_within_tolerance_passes(self):
        baseline = {"fig9": BaselineEntry(1000.0, 500, 0.5)}
        measured = [make_bench(events_per_sec=850.0)]  # -15% with 20% tolerance
        assert check_regressions(measured, baseline, tolerance=0.2) == []

    def test_regression_detected_and_described(self):
        baseline = {"fig9": BaselineEntry(1000.0, 400, 0.5)}
        measured = [make_bench(events_per_sec=700.0)]  # -30%
        found = check_regressions(measured, baseline, tolerance=0.2)
        assert len(found) == 1
        regression = found[0]
        assert regression.experiment_id == "fig9"
        assert regression.ratio == pytest.approx(0.7)
        assert regression.events_count_changed is True  # 500 != 400
        text = regression.describe()
        assert "fig9" in text and "30.0%" in text and "event count changed" in text

    def test_experiments_missing_from_baseline_are_skipped(self):
        baseline = {"other": BaselineEntry(1e9, 1, 1.0)}
        assert check_regressions([make_bench()], baseline) == []

    def test_baseline_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([make_bench(), make_bench("ext-outage", 2000.0)], path, "smoke")
        entries = load_baseline(path)
        assert set(entries) == {"fig9@smoke", "ext-outage@smoke"}
        assert entries["fig9@smoke"].events_per_sec == 1000.0
        assert entries["ext-outage@smoke"].events_processed == 500

    def test_baseline_errors(self, tmp_path):
        with pytest.raises(ExperimentError, match="no baseline"):
            load_baseline(tmp_path / "missing.json")
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"schema_version": 99, "entries": {}}))
        with pytest.raises(ExperimentError, match="schema version"):
            load_baseline(bad)
        with pytest.raises(ExperimentError, match="zero bench"):
            write_baseline([], tmp_path / "b.json", "smoke")
        with pytest.raises(ExperimentError, match="tolerance"):
            check_regressions([make_bench()], {}, tolerance=1.5)

    def test_committed_baseline_is_readable(self):
        entries = load_baseline("benchmarks/baseline.json")
        assert {"fig9@smoke", "ext-outage@smoke"} <= set(entries)


class TestPerfCLI:
    def test_perf_writes_bench_files(self, tmp_path, capsys):
        out = tmp_path / "bench"
        code = main(
            ["perf", "tab1", "--scale", "smoke", "--repeats", "1", "--top", "0",
             "--out", str(out)]
        )
        assert code == 0
        payload = json.loads((out / "BENCH_tab1.json").read_text())
        assert payload["experiment_id"] == "tab1"
        assert payload["events_per_sec"] > 0
        assert "events/s" in capsys.readouterr().out

    def test_perf_check_gates_and_write_baseline(self, tmp_path, capsys):
        out = tmp_path / "bench"
        baseline = tmp_path / "baseline.json"
        code = main(
            ["perf", "tab1", "--scale", "smoke", "--repeats", "1", "--top", "0",
             "--out", str(out), "--write-baseline", str(baseline)]
        )
        assert code == 0
        assert load_baseline(baseline)["tab1@smoke"].events_per_sec > 0
        # measured vs its own baseline: trivially within tolerance
        code = main(
            ["perf", "tab1", "--scale", "smoke", "--repeats", "2", "--top", "0",
             "--out", str(out), "--check", str(baseline), "--tolerance", "0.9"]
        )
        assert code == 0
        assert "no regressions" in capsys.readouterr().err
        # an absurdly fast baseline must trip the gate
        payload = json.loads(baseline.read_text())
        payload["entries"]["tab1@smoke"]["events_per_sec"] = 1e12
        baseline.write_text(json.dumps(payload))
        code = main(
            ["perf", "tab1", "--scale", "smoke", "--repeats", "1", "--top", "0",
             "--out", str(out), "--check", str(baseline)]
        )
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err

    def test_perf_unknown_experiment_is_one_line_error(self, capsys):
        code = main(["perf", "nope", "--scale", "smoke"])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_check_gates_against_old_floor_when_rewriting_same_file(
        self, tmp_path, capsys
    ):
        out = tmp_path / "bench"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "scale": "smoke",
                    "entries": {
                        "tab1": {
                            "events_per_sec": 1e12,  # unreachable old floor
                            "events_processed": 1,
                            "wall_clock_best": 1.0,
                        }
                    },
                }
            )
        )
        code = main(
            ["perf", "tab1", "--scale", "smoke", "--repeats", "1", "--top", "0",
             "--out", str(out), "--check", str(baseline),
             "--write-baseline", str(baseline)]
        )
        # the gate compared against the OLD floor (and failed), even though
        # the same file was refreshed afterwards
        assert code == 1
        assert "REGRESSION" in capsys.readouterr().err
        # the refreshed file is schema v2, keyed per rung
        assert load_baseline(baseline)["tab1@smoke"].events_per_sec < 1e12


# ---------------------------------------------------------------------------
# Reference implementations: the pre-optimisation algorithms, verbatim.
# ---------------------------------------------------------------------------


def reference_next_hop(node, key, ring, leaf_set, table, alive):
    ids = ring.ids
    node_value = ids[node].value
    key_value = key.value
    alive_leaves = [m for m in leaf_set if alive(m, "leafset")]
    if alive_leaves:
        offsets = [ring.signed_offset(node_value, ids[m].value) for m in alive_leaves]
        lo = min(min(offsets), 0)
        hi = max(max(offsets), 0)
        key_offset = ring.signed_offset(node_value, key_value)
        if lo <= key_offset <= hi:
            best_node = node
            best = (ring.circular_distance(node_value, key_value), node_value)
            for m in alive_leaves:
                rank = (ring.circular_distance(ids[m].value, key_value), ids[m].value)
                if rank < best:
                    best = rank
                    best_node = m
            if best_node == node:
                return ("deliver", node, "self")
            return ("forward", best_node, "leafset")
    elif not leaf_set:
        return ("deliver", node, "self")
    shared = ids[node].prefix_match_len(key)
    if shared < key.space.num_digits:
        entry = table.get((shared, key.digit(shared)))
        if entry is not None and alive(entry, "table"):
            return ("forward", entry, "table")
    own_distance = ring.circular_distance(node_value, key_value)
    best_candidate = None
    best_rank = None
    seen: set[int] = set()
    for kind, candidates in (("leafset", leaf_set), ("table", table.values())):
        for candidate in candidates:
            if candidate == node or candidate in seen:
                continue
            seen.add(candidate)
            if not alive(candidate, kind):
                continue
            prefix = ids[candidate].prefix_match_len(key)
            if prefix < shared:
                continue
            distance = ring.circular_distance(ids[candidate].value, key_value)
            if distance >= own_distance:
                continue
            rank = (-prefix, distance, ids[candidate].value)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_candidate = candidate
    if best_candidate is not None:
        return ("forward", best_candidate, "fallback")
    return ("deliver", node, "self")


def reference_routing_tables(ring, latency=None, seed: object = 0):
    ids = ring.ids
    n = ring.n
    rng = derive_rng(seed, "pastry-tables", n)
    base_order = list(range(n))
    tables = []
    for i in range(n):
        order = base_order
        if latency is None:
            order = base_order.copy()
            rng.shuffle(order)
        table: dict[tuple[int, int], int] = {}
        id_i = ids[i]
        for j in order:
            if j == i:
                continue
            id_j = ids[j]
            r = id_i.prefix_match_len(id_j)
            cell = (r, id_j.digit(r))
            current = table.get(cell)
            if current is None:
                table[cell] = j
            elif latency is not None and latency.latency(i, j) < latency.latency(i, current):
                table[cell] = j
        tables.append(table)
    return tables


def _random_ring(n: int, seed: int) -> PastryRing:
    space = IdSpace(bits=16, digit_bits=4)
    rng = derive_rng(seed, "perf-test-ids")
    return PastryRing(space.random_unique_identifiers(n, rng))


class TestOptimizedRoutingMatchesReference:
    """Regression pin: optimisation must never change a routing decision."""

    def test_next_hop_parity_on_fixed_seed(self):
        ring = _random_ring(24, seed=9)
        leaf_sets = build_leaf_sets(ring, 8)
        tables = build_routing_tables(ring, seed=9)
        rng = derive_rng(9, "perf-test-queries")
        space = ring.space
        for trial in range(120):
            node = rng.randrange(ring.n)
            key = space.random_identifier(rng)
            dead = set(rng.sample(range(ring.n), rng.randrange(0, ring.n // 2)))

            def alive(candidate: int, _kind: str) -> bool:
                return candidate not in dead

            expected = reference_next_hop(
                node, key, ring, leaf_sets[node], tables[node], alive
            )
            decision = pastry_next_hop(
                node, key, ring, leaf_sets[node], tables[node], alive
            )
            assert (decision.action, decision.node, decision.source) == expected

    def test_next_hop_all_alive_fast_path_matches_predicate(self):
        ring = _random_ring(17, seed=4)
        leaf_sets = build_leaf_sets(ring, 6)
        tables = build_routing_tables(ring, seed=4)
        rng = derive_rng(4, "perf-test-queries")
        for _ in range(60):
            node = rng.randrange(ring.n)
            key = ring.space.random_identifier(rng)
            via_none = pastry_next_hop(
                node, key, ring, leaf_sets[node], tables[node], None
            )
            via_predicate = pastry_next_hop(
                node, key, ring, leaf_sets[node], tables[node], lambda *_: True
            )
            assert via_none == via_predicate

    def test_routing_tables_parity_without_latency(self):
        ring = _random_ring(30, seed=5)
        assert build_routing_tables(ring, seed=5) == reference_routing_tables(
            ring, seed=5
        )

    def test_routing_tables_parity_with_latency(self):
        ring = _random_ring(30, seed=6)
        latency = UniformRandomLatency(0.01, 0.09, seed=6)
        assert build_routing_tables(
            ring, latency=latency, seed=6
        ) == reference_routing_tables(ring, latency=latency, seed=6)

    def test_prefix_len_memo_matches_identifier(self):
        ring = _random_ring(12, seed=7)
        rng = derive_rng(7, "keys")
        for _ in range(40):
            node = rng.randrange(ring.n)
            key = ring.space.random_identifier(rng)
            assert ring.prefix_len(node, key) == ring.ids[node].prefix_match_len(key)
            # second call hits the memo
            assert ring.prefix_len(node, key) == ring.ids[node].prefix_match_len(key)


class TestDecideForwardingParity:
    def test_list_and_array_inputs_agree(self):
        rng = derive_rng(11, "decide")
        for trial in range(80):
            n = rng.randrange(1, 12)
            neighbor_ids = rng.sample(range(100), n)
            neighbor_scores = [rng.randrange(0, 6) for _ in range(n)]
            excluded = set(rng.sample(neighbor_ids, rng.randrange(0, n)))
            kwargs = dict(
                self_score=rng.randrange(0, 6),
                excluded=excluded,
                max_flows=rng.randrange(0, 5),
                given_flows=rng.randrange(0, 2),
                tie_break=rng.choice(["random", "lowest-id"]),
                local_max_rule=rng.choice(["all-neighbors", "unvisited-only"]),
            )
            from_arrays = decide_forwarding(
                neighbor_ids=np.asarray(neighbor_ids, dtype=np.int64),
                neighbor_scores=np.asarray(neighbor_scores, dtype=np.int32),
                rng=random.Random(trial),
                **kwargs,
            )
            from_lists = decide_forwarding(
                neighbor_ids=tuple(neighbor_ids),
                neighbor_scores=list(neighbor_scores),
                rng=random.Random(trial),
                **kwargs,
            )
            assert from_arrays == from_lists
            assert all(isinstance(hop, int) for hop in from_arrays.next_hops)

    def test_negative_scores_still_select_a_candidate(self):
        # custom metrics may return negative scores; the single-pass rewrite
        # must not treat them as worse-than-no-candidate
        decision = decide_forwarding(
            self_score=-10,
            neighbor_ids=(1, 2, 3),
            neighbor_scores=[-5, -2, -7],
            excluded={3},
            max_flows=2,
            given_flows=0,
            rng=random.Random(0),
        )
        assert decision.best_candidate_score == -2
        assert decision.next_hops == (2,)
        assert decision.is_local_max is False


class TestCachedViews:
    def test_scores_with_self_matches_unbatched(self):
        overlay = gnp_random_graph(30, 0.2, seed=3)
        network = MPILNetwork(overlay, config=MPILConfig(), seed=3)
        table = network.metric_table
        rng = derive_rng(3, "targets")
        for _ in range(10):
            target = network.space.random_identifier(rng)
            for node in range(overlay.n):
                combined = table.scores_with_self(node, target)
                assert combined[0] == table.self_score(node, target)
                assert combined[1:] == table.scores(node, target).tolist()
                assert table.neighbor_list(node) == tuple(
                    int(v) for v in table.neighbor_array(node)
                )
                # memoised: the same list object comes back
                assert table.scores_with_self(node, target) is combined

    def test_graph_degree_views(self):
        overlay = gnp_random_graph(25, 0.15, seed=8)
        assert overlay.degrees == tuple(
            len(overlay.neighbors(u)) for u in range(overlay.n)
        )
        assert overlay.total_degrees == overlay.degrees  # undirected
        indptr, indices = overlay.adjacency_arrays()
        for u in range(overlay.n):
            assert tuple(indices[indptr[u]:indptr[u + 1]]) == overlay.neighbors(u)
        # cached: same arrays back
        assert overlay.adjacency_arrays()[0] is indptr

    def test_directed_total_degrees(self):
        overlay = OverlayGraph([(1,), (2,), (1,)], directed=True)
        # out: 1,1,1; in: node1 gets 2 (from 0 and 2), node2 gets 1
        assert overlay.total_degrees == (1, 3, 2)


class TestUnderlayLatencyRows:
    def test_row_matches_pairwise_and_validates_size(self):
        from repro.errors import ConfigurationError
        from repro.overlay.transit_stub import TransitStubUnderlay
        from repro.sim.latency import UnderlayLatency

        underlay = TransitStubUnderlay.for_size(60, seed=1)
        attachment = underlay.random_attachment(10, seed=2)
        model = UnderlayLatency(underlay, attachment)
        row = model.latency_row(3, 10)
        assert len(row) == 10
        for dst in range(10):
            if dst != 3:
                assert row[dst] == pytest.approx(model.latency(3, dst))
        with pytest.raises(ConfigurationError, match="attached"):
            model.latency_row(0, 11)


class TestBoundedCache:
    def test_lru_eviction_and_refresh(self):
        cache: BoundedCache[int] = BoundedCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a" to most-recent
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert len(cache) == 2

    def test_maxsize_validated(self):
        with pytest.raises(ConfigurationError):
            BoundedCache(maxsize=0)

    def test_clear_all_caches_empties_instances(self):
        cache: BoundedCache[int] = BoundedCache(maxsize=4)
        cache.put("x", 1)
        clear_all_caches()
        assert cache.get("x") is None

    def test_get_or_build_calls_factory_once(self):
        cache: BoundedCache[int] = BoundedCache(maxsize=4)
        calls = []

        def factory() -> int:
            calls.append(1)
            return 42

        assert cache.get_or_build("k", factory) == 42
        assert cache.get_or_build("k", factory) == 42
        assert len(calls) == 1


class TestEventsPerSecPlumbing:
    def test_manifest_records_events_per_sec(self, tmp_path):
        from repro.experiments.base import ExperimentResult

        store = ResultStore(tmp_path)
        result = ExperimentResult("fig0", "t", ("a",), [(1,)], scale="smoke")
        store.save(result, seed=0, wall_clock=2.0, events_processed=100)
        manifest = store.manifest("fig0", "smoke")
        assert manifest["runs"]["seed_0"]["events_per_sec"] == 50.0

    def test_untimed_save_records_zero(self, tmp_path):
        from repro.experiments.base import ExperimentResult

        store = ResultStore(tmp_path)
        result = ExperimentResult("fig0", "t", ("a",), [(1,)], scale="smoke")
        store.save(result, seed=1)
        assert store.manifest("fig0", "smoke")["runs"]["seed_1"]["events_per_sec"] == 0.0

    def test_task_outcome_events_per_sec(self):
        outcome = TaskOutcome("fig9", "smoke", 0, {}, wall_clock=2.0, events_processed=50)
        assert outcome.events_per_sec == 25.0
        zero = TaskOutcome("fig9", "smoke", 0, {}, wall_clock=0.0, events_processed=50)
        assert zero.events_per_sec == 0.0