"""Tests for the parallel sweep runner: seed parsing, spec validation,
determinism under reruns and worker pools, and seed tightening."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments import run_experiment
from repro.experiments.runner import (
    SweepSpec,
    parse_seeds,
    run_and_store,
    run_sweep,
)
from repro.experiments.store import ResultStore


def artifact_bytes(root):
    """Map of relative path -> bytes for every deterministic artifact."""
    return {
        str(path.relative_to(root)): path.read_bytes()
        for path in sorted(root.rglob("*.json")) + sorted(root.rglob("*.csv"))
        if path.name != "manifest.json"  # manifests hold volatile timestamps
    }


class TestParseSeeds:
    def test_single(self):
        assert parse_seeds("7") == (7,)

    def test_inclusive_range(self):
        assert parse_seeds("0..3") == (0, 1, 2, 3)

    def test_comma_list_sorted_deduped(self):
        assert parse_seeds("5,1,3,1") == (1, 3, 5)

    def test_negative_range(self):
        assert parse_seeds("-2..0") == (-2, -1, 0)

    @pytest.mark.parametrize("bad", ["", "a", "3..1", "1..b", "0.5"])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ExperimentError):
            parse_seeds(bad)


class TestSweepSpec:
    def test_tasks_cover_product_in_order(self):
        spec = SweepSpec(("fig7", "fig8"), seeds=(0, 1), scale="smoke")
        assert spec.tasks() == [
            ("fig7", "smoke", 0),
            ("fig7", "smoke", 1),
            ("fig8", "smoke", 0),
            ("fig8", "smoke", 1),
        ]

    def test_duplicates_collapsed(self):
        spec = SweepSpec(("fig7", "fig7"), seeds=(0, 0, 1), scale="smoke")
        assert spec.experiment_ids == ("fig7",)
        assert spec.seeds == (0, 1)

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ExperimentError, match="unknown experiment"):
            SweepSpec(("nope",), seeds=(0,), scale="smoke")

    def test_unknown_scale_rejected(self):
        with pytest.raises(ExperimentError, match="unknown scale"):
            SweepSpec(("fig7",), seeds=(0,), scale="galactic")

    def test_non_int_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed"):
            SweepSpec(("fig7",), seeds=(0, "1"), scale="smoke")
        with pytest.raises(ExperimentError, match="seed"):
            SweepSpec(("fig7",), seeds=(True,), scale="smoke")

    def test_empty_rejected(self):
        with pytest.raises(ExperimentError):
            SweepSpec((), seeds=(0,), scale="smoke")
        with pytest.raises(ExperimentError):
            SweepSpec(("fig7",), seeds=(), scale="smoke")


class TestRegistrySeedValidation:
    def test_string_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed must be an int"):
            run_experiment("fig7", scale="smoke", seed="0")

    def test_bool_seed_rejected(self):
        with pytest.raises(ExperimentError, match="seed must be an int"):
            run_experiment("fig7", scale="smoke", seed=True)


class TestRunSweep:
    SPEC = SweepSpec(("fig7",), seeds=(0, 1), scale="smoke")

    def test_report_outcomes_and_aggregate(self, tmp_path):
        store = ResultStore(tmp_path)
        report = run_sweep(self.SPEC, store, jobs=1)
        assert len(report.outcomes) == 2
        assert [o.seed for o in report.outcomes] == [0, 1]
        assert len(report.aggregates) == 1
        assert report.aggregates[0].experiment_id == "fig7"
        assert report.outcome("fig7", 1).seed == 1
        with pytest.raises(ExperimentError):
            report.outcome("fig7", 9)

    def test_sweep_matches_direct_run(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(self.SPEC, store, jobs=1)
        assert store.load("fig7", "smoke", 0) == run_experiment(
            "fig7", scale="smoke", seed=0
        )

    def test_rerun_is_byte_identical(self, tmp_path):
        first, second = ResultStore(tmp_path / "a"), ResultStore(tmp_path / "b")
        run_sweep(self.SPEC, first, jobs=1)
        run_sweep(self.SPEC, second, jobs=1)
        a, b = artifact_bytes(tmp_path / "a"), artifact_bytes(tmp_path / "b")
        assert a and a == b

    def test_parallel_matches_serial(self, tmp_path):
        serial, parallel = ResultStore(tmp_path / "s"), ResultStore(tmp_path / "p")
        run_sweep(self.SPEC, serial, jobs=1)
        run_sweep(self.SPEC, parallel, jobs=2)
        s, p = artifact_bytes(tmp_path / "s"), artifact_bytes(tmp_path / "p")
        assert s and s == p

    def test_progress_called_in_task_order(self, tmp_path):
        seen = []
        run_sweep(
            self.SPEC,
            ResultStore(tmp_path),
            jobs=1,
            progress=lambda outcome: seen.append((outcome.experiment_id, outcome.seed)),
        )
        assert seen == [("fig7", 0), ("fig7", 1)]

    def test_replicates_persisted_incrementally(self, tmp_path):
        # each artifact must already be on disk when its progress fires, so
        # an interrupted sweep keeps everything finished before the failure
        store = ResultStore(tmp_path)

        def check(outcome):
            assert store.seed_path(
                outcome.experiment_id, outcome.scale, outcome.seed
            ).exists()

        run_sweep(self.SPEC, store, jobs=2, progress=check)

    def test_bad_jobs_rejected(self, tmp_path):
        with pytest.raises(ExperimentError, match="jobs"):
            run_sweep(self.SPEC, ResultStore(tmp_path), jobs=0)

    def test_storeless_sweep_still_aggregates(self):
        report = run_sweep(self.SPEC, store=None, jobs=1)
        assert len(report.aggregates) == 1


class TestResume:
    SPEC = SweepSpec(("fig7",), seeds=(0, 1), scale="smoke")

    def test_resume_requires_store(self):
        with pytest.raises(ExperimentError, match="resume"):
            run_sweep(self.SPEC, store=None, resume=True)

    def test_resume_skips_done_without_rewriting_files(self, tmp_path):
        """The restart-from-zero bug: a resumed re-run must not recompute
        or rewrite verified-complete replicates."""
        store = ResultStore(tmp_path)
        run_sweep(self.SPEC, store, jobs=1)
        mtimes = {
            seed: store.seed_path("fig7", "smoke", seed).stat().st_mtime_ns
            for seed in (0, 1)
        }
        report = run_sweep(self.SPEC, store, jobs=1, resume=True)
        assert report.outcomes == []
        assert sorted(entry.seed for entry in report.skipped) == [0, 1]
        assert all(entry.checksum.startswith("sha256:") for entry in report.skipped)
        for seed in (0, 1):
            assert (
                store.seed_path("fig7", "smoke", seed).stat().st_mtime_ns
                == mtimes[seed]
            )
        # aggregates still cover the full (skipped) seed set
        assert len(report.aggregates) == 1
        assert "2 replicates" in report.aggregates[0].notes

    def test_resume_runs_only_missing_seeds(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(self.SPEC, store, jobs=1)
        wider = SweepSpec(("fig7",), seeds=(0, 1, 2, 3), scale="smoke")
        report = run_sweep(wider, store, jobs=1, resume=True)
        assert sorted(o.seed for o in report.outcomes) == [2, 3]
        assert sorted(entry.seed for entry in report.skipped) == [0, 1]
        assert store.seeds("fig7", "smoke") == [0, 1, 2, 3]

    def test_non_resume_rerun_recomputes(self, tmp_path):
        """Without --resume a sweep is a fresh run: everything re-executes
        (byte-identically) and the ledger attempts rewind to the new run."""
        store = ResultStore(tmp_path)
        run_sweep(self.SPEC, store, jobs=1)
        report = run_sweep(self.SPEC, store, jobs=1)
        assert sorted(o.seed for o in report.outcomes) == [0, 1]
        assert report.skipped == []
        rows = store.ledger.rows(experiment_id="fig7")
        assert [row.attempts for row in rows] == [1, 1]

    def test_bad_runtime_params_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(ExperimentError, match="max-retries"):
            run_sweep(self.SPEC, store, max_retries=-1)
        with pytest.raises(ExperimentError, match="task-timeout"):
            run_sweep(self.SPEC, store, task_timeout=0.0)
        with pytest.raises(ExperimentError, match="retry-backoff"):
            run_sweep(self.SPEC, store, retry_backoff=-0.5)

    def test_sweep_records_ledger_states(self, tmp_path):
        store = ResultStore(tmp_path)
        run_sweep(self.SPEC, store, jobs=2)
        rows = store.ledger.rows(experiment_id="fig7", scale="smoke")
        assert [(row.seed, row.state, row.attempts) for row in rows] == [
            (0, "done", 1),
            (1, "done", 1),
        ]
        assert all(
            row.checksum is not None and row.worker is not None for row in rows
        )


class TestRunAndStore:
    def test_persists_and_returns_result(self, tmp_path):
        store = ResultStore(tmp_path)
        result = run_and_store("fig7", "smoke", 4, store)
        assert store.load("fig7", "smoke", 4) == result
        manifest = store.manifest("fig7", "smoke")
        assert "seed_4" in manifest["runs"]
