"""Tests for the event-driven (timed) MPIL driver."""

from __future__ import annotations

import pytest

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.timed import TimedMPILNetwork
from repro.errors import RoutingError
from repro.overlay.random_graphs import fixed_degree_random_graph, ring_lattice_graph
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.sim.latency import ConstantLatency
from repro.sim.rng import derive_rng

SPACE = IdSpace(bits=16, digit_bits=4)


def _timed(overlay, seed=0, **config_kwargs):
    config = MPILConfig(**{"max_flows": 6, "per_flow_replicas": 3, **config_kwargs})
    return TimedMPILNetwork(
        overlay, space=SPACE, config=config, seed=seed, latency=ConstantLatency(0.05)
    )


class TestStaticEquivalence:
    def test_always_online_matches_static_success(self):
        overlay = fixed_degree_random_graph(50, degree=6, seed=1)
        timed = _timed(overlay, seed=1)
        rng = derive_rng(1, "keys")
        for _ in range(10):
            key = SPACE.random_identifier(rng)
            origin = rng.randrange(50)
            timed.insert_static(origin, key)
            static_result = timed.static.lookup(origin, key)
            timed_result = timed.lookup_at(origin, key, start_time=0.0)
            assert timed_result.success == static_result.success

    def test_latency_accumulates_per_hop(self):
        overlay = ring_lattice_graph(20, k=1)
        timed = _timed(overlay, seed=2)
        rng = derive_rng(2, "keys")
        key = SPACE.random_identifier(rng)
        timed.insert_static(0, key)
        result = timed.lookup_at(10, key, start_time=5.0)
        if result.success:
            # reply latency = (hops + 1 direct reply) * 0.05
            expected = (result.first_reply_hop + 1) * 0.05
            assert result.latency == pytest.approx(expected, abs=1e-9)
            assert result.first_reply_time == pytest.approx(5.0 + expected, abs=1e-9)


class TestPerturbedBehaviour:
    def _setup(self, p, seed=3, n=60):
        overlay = fixed_degree_random_graph(n, degree=8, seed=seed)
        timed = _timed(overlay, seed=seed, max_flows=8, per_flow_replicas=4)
        rng = derive_rng(seed, "keys")
        keys = [SPACE.random_identifier(rng) for _ in range(20)]
        for key in keys:
            timed.insert_static(rng.randrange(n), key)
        schedule = FlappingSchedule(
            FlappingConfig(30, 30, p), n, seed=seed + 1, always_online={0}
        )
        timed.availability = schedule
        return timed, keys

    def test_no_perturbation_full_success(self):
        timed, keys = self._setup(0.0)
        assert all(
            timed.lookup_at(0, key, start_time=100.0 + 60.0 * i).success
            for i, key in enumerate(keys)
        )

    def test_offline_losses_counted(self):
        timed, keys = self._setup(1.0)
        lost = sum(
            timed.lookup_at(0, key, start_time=100.0 + 60.0 * i).counters.lost_offline
            for i, key in enumerate(keys)
        )
        assert lost > 0

    def test_success_monotonically_degrades(self):
        rates = []
        for p in (0.0, 0.5, 1.0):
            timed, keys = self._setup(p)
            rates.append(
                sum(
                    timed.lookup_at(0, key, start_time=100.0 + 60.0 * i).success
                    for i, key in enumerate(keys)
                )
            )
        assert rates[0] >= rates[1] >= rates[2] or rates[0] > rates[2]

    def test_deadline_stops_propagation(self):
        timed, keys = self._setup(0.0)
        result = timed.lookup_at(0, keys[0], start_time=100.0, deadline=100.0)
        # nothing can be delivered in zero time except an origin-held replica
        if not timed.directory.has(0, keys[0]):
            assert not result.success

    def test_origin_validated(self):
        overlay = ring_lattice_graph(10, k=1)
        timed = _timed(overlay)
        with pytest.raises(RoutingError):
            timed.lookup_at(99, SPACE.identifier(0), start_time=0.0)

    def test_duplicate_suppression_override(self):
        timed, keys = self._setup(0.0, seed=5)
        a = timed.lookup_at(0, keys[0], start_time=0.0, duplicate_suppression=True)
        b = timed.lookup_at(0, keys[0], start_time=0.0, duplicate_suppression=False)
        assert b.counters.messages_sent >= a.counters.messages_sent


class TestStartLookup:
    """The shared-scheduler entry point behind the service drivers."""

    def _setup(self, seed=11, n=60):
        overlay = fixed_degree_random_graph(n, degree=8, seed=seed)
        timed = _timed(overlay, seed=seed, max_flows=8, per_flow_replicas=4)
        rng = derive_rng(seed, "keys")
        keys = [SPACE.random_identifier(rng) for _ in range(10)]
        for key in keys:
            timed.insert_static(rng.randrange(n), key)
        return timed, keys

    def test_matches_lookup_at_on_private_engine(self):
        timed, keys = self._setup()
        baseline = [timed.lookup_at(0, key, start_time=0.0) for key in keys]
        timed.request_counter = 0  # replay the same per-request RNG streams
        from repro.sim.engine import EventScheduler

        results = []
        for key, expected in zip(keys, baseline):
            engine = EventScheduler()
            pending = timed.start_lookup(engine, 0, key)
            engine.run()
            assert pending.done
            results.append(pending.result())
            assert pending.success == expected.success
            assert pending.first_reply_time == expected.first_reply_time
        assert [r.counters.messages_sent for r in results] == [
            b.counters.messages_sent for b in baseline
        ]

    def test_overlapping_lookups_share_one_engine(self):
        timed, keys = self._setup()
        from repro.sim.engine import EventScheduler

        engine = EventScheduler()
        completed = []
        handles = [
            timed.start_lookup(
                engine, 0, key, start_time=0.01 * i, on_complete=completed.append
            )
            for i, key in enumerate(keys)
        ]
        assert all(not h.done for h in handles)  # nothing runs until the engine does
        engine.run()
        assert all(h.done for h in handles)
        assert sorted(completed, key=id) == sorted(handles, key=id)
        assert any(h.success for h in handles)

    def test_start_time_cannot_precede_engine_clock(self):
        timed, keys = self._setup()
        from repro.errors import SimulationError
        from repro.sim.engine import EventScheduler

        engine = EventScheduler()
        engine.run_until(10.0)
        with pytest.raises(SimulationError):
            timed.start_lookup(engine, 0, keys[0], start_time=5.0)
            engine.run()

    def test_origin_validated(self):
        timed, keys = self._setup()
        from repro.sim.engine import EventScheduler

        with pytest.raises(RoutingError):
            timed.start_lookup(EventScheduler(), 99, keys[0])

    def test_request_counter_snapshot_restores_noise_stream(self):
        timed, keys = self._setup()
        first = timed.lookup_at(0, keys[0], start_time=0.0)
        timed.request_counter -= 1
        replay = timed.lookup_at(0, keys[0], start_time=0.0)
        assert replay == first
