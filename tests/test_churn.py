"""Tests for the continuous-time churn availability model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.perturbation.churn import ChurnConfig, ChurnSchedule


class TestChurnConfig:
    def test_offline_fraction(self):
        config = ChurnConfig(mean_session=300, mean_downtime=100)
        assert config.expected_offline_fraction == pytest.approx(0.25)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(mean_session=0, mean_downtime=10)
        with pytest.raises(ConfigurationError):
            ChurnConfig(mean_session=10, mean_downtime=-1)

    def test_label(self):
        assert "300" in ChurnConfig(300, 300).label


class TestChurnSchedule:
    def test_nodes_start_online(self):
        schedule = ChurnSchedule(ChurnConfig(100, 100), 10, seed=1)
        assert all(schedule.is_online(node, 0.0) for node in range(10))

    def test_deterministic_and_order_independent(self):
        config = ChurnConfig(60, 60)
        a = ChurnSchedule(config, 6, seed=2)
        b = ChurnSchedule(config, 6, seed=2)
        times = [3.0 + 17.0 * k for k in range(30)]
        forward = [[a.is_online(n, t) for t in times] for n in range(6)]
        backward = [[b.is_online(n, t) for t in reversed(times)] for n in range(6)]
        assert forward == [list(reversed(row)) for row in backward]

    def test_state_flips_at_boundaries(self):
        schedule = ChurnSchedule(ChurnConfig(50, 50), 3, seed=3)
        boundaries = schedule.session_boundaries(0, 1000.0)
        assert boundaries == sorted(boundaries)
        for i, boundary in enumerate(boundaries):
            before = schedule.is_online(0, boundary - 1e-6)
            after = schedule.is_online(0, boundary + 1e-6)
            assert before == (i % 2 == 0)
            assert after == (i % 2 == 1)

    def test_long_run_availability(self):
        config = ChurnConfig(mean_session=120, mean_downtime=40)  # 75% up
        schedule = ChurnSchedule(config, 200, seed=4)
        samples = [
            schedule.is_online(node, 50.0 + 37.0 * k)
            for node in range(200)
            for k in range(25)
        ]
        fraction = sum(samples) / len(samples)
        assert fraction == pytest.approx(
            1.0 - config.expected_offline_fraction, abs=0.05
        )

    def test_always_online_exemption(self):
        schedule = ChurnSchedule(ChurnConfig(1, 1000), 5, seed=5, always_online={2})
        assert all(schedule.is_online(2, t) for t in (0.0, 100.0, 10_000.0))

    def test_negative_time_online(self):
        schedule = ChurnSchedule(ChurnConfig(10, 10), 3, seed=6)
        assert schedule.is_online(0, -5.0)

    def test_num_nodes_validated(self):
        with pytest.raises(ConfigurationError):
            ChurnSchedule(ChurnConfig(10, 10), 0)

    def test_online_fraction_diagnostic(self):
        schedule = ChurnSchedule(ChurnConfig(10, 10), 50, seed=7)
        assert 0.0 <= schedule.online_fraction(123.0) <= 1.0

    def test_faster_churn_means_more_transitions(self):
        slow = ChurnSchedule(ChurnConfig(600, 600), 1, seed=8)
        fast = ChurnSchedule(ChurnConfig(30, 30), 1, seed=8)
        horizon = 10_000.0
        assert len(fast.session_boundaries(0, horizon)) > len(
            slow.session_boundaries(0, horizon)
        )
