"""Hypothesis property suite for ledger state transitions.

For *any* interleaving of claim / complete / fail / crash-reclaim /
reset-failed events over a small task set, the ledger must uphold the
runtime's invariants:

- no task is ever completed twice (``done`` is reached at most once and
  rejects every further event);
- attempt counters are monotone non-decreasing;
- terminal states are absorbing under executor events (``done`` forever,
  ``failed`` until an explicit resume reset);
- rejected transitions change nothing (the row is byte-identical);
- a resumed sweep plans exactly the non-``done`` task set, in canonical
  order, and leaves every planned task ``pending``.
"""

from __future__ import annotations

import pathlib

from hypothesis import given, strategies as st

from repro.errors import LedgerError
from repro.experiments.ledger import TaskLedger
from repro.experiments.runtime import plan_tasks

TASKS = [("exp-a", "smoke", 0), ("exp-a", "smoke", 1), ("exp-b", "smoke", 0)]

#: executor-driven events: (name, model precondition state, post state)
EVENTS = {
    "claim": ("pending", "running"),
    "complete": ("running", "done"),
    "fail": ("running", "failed"),
    "release": ("running", "pending"),  # crash/orphan reclaim
    "reset_failed": ("failed", "pending"),  # resume reopening a failure
}

event_lists = st.lists(
    st.tuples(st.sampled_from(sorted(EVENTS)), st.integers(0, len(TASKS) - 1)),
    max_size=40,
)


def _apply(ledger: TaskLedger, event: str, task) -> None:
    if event == "claim":
        ledger.claim(task, worker="property")
    elif event == "complete":
        ledger.complete(task, checksum="sha256:property")
    elif event == "fail":
        ledger.fail(task, error="property failure")
    elif event == "release":
        ledger.release(task, reason="property crash")
    else:
        ledger.reset_failed(task)


@given(events=event_lists)
def test_any_interleaving_upholds_invariants(events):
    with TaskLedger(pathlib.Path(":memory:")) as ledger:
        ledger.ensure(TASKS)
        state = {task: "pending" for task in TASKS}
        attempts = {task: 0 for task in TASKS}
        completions = {task: 0 for task in TASKS}

        for event, index in events:
            task = TASKS[index]
            before = ledger.row(task)
            allowed_from, to_state = EVENTS[event]
            legal = state[task] == allowed_from
            if legal:
                _apply(ledger, event, task)
                state[task] = to_state
                if event == "claim":
                    attempts[task] += 1
                if event == "complete":
                    completions[task] += 1
            else:
                try:
                    _apply(ledger, event, task)
                except LedgerError:
                    pass
                else:
                    raise AssertionError(
                        f"{event} on {state[task]!r} task {task} was accepted"
                    )
                # a rejected event must leave the row untouched
                assert ledger.row(task) == before

            row = ledger.row(task)
            # the ledger tracks the reference state machine exactly
            assert row.state == state[task]
            # attempts are monotone and only ever bumped by claims
            assert row.attempts == attempts[task]
            assert row.attempts >= before.attempts
            # no task is ever done twice
            assert completions[task] <= 1

        # terminal 'done' rows kept their first checksum through every
        # later (rejected) event
        for task in TASKS:
            if state[task] == "done":
                assert ledger.row(task).checksum == "sha256:property"


@given(events=event_lists)
def test_resume_plans_exactly_the_non_done_set(events):
    with TaskLedger(pathlib.Path(":memory:")) as ledger:
        ledger.ensure(TASKS)
        state = {task: "pending" for task in TASKS}
        for event, index in events:
            task = TASKS[index]
            allowed_from, to_state = EVENTS[event]
            if state[task] == allowed_from:
                _apply(ledger, event, task)
                state[task] = to_state

        to_run, skipped = plan_tasks(
            ledger, TASKS, resume=True, verify=lambda task, checksum: True
        )
        # exactly the non-done set, in canonical task order
        assert to_run == [task for task in TASKS if state[task] != "done"]
        assert [entry.task for entry in skipped] == [
            task for task in TASKS if state[task] == "done"
        ]
        # planning normalised every runnable task back to pending
        for task in to_run:
            assert ledger.row(task).state == "pending"
        for entry in skipped:
            assert ledger.row(entry.task).state == "done"


@given(events=event_lists)
def test_fresh_run_resets_everything(events):
    with TaskLedger(pathlib.Path(":memory:")) as ledger:
        ledger.ensure(TASKS)
        state = {task: "pending" for task in TASKS}
        for event, index in events:
            task = TASKS[index]
            allowed_from, to_state = EVENTS[event]
            if state[task] == allowed_from:
                _apply(ledger, event, task)
                state[task] = to_state

        to_run, skipped = plan_tasks(
            ledger, TASKS, resume=False, verify=lambda task, checksum: True
        )
        assert to_run == TASKS
        assert skipped == []
        for task in TASKS:
            row = ledger.row(task)
            assert (row.state, row.attempts) == ("pending", 0)
