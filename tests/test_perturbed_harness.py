"""Tests for the shared perturbation-experiment machinery."""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError
from repro.experiments.perturbed import (
    ALL_VARIANTS,
    MPIL_MAX_FLOWS,
    MPIL_PER_FLOW_REPLICAS,
    VARIANT_LABELS,
    build_testbed,
    run_cell,
)


@pytest.fixture(scope="module")
def testbed():
    return build_testbed(num_nodes=70, num_inserts=20, seed=0)


class TestTestbed:
    def test_stage1_state(self, testbed):
        assert len(testbed.objects_plain) == 20
        assert len(testbed.objects_rr) == 20
        assert len(testbed.objects_mpil) == 20
        for key in testbed.objects_plain:
            assert testbed.pastry.directory.replica_count(key) == 1
        for key in testbed.objects_rr:
            assert testbed.pastry.directory.replica_count(key) >= 1
        for key in testbed.objects_mpil:
            assert testbed.mpil.directory.replica_count(key) >= 1

    def test_mpil_parameters_match_paper(self):
        assert MPIL_MAX_FLOWS == 10
        assert MPIL_PER_FLOW_REPLICAS == 5

    def test_variant_labels(self):
        assert VARIANT_LABELS["pastry"] == "MSPastry"
        assert VARIANT_LABELS["mpil-nods"] == "MPIL without DS"


class TestRunCell:
    def test_all_variants_present(self, testbed):
        cells = run_cell(testbed, "30:30", 0.5, 10, variants=ALL_VARIANTS)
        assert [c.variant for c in cells] == list(ALL_VARIANTS)
        for cell in cells:
            assert cell.lookups == 10
            assert 0.0 <= cell.success_rate <= 100.0
            assert cell.duration == 10 * 60.0

    def test_unknown_variant_rejected(self, testbed):
        with pytest.raises(ExperimentError):
            run_cell(testbed, "30:30", 0.5, 5, variants=("chord",))

    def test_zero_probability_near_perfect(self, testbed):
        cells = run_cell(testbed, "30:30", 0.0, 15, variants=ALL_VARIANTS)
        for cell in cells:
            assert cell.success_rate >= 85.0

    def test_maintenance_traffic_only_for_pastry(self, testbed):
        cells = run_cell(testbed, "30:30", 0.5, 8, variants=ALL_VARIANTS)
        by_variant = {c.variant: c for c in cells}
        assert by_variant["pastry"].maintenance_messages > 0
        assert by_variant["mpil-ds"].maintenance_messages == 0
        assert by_variant["mpil-nods"].maintenance_messages == 0

    def test_pastry_total_includes_maintenance(self, testbed):
        cells = run_cell(testbed, "30:30", 0.5, 8, variants=("pastry",))
        cell = cells[0]
        assert cell.total_messages >= cell.maintenance_messages
        assert cell.total_messages >= cell.lookup_messages

    def test_heavy_perturbation_hurts_pastry_more_than_mpil_at_300(self, testbed):
        cells = run_cell(testbed, "300:300", 1.0, 25, variants=("pastry", "mpil-nods"))
        by_variant = {c.variant: c for c in cells}
        assert (
            by_variant["mpil-nods"].success_rate
            >= by_variant["pastry"].success_rate
        )

    def test_determinism(self, testbed):
        a = run_cell(testbed, "30:30", 0.7, 8, variants=("pastry",))
        b = run_cell(testbed, "30:30", 0.7, 8, variants=("pastry",))
        assert a[0].success_rate == b[0].success_rate
        assert a[0].lookup_messages == b[0].lookup_messages
