"""The paper's Figure 6 worked example, reproduced node by node.

Node 0001 inserts object 1011 with max_flows=2 and per-flow replicas=2:
0001 forwards only to 1001 (3 common digits beats 0000's 1) and the budget
drops to 1; 1001 is a local maximum, stores, and forwards to 1110; 1110 has
two 3-common neighbors (1111 and 0011) and splits to both; each stores and
stops (per-flow replicas exhausted).  Replicas: {1001, 1111, 0011}; flows:
2 (one additional flow created at 1110).
"""

from __future__ import annotations


OBJECT_DIGITS = [1, 0, 1, 1]


def _object(network):
    return network.space.from_digits(OBJECT_DIGITS)


class TestFigure6Insertion:
    def test_replica_placement(self, fig6_network):
        network, index, labels = fig6_network
        result = network.insert(index["0001"], _object(network))
        replica_labels = {labels[node] for node in result.replicas}
        assert replica_labels == {"1001", "1111", "0011"}

    def test_two_flows(self, fig6_network):
        network, index, _labels = fig6_network
        result = network.insert(index["0001"], _object(network))
        assert result.flows_created == 2

    def test_traffic_counts_each_neighbor_send(self, fig6_network):
        # sends: 0001->1001, 1001->1110, 1110->1111, 1110->0011
        network, index, _labels = fig6_network
        result = network.insert(index["0001"], _object(network))
        assert result.traffic == 4

    def test_max_hop(self, fig6_network):
        # 0001 -> 1001 (hop 1) -> 1110 (hop 2) -> {1111, 0011} (hop 3)
        network, index, _labels = fig6_network
        result = network.insert(index["0001"], _object(network))
        assert result.max_hop == 3

    def test_directory_holders(self, fig6_network):
        network, index, _labels = fig6_network
        obj = _object(network)
        network.insert(index["0001"], obj)
        holders = network.directory.holders(obj)
        assert holders == {index["1001"], index["1111"], index["0011"]}
        assert network.directory.replica_count(obj) == 3


class TestFigure6Lookup:
    def test_lookup_follows_same_steps_and_succeeds(self, fig6_network):
        network, index, _labels = fig6_network
        obj = _object(network)
        network.insert(index["0001"], obj)
        result = network.lookup(index["0001"], obj, max_flows=2, per_flow_replicas=2)
        assert result.success
        # the first reply comes from 1001, one hop away
        assert result.first_reply_hop == 1
        assert result.replies[0][0] == index["1001"]

    def test_lookup_from_far_node(self, fig6_network):
        network, index, _labels = fig6_network
        obj = _object(network)
        network.insert(index["0001"], obj)
        result = network.lookup(index["0100"], obj, max_flows=2, per_flow_replicas=2)
        assert result.success

    def test_lookup_before_insert_fails(self, fig6_network):
        network, index, _labels = fig6_network
        result = network.lookup(index["0100"], _object(network))
        assert not result.success
        assert result.first_reply_hop is None
        assert result.replies == ()

    def test_lookup_at_holder_is_instant(self, fig6_network):
        network, index, _labels = fig6_network
        obj = _object(network)
        network.insert(index["0001"], obj)
        result = network.lookup(index["1001"], obj)
        assert result.success
        assert result.first_reply_hop == 0
        assert result.traffic_at_first_reply == 0
