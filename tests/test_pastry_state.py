"""Tests for Pastry ring state: root resolution, leaf sets, routing tables."""

from __future__ import annotations

import random

import pytest

from repro.core.identifiers import IdSpace
from repro.errors import ConfigurationError
from repro.pastry.state import (
    PastryRing,
    build_leaf_sets,
    build_routing_tables,
    table_entry_count,
)
from repro.sim.latency import UniformRandomLatency

SPACE = IdSpace(bits=16, digit_bits=4)


def _ring(n, seed=0):
    rng = random.Random(seed)
    ids = SPACE.random_unique_identifiers(n, rng)
    return PastryRing(ids), ids


class TestRing:
    def test_unique_ids_required(self):
        ids = [SPACE.identifier(1), SPACE.identifier(1)]
        with pytest.raises(ConfigurationError):
            PastryRing(ids)

    def test_root_is_circularly_closest(self):
        ring, ids = _ring(30, seed=1)
        rng = random.Random(2)
        for _ in range(50):
            key = SPACE.random_identifier(rng)
            root = ring.root_of(key)
            best = min(
                range(30),
                key=lambda i: (ids[i].circular_distance(key), ids[i].value),
            )
            assert root == best

    def test_root_exact_match(self):
        ring, ids = _ring(10, seed=3)
        assert ring.root_of(ids[4]) == 4

    def test_signed_offset(self):
        ring, _ids = _ring(4, seed=4)
        size = SPACE.size
        assert ring.signed_offset(10, 20) == 10
        assert ring.signed_offset(20, 10) == -10
        assert ring.signed_offset(0, size - 5) == -5


class TestLeafSets:
    def test_leaf_set_members_are_ring_adjacent(self):
        ring, ids = _ring(40, seed=5)
        leaf_sets = build_leaf_sets(ring, 8)
        for node in range(40):
            members = leaf_sets[node]
            assert len(members) == 8
            assert node not in members
            pos = ring.position_of[node]
            expected = {
                ring.ring_order[(pos + off) % 40]
                for off in (-4, -3, -2, -1, 1, 2, 3, 4)
            }
            assert set(members) == expected

    def test_small_ring_leaf_set_is_everyone(self):
        ring, _ids = _ring(5, seed=6)
        leaf_sets = build_leaf_sets(ring, 8)
        for node in range(5):
            assert set(leaf_sets[node]) == set(range(5)) - {node}


class TestRoutingTables:
    def test_cell_invariants(self):
        ring, ids = _ring(50, seed=7)
        tables = build_routing_tables(ring, seed=7)
        for node, table in enumerate(tables):
            for (row, col), entry in table.items():
                assert entry != node
                assert ids[node].prefix_match_len(ids[entry]) == row
                assert ids[entry].digit(row) == col

    def test_all_reachable_prefixes_covered(self):
        """Every (row, col) for which a matching node exists is populated."""
        ring, ids = _ring(50, seed=8)
        tables = build_routing_tables(ring, seed=8)
        for node in range(50):
            populated = set(tables[node])
            required = set()
            for other in range(50):
                if other == node:
                    continue
                row = ids[node].prefix_match_len(ids[other])
                required.add((row, ids[other].digit(row)))
            assert required == populated

    def test_proximity_selection_prefers_low_latency(self):
        ring, ids = _ring(50, seed=9)
        latency = UniformRandomLatency(0.01, 0.2, seed=10)
        tables = build_routing_tables(ring, latency=latency, seed=9)
        for node, table in enumerate(tables):
            for (row, col), entry in table.items():
                for other in range(50):
                    if other in (node, entry):
                        continue
                    if (
                        ids[node].prefix_match_len(ids[other]) == row
                        and ids[other].digit(row) == col
                    ):
                        assert latency.latency(node, entry) <= latency.latency(
                            node, other
                        )

    def test_table_entry_count(self):
        ring, _ids = _ring(20, seed=11)
        tables = build_routing_tables(ring, seed=11)
        avg = table_entry_count(tables)
        assert avg > 0
        assert avg == pytest.approx(sum(len(t) for t in tables) / 20)
        assert table_entry_count([]) == 0.0
