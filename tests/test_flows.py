"""Tests for the flow-budget (paths-limiting) algorithm of Section 4.3."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.flows import allowed_fanout, flows_consumed, split_flow_budget
from repro.errors import RoutingError


class TestAllowedFanout:
    def test_originator_consumes_budget_on_single_send(self):
        # Figure 6: origin with max_flows=2 may fan out to at most 2.
        assert allowed_fanout(2, 0, 5) == 2

    def test_relay_keeps_one_flow_alive_at_zero_budget(self):
        assert allowed_fanout(0, 1, 5) == 1

    def test_candidate_limited(self):
        assert allowed_fanout(10, 1, 3) == 3

    def test_zero_candidates(self):
        assert allowed_fanout(10, 1, 0) == 0

    @pytest.mark.parametrize("max_flows,given,candidates", [(-1, 0, 1), (1, 2, 1), (1, 0, -1)])
    def test_invalid_inputs(self, max_flows, given, candidates):
        with pytest.raises(RoutingError):
            allowed_fanout(max_flows, given, candidates)


class TestSplitFlowBudget:
    def test_figure6_origin(self):
        """'After node 0001, max_flows becomes 1.'"""
        assert split_flow_budget(2, 0, 1) == [1]

    def test_figure6_relay_split(self):
        """Node 1110 splits max_flows=1 into two zero-budget children."""
        assert split_flow_budget(1, 1, 2) == [0, 0]

    def test_round_robin_residue(self):
        assert split_flow_budget(7, 1, 3) == [2, 2, 1]  # remainder 5 -> 2,2,1
        assert split_flow_budget(8, 1, 3) == [2, 2, 2]  # remainder 6 -> even
        assert split_flow_budget(9, 1, 4) == [2, 2, 1, 1]  # remainder 6

    def test_single_relay_forward_preserves_budget(self):
        assert split_flow_budget(5, 1, 1) == [5]

    def test_fanout_beyond_allowance_rejected(self):
        with pytest.raises(RoutingError):
            split_flow_budget(2, 0, 3)
        with pytest.raises(RoutingError):
            split_flow_budget(0, 0, 1)

    def test_zero_fanout_rejected(self):
        with pytest.raises(RoutingError):
            split_flow_budget(3, 1, 0)


class TestFlowsConsumed:
    def test_originator_counts_every_send(self):
        assert flows_consumed(0, 1) == 1
        assert flows_consumed(0, 3) == 3

    def test_relay_counts_additional_only(self):
        assert flows_consumed(1, 1) == 0
        assert flows_consumed(1, 3) == 2

    def test_no_sends(self):
        assert flows_consumed(0, 0) == 0
        assert flows_consumed(1, 0) == 0


@given(
    max_flows=st.integers(0, 50),
    given=st.integers(0, 1),
    candidates=st.integers(0, 60),
)
def test_budget_conservation(max_flows, given, candidates):
    """Children's budgets plus flows consumed account exactly for the
    parent's budget: sum(child budgets) = max_flows - (fanout - given)."""
    fanout = allowed_fanout(max_flows, given, candidates)
    if fanout == 0:
        return
    budgets = split_flow_budget(max_flows, given, fanout)
    assert len(budgets) == fanout
    assert all(b >= 0 for b in budgets)
    assert sum(budgets) == max_flows - (fanout - given)
    # round-robin residue means budgets differ by at most one
    assert max(budgets) - min(budgets) <= 1


@given(max_flows=st.integers(1, 20), st_depth=st.integers(1, 6), data=st.data())
def test_recursive_splitting_never_exceeds_total_budget(max_flows, st_depth, data):
    """Simulate arbitrary nested splits; the total number of flows created
    can never exceed the originator's max_flows (the paper's bound)."""
    total_flows = 0
    frontier = [(max_flows, 0)]
    for _ in range(st_depth):
        next_frontier = []
        for budget, given in frontier:
            candidates = data.draw(st.integers(0, 8))
            fanout = allowed_fanout(budget, given, candidates)
            if fanout == 0:
                continue
            total_flows += flows_consumed(given, fanout)
            for child_budget in split_flow_budget(budget, given, fanout):
                next_frontier.append((child_budget, 1))
        frontier = next_frontier
    assert total_flows <= max_flows
