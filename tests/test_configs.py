"""Validation tests for MPILConfig and PastryConfig."""

from __future__ import annotations

import pytest

from repro.core.config import MPILConfig
from repro.errors import ConfigurationError
from repro.pastry.config import PastryConfig


class TestMPILConfig:
    def test_defaults_valid(self):
        config = MPILConfig()
        assert config.max_flows == 10
        assert config.per_flow_replicas == 5
        assert config.duplicate_suppression
        assert config.replica_bound == 50

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_flows": 0},
            {"per_flow_replicas": 0},
            {"tie_break": "coin"},
            {"local_max_rule": "sometimes"},
            {"metric": "hamming"},
            {"max_hops": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            MPILConfig(**kwargs)

    def test_replace(self):
        config = MPILConfig().replace(max_flows=3)
        assert config.max_flows == 3
        assert config.per_flow_replicas == 5
        with pytest.raises(ConfigurationError):
            MPILConfig().replace(max_flows=-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            MPILConfig().max_flows = 7

    def test_ablation_options_accepted(self):
        for metric in ("common-digits", "prefix", "suffix"):
            assert MPILConfig(metric=metric).metric == metric
        for rule in ("all-neighbors", "unvisited-only"):
            assert MPILConfig(local_max_rule=rule).local_max_rule == rule


class TestPastryConfig:
    def test_paper_defaults(self):
        """The MSPastry configuration list from Section 6.2, verbatim."""
        config = PastryConfig()
        assert config.digit_bits == 4
        assert config.leaf_set_size == 8
        assert config.leafset_probe_period == 30.0
        assert config.routing_table_maintenance_period == 12000.0
        assert config.routing_table_probe_period == 90.0
        assert config.probe_timeout == 3.0
        assert config.probe_retries == 2

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"digit_bits": 0},
            {"leaf_set_size": 0},
            {"leaf_set_size": 7},
            {"probe_timeout": 0},
            {"probe_retries": -1},
            {"leafset_probe_period": 0},
            {"app_retransmissions": -1},
            {"app_retx_interval": 0},
            {"max_route_hops": 0},
            {"failure_eviction_rounds": 0},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ConfigurationError):
            PastryConfig(**kwargs)

    def test_replace(self):
        config = PastryConfig().replace(leaf_set_size=16)
        assert config.leaf_set_size == 16
        assert config.digit_bits == 4
