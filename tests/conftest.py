"""Shared fixtures: identifier spaces, the Figure 6 worked example, and
hypothesis settings tuned for a fast, deterministic suite."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.core.config import MPILConfig
from repro.core.identifiers import IdSpace
from repro.core.network import MPILNetwork
from repro.overlay.graph import OverlayGraph
from repro.util.cache import clear_all_caches

settings.register_profile(
    "repro",
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(autouse=True)
def _isolated_construction_caches():
    """Empty the process-level construction caches around every test.

    The overlay/ring/metric-table caches memoise pure construction per
    process; a test that monkeypatches a generator (e.g. the transit-stub
    factory) must not leak its products into — or inherit products from —
    other tests through them.
    """
    clear_all_caches()
    yield
    clear_all_caches()


@pytest.fixture(scope="session")
def tiny_space() -> IdSpace:
    """The 4-bit binary space used by the paper's worked examples."""
    return IdSpace(bits=4, digit_bits=1)


@pytest.fixture(scope="session")
def paper_space() -> IdSpace:
    """The paper's 160-bit base-16 space (b=4, M=40)."""
    return IdSpace(bits=160, digit_bits=4)


FIG6_LABELS = [
    "0001",
    "1001",
    "0000",
    "1110",
    "1111",
    "0011",
    "0101",
    "0010",
    "0100",
]
FIG6_EDGES = [
    ("0001", "1001"),
    ("0001", "0000"),
    ("1001", "1110"),
    ("1110", "1111"),
    ("1110", "0011"),
    ("0011", "0101"),
    ("0101", "0010"),
    ("0010", "0100"),
]


@pytest.fixture()
def fig6_network(tiny_space):
    """The Figure 6 overlay with max_flows=2, per-flow replicas=2.

    Returns (network, index-by-label, labels).
    """
    ids = [tiny_space.from_digits([int(c) for c in s]) for s in FIG6_LABELS]
    index = {label: i for i, label in enumerate(FIG6_LABELS)}
    overlay = OverlayGraph.from_edges(
        len(FIG6_LABELS), [(index[a], index[b]) for a, b in FIG6_EDGES], name="fig6"
    )
    config = MPILConfig(max_flows=2, per_flow_replicas=2, tie_break="lowest-id")
    network = MPILNetwork(overlay, space=tiny_space, ids=ids, config=config, seed=6)
    return network, index, FIG6_LABELS
