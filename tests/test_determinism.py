"""Cross-experiment determinism regression: every registered experiment,
run twice with the same seed at smoke scale, must produce byte-identical
serialized output.

This pins the scenario-engine ``ext_*`` experiments (and any future
registration) to the same reproducibility bar as the paper figures: all
randomness must derive from the ``(experiment, scale, seed)`` triple via
named streams — no hidden global RNG, no dict-ordering or wall-clock
leakage into results.  Byte-level comparison of the ``to_dict`` JSON is
exactly what the sweep runner's jobs-parity guarantee rests on.
"""

from __future__ import annotations

import json

import pytest

from repro.experiments import all_experiment_ids, run_experiment


def _payload(experiment_id: str, seed: int) -> bytes:
    result = run_experiment(experiment_id, scale="smoke", seed=seed)
    return json.dumps(result.to_dict(), sort_keys=True).encode("utf-8")


@pytest.mark.parametrize("experiment_id", all_experiment_ids())
def test_rerun_is_byte_identical(experiment_id):
    assert _payload(experiment_id, seed=1) == _payload(experiment_id, seed=1)


def test_distinct_seeds_change_some_output():
    """Sanity check the comparison has teeth: at least one experiment's
    payload must differ across seeds (analytic experiments like fig7/fig8
    legitimately ignore the seed)."""
    differing = [
        experiment_id
        for experiment_id in all_experiment_ids()
        if _payload(experiment_id, 0) != _payload(experiment_id, 2)
    ]
    assert differing
