"""Tests for the flapping perturbation model."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.scenario import (
    FLAP_PROBABILITIES,
    PERIOD_CONFIGS,
    PerturbationScenario,
    scenarios_for,
)


class TestFlappingConfig:
    def test_from_label(self):
        config = FlappingConfig.from_label("45:15", 0.5)
        assert config.idle_period == 45
        assert config.offline_period == 15
        assert config.cycle == 60
        assert config.label == "45:15"

    def test_label_round_trip(self):
        for label in ("1:1", "45:15", "30:30", "300:300"):
            assert FlappingConfig.from_label(label, 0.3).label == label

    def test_invalid_labels(self):
        with pytest.raises(ConfigurationError):
            FlappingConfig.from_label("45", 0.5)
        with pytest.raises(ConfigurationError):
            FlappingConfig.from_label("a:b", 0.5)

    def test_invalid_parameters(self):
        with pytest.raises(ConfigurationError):
            FlappingConfig(0, 10, 0.5)
        with pytest.raises(ConfigurationError):
            FlappingConfig(10, 10, 1.5)

    def test_expected_offline_fraction(self):
        config = FlappingConfig(30, 30, 0.8)
        assert config.expected_offline_fraction == pytest.approx(0.4)


class TestFlappingSchedule:
    def test_zero_probability_always_online(self):
        schedule = FlappingSchedule(FlappingConfig(1, 1, 0.0), 10, seed=1)
        assert all(
            schedule.is_online(node, t)
            for node in range(10)
            for t in (0.0, 0.5, 1.5, 99.0)
        )

    def test_online_before_phase(self):
        schedule = FlappingSchedule(FlappingConfig(10, 10, 1.0), 5, seed=2)
        for node in range(5):
            assert schedule.is_online(node, schedule.phase(node) - 0.01)

    def test_p1_offline_during_offline_window(self):
        config = FlappingConfig(10, 10, 1.0)
        schedule = FlappingSchedule(config, 5, seed=3)
        for node in range(5):
            phase = schedule.phase(node)
            assert schedule.is_online(node, phase + 5.0)  # idle part
            assert not schedule.is_online(node, phase + 15.0)  # offline part
            assert schedule.is_online(node, phase + 25.0)  # next idle part

    def test_always_online_exemption(self):
        config = FlappingConfig(1, 1, 1.0)
        schedule = FlappingSchedule(config, 5, seed=4, always_online={2})
        assert all(schedule.is_online(2, t) for t in (0.0, 1.5, 3.5, 100.0))

    def test_phase_within_first_cycle(self):
        schedule = FlappingSchedule(FlappingConfig(30, 30, 0.5), 20, seed=5)
        for node in range(20):
            assert 0.0 <= schedule.phase(node) < 60.0

    def test_decisions_deterministic_and_order_independent(self):
        config = FlappingConfig(30, 30, 0.5)
        a = FlappingSchedule(config, 8, seed=6)
        b = FlappingSchedule(config, 8, seed=6)
        # query b in reverse order; results must match a's forward order
        times = [15.0 + 60.0 * k for k in range(20)]
        forward = [[a.is_online(n, t) for t in times] for n in range(8)]
        backward = [[b.is_online(n, t) for t in reversed(times)] for n in range(8)]
        assert forward == [list(reversed(row)) for row in backward]

    def test_goes_offline_negative_cycle(self):
        schedule = FlappingSchedule(FlappingConfig(1, 1, 1.0), 3, seed=7)
        assert schedule.goes_offline(0, -1) is False

    def test_statistical_offline_fraction(self):
        config = FlappingConfig(30, 30, 0.6)
        schedule = FlappingSchedule(config, 300, seed=8)
        # sample far beyond all phases so every node is flapping
        sample_times = [500.0 + 7.3 * k for k in range(40)]
        online = sum(
            schedule.is_online(node, t) for node in range(300) for t in sample_times
        )
        fraction = online / (300 * len(sample_times))
        expected = 1.0 - config.expected_offline_fraction
        assert abs(fraction - expected) < 0.05

    def test_next_transition_after(self):
        config = FlappingConfig(10, 10, 1.0)
        schedule = FlappingSchedule(config, 3, seed=9)
        phase = schedule.phase(0)
        assert schedule.next_transition_after(0, phase - 5.0) == pytest.approx(phase)
        assert schedule.next_transition_after(0, phase + 1.0) == pytest.approx(phase + 10.0)
        assert schedule.next_transition_after(0, phase + 11.0) == pytest.approx(phase + 20.0)

    def test_online_fraction_diagnostic(self):
        schedule = FlappingSchedule(FlappingConfig(1, 1, 0.0), 10, seed=10)
        assert schedule.online_fraction(50.0) == 1.0


class TestScenarios:
    def test_period_configs_match_paper(self):
        assert PERIOD_CONFIGS["fig1"] == ("1:1", "45:15", "30:30", "300:300")
        assert PERIOD_CONFIGS["fig11"] == ("1:1", "30:30", "300:300")
        assert FLAP_PROBABILITIES == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0)

    def test_scenarios_for(self):
        scenarios = scenarios_for("fig11", probabilities=(0.5, 1.0))
        assert len(scenarios) == 6
        schedule = scenarios[0].schedule(10, seed=0)
        assert schedule.num_nodes == 10

    def test_unknown_figure(self):
        with pytest.raises(ConfigurationError):
            scenarios_for("fig99")

    def test_scenario_config(self):
        scenario = PerturbationScenario("30:30", 0.4)
        assert scenario.config().cycle == 60.0


@given(
    idle=st.floats(0.5, 100, allow_nan=False),
    offline=st.floats(0.5, 100, allow_nan=False),
    probability=st.floats(0, 1),
    node=st.integers(0, 9),
    t=st.floats(0, 2000),
)
def test_is_online_is_pure(idle, offline, probability, node, t):
    config = FlappingConfig(idle, offline, probability)
    schedule = FlappingSchedule(config, 10, seed=42)
    assert schedule.is_online(node, t) == schedule.is_online(node, t)
