"""Random overlay generators.

The paper's "random graphs" give every node exactly 100 neighbors — i.e.
random regular graphs ("In these random graphs, each node has 100
neighbors, equally").  :func:`fixed_degree_random_graph` is the exported
name for that family; :func:`random_regular_graph` is the underlying
generator.  A G(n, p) generator and a ring lattice are included for tests
and examples.
"""

from __future__ import annotations

from repro.errors import OverlayError
from repro.overlay.graph import OverlayGraph
from repro.sim.rng import derive_rng, derive_seed


def random_regular_graph(
    n: int, degree: int, seed: object = 0, max_attempts: int = 20
) -> OverlayGraph:
    """A connected random d-regular graph on ``n`` nodes.

    Uses networkx's pairing-model generator and retries (with derived
    seeds) until the sample is connected — disconnected samples are rare
    for d >= 3 but possible.
    """
    import networkx as nx

    if degree >= n:
        raise OverlayError(f"degree {degree} must be < n ({n})")
    if (n * degree) % 2 != 0:
        raise OverlayError(f"n*degree must be even, got n={n}, degree={degree}")
    for attempt in range(max_attempts):
        nx_seed = derive_seed(seed, "random-regular", n, degree, attempt) % (2**32)
        graph = nx.random_regular_graph(degree, n, seed=nx_seed)
        overlay = OverlayGraph.from_networkx(
            nx.convert_node_labels_to_integers(graph), name=f"random-regular-{degree}"
        )
        if overlay.is_connected():
            return overlay
    raise OverlayError(
        f"failed to generate a connected {degree}-regular graph on {n} nodes "
        f"after {max_attempts} attempts"
    )


def fixed_degree_random_graph(n: int, degree: int = 100, seed: object = 0) -> OverlayGraph:
    """The paper's "random topology": every node has exactly ``degree``
    neighbors chosen at random (default 100, the paper's setting)."""
    overlay = random_regular_graph(n, degree, seed=seed)
    return overlay.renamed(f"random-{degree}")


def gnp_random_graph(n: int, p: float, seed: object = 0) -> OverlayGraph:
    """Erdős–Rényi G(n, p) (not used by the paper; for tests/examples)."""
    import networkx as nx

    if not 0 <= p <= 1:
        raise OverlayError(f"edge probability must be in [0, 1], got {p}")
    nx_seed = derive_seed(seed, "gnp", n, p) % (2**32)
    graph = nx.gnp_random_graph(n, p, seed=nx_seed)
    return OverlayGraph.from_networkx(graph, name=f"gnp-{p}")


def ring_lattice_graph(n: int, k: int = 1) -> OverlayGraph:
    """Ring where each node connects to its ``k`` nearest neighbors on
    each side.  Deterministic; handy for small worked examples."""
    if n < 3:
        raise OverlayError(f"ring needs at least 3 nodes, got {n}")
    if not 1 <= k < n / 2:
        raise OverlayError(f"k must be in [1, n/2), got k={k}, n={n}")
    adjacency = [
        [(u + offset) % n for offset in range(-k, k + 1) if offset != 0]
        for u in range(n)
    ]
    return OverlayGraph(adjacency, name=f"ring-{k}")


def connect_components(overlay: OverlayGraph, seed: object = 0) -> OverlayGraph:
    """Return a connected copy by adding one random edge between each
    smaller component and the giant component."""
    components = overlay.components()
    if len(components) <= 1:
        return overlay
    rng = derive_rng(seed, "connect-components", overlay.n)
    adjacency = [set(overlay.neighbors(u)) for u in range(overlay.n)]
    giant = components[0]
    for component in components[1:]:
        u = rng.choice(component)
        v = rng.choice(giant)
        adjacency[u].add(v)
        adjacency[v].add(u)
    return OverlayGraph(adjacency, name=overlay.name)
