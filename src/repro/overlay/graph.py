"""The overlay graph abstraction.

``OverlayGraph`` is a frozen adjacency structure: node indices are dense
integers ``0..n-1`` and each node's neighbor list is a sorted tuple.  MPIL
treats the overlay as arbitrary and read-only, which is the point of the
paper ("the overlay underneath can be arbitrary"), so immutability is the
honest representation.

Undirected graphs are validated for symmetry; directed graphs (used for the
MPIL-over-Pastry adapter, where a Pastry node's outgoing neighbor list is
its leaf set plus routing-table entries) skip that check.

Two construction paths exist.  The sequence-of-neighbor-lists constructor
normalises per node in Python — fine up to ~10^4 nodes.  :meth:`from_csr`
takes ``(indptr, indices)`` arrays directly, validates them with vectorised
array passes, and materialises the per-node tuples lazily; it is the
struct-of-arrays path the 10^5-10^6-node scale rungs ride on.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import OverlayError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class OverlayGraph:
    """Immutable overlay adjacency structure."""

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        name: str = "overlay",
        directed: bool = False,
        validate: bool = True,
    ):
        self._adj_cache: tuple[tuple[int, ...], ...] | None = tuple(
            tuple(sorted(set(int(v) for v in neighbors))) for neighbors in adjacency
        )
        self._n = len(self._adj_cache)
        self.name = name
        self.directed = directed
        #: per-node degree, computed once (perturbation families rank and
        #: re-rank nodes by degree; len() per probe re-scans nothing here)
        self._degrees: tuple[int, ...] = tuple(len(ns) for ns in self._adj_cache)
        self._total_degrees: tuple[int, ...] | None = None
        self._csr: tuple | None = None
        if validate:
            self._validate()

    @property
    def _adj(self) -> tuple[tuple[int, ...], ...]:
        """Per-node sorted neighbor tuples, materialised lazily for graphs
        built from CSR arrays (one ``tolist`` pass, plain Python ints)."""
        if self._adj_cache is None:
            indptr, indices = self._csr  # type: ignore[misc]
            flat = indices.tolist()
            offsets = indptr.tolist()
            self._adj_cache = tuple(
                tuple(flat[offsets[u]:offsets[u + 1]]) for u in range(self._n)
            )
        return self._adj_cache

    def _validate(self) -> None:
        n = self.n
        for u, neighbors in enumerate(self._adj):
            for v in neighbors:
                if not 0 <= v < n:
                    raise OverlayError(f"node {u} has out-of-range neighbor {v}")
                if v == u:
                    raise OverlayError(f"node {u} has a self-loop")
        if not self.directed:
            neighbor_sets = [set(ns) for ns in self._adj]
            for u, neighbors in enumerate(self._adj):
                for v in neighbors:
                    if u not in neighbor_sets[v]:
                        raise OverlayError(
                            f"undirected overlay is asymmetric: {u}->{v} but not {v}->{u}"
                        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]], name: str = "overlay"
    ) -> "OverlayGraph":
        """Build an undirected overlay from an edge list."""
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise OverlayError(f"self-loop edge ({u}, {v})")
            if not (0 <= u < n and 0 <= v < n):
                raise OverlayError(f"edge ({u}, {v}) out of range for n={n}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls(adjacency, name=name)

    @classmethod
    def from_csr(
        cls,
        indptr: "np.ndarray",
        indices: "np.ndarray",
        name: str = "overlay",
        directed: bool = False,
        validate: bool = True,
    ) -> "OverlayGraph":
        """Build an overlay directly from CSR ``(indptr, indices)`` arrays.

        Rows must be sorted and duplicate-free (:meth:`from_networkx`
        normalises before calling this).  Validation — range, self-loops,
        duplicates, and symmetry for undirected graphs — runs as whole-array
        passes, so constructing a 10^5-node overlay costs milliseconds
        instead of the seconds the per-node Python normalisation takes.
        """
        import numpy as np

        indptr = np.ascontiguousarray(indptr, dtype=np.int64)
        indices = np.ascontiguousarray(indices, dtype=np.int64)
        if indptr.ndim != 1 or indptr.shape[0] == 0:
            raise OverlayError("indptr must be a 1-d array of n + 1 offsets")
        n = indptr.shape[0] - 1
        if int(indptr[0]) != 0 or int(indptr[-1]) != indices.shape[0]:
            raise OverlayError("indptr does not span the indices array")
        degrees = np.diff(indptr)
        if (degrees < 0).any():
            raise OverlayError("indptr offsets must be non-decreasing")
        self = cls.__new__(cls)
        self._adj_cache = None
        self._n = n
        self.name = name
        self.directed = directed
        self._degrees = tuple(degrees.tolist())
        self._total_degrees = None
        self._csr = (indptr, indices)
        if validate and indices.shape[0]:
            owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
            if int(indices.min()) < 0 or int(indices.max()) >= n:
                bad = int(owners[(indices < 0) | (indices >= n)][0])
                raise OverlayError(f"node {bad} has an out-of-range neighbor")
            if (indices == owners).any():
                bad = int(owners[indices == owners][0])
                raise OverlayError(f"node {bad} has a self-loop")
            same_row = owners[1:] == owners[:-1]
            if (same_row & (indices[1:] <= indices[:-1])).any():
                bad = int(owners[1:][same_row & (indices[1:] <= indices[:-1])][0])
                raise OverlayError(
                    f"node {bad} has unsorted or duplicate neighbors"
                )
            if not directed:
                forward = owners * n + indices
                backward = indices * n + owners
                forward.sort()
                backward.sort()
                if not np.array_equal(forward, backward):
                    raise OverlayError("undirected overlay is asymmetric")
        return self

    @classmethod
    def from_networkx(cls, graph, name: str = "overlay") -> "OverlayGraph":
        """Convert a networkx graph whose nodes are 0..n-1."""
        import numpy as np

        n = graph.number_of_nodes()
        nodes = set(graph.nodes)
        if nodes != set(range(n)):
            raise OverlayError("networkx graph nodes must be exactly 0..n-1")
        adj = graph.adj
        degrees = np.fromiter(
            (len(adj[u]) for u in range(n)), dtype=np.int64, count=n
        )
        total = int(degrees.sum())
        indices = np.fromiter(
            (v for u in range(n) for v in adj[u]), dtype=np.int64, count=total
        )
        owners = np.repeat(np.arange(n, dtype=np.int64), degrees)
        order = np.lexsort((indices, owners))
        indices = indices[order]
        owners = owners[order]
        # drop duplicate stubs (multigraphs); self-loops are rejected below
        if total:
            keep = np.empty(total, dtype=bool)
            keep[0] = True
            keep[1:] = (owners[1:] != owners[:-1]) | (indices[1:] != indices[:-1])
            if not keep.all():
                indices = indices[keep]
                owners = owners[keep]
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.bincount(owners, minlength=n), out=indptr[1:])
        return cls.from_csr(
            indptr, indices, name=name, directed=graph.is_directed()
        )

    def renamed(self, name: str) -> "OverlayGraph":
        """A copy under a new name sharing every frozen structure (the
        generators' final rename used to re-normalise all n neighbor lists)."""
        clone = type(self).__new__(type(self))
        clone._adj_cache = self._adj_cache
        clone._n = self._n
        clone.name = name
        clone.directed = self.directed
        clone._degrees = self._degrees
        clone._total_degrees = self._total_degrees
        clone._csr = self._csr
        return clone

    def to_networkx(self):
        """Export to networkx (imported lazily)."""
        import networkx as nx

        graph = nx.DiGraph() if self.directed else nx.Graph()
        graph.add_nodes_from(range(self.n))
        for u in range(self.n):
            for v in self._adj[u]:
                graph.add_edge(u, v)
        return graph

    # -- accessors ----------------------------------------------------------

    @property
    def n(self) -> int:
        return self._n

    def neighbors(self, node: int) -> tuple[int, ...]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return self._degrees[node]

    @property
    def degrees(self) -> tuple[int, ...]:
        """Degree of every node, as one cached tuple (out-degree for
        directed overlays)."""
        return self._degrees

    @property
    def total_degrees(self) -> tuple[int, ...]:
        """Out + in degree of every node, cached.

        For undirected overlays this is just :attr:`degrees`; for directed
        ones (Pastry neighbor lists) it adds how many nodes point *at* each
        node — the ranking adversarial-removal scenarios target — without
        re-walking the adjacency per scenario cell.
        """
        if not self.directed:
            return self._degrees
        if self._total_degrees is None:
            import numpy as np

            _indptr, indices = self.adjacency_arrays()
            incoming = np.bincount(indices, minlength=self.n)
            self._total_degrees = tuple(
                int(out + inc) for out, inc in zip(self._degrees, incoming)
            )
        return self._total_degrees

    def adjacency_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """CSR-style ``(indptr, indices)`` adjacency view, built lazily.

        ``indices[indptr[u]:indptr[u + 1]]`` are the (sorted) neighbors of
        ``u``; both arrays are cached, so vectorised consumers (metric
        tables, perturbation families scoring whole node sets) share one
        copy instead of re-walking the per-node tuples.
        """
        if self._csr is None:
            import numpy as np

            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr[1:])
            indices = np.fromiter(
                (v for ns in self._adj for v in ns),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._csr = (indptr, indices)
        return self._csr

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges; for undirected graphs each edge appears once."""
        for u in range(self.n):
            for v in self._adj[u]:
                if self.directed or u < v:
                    yield (u, v)

    @property
    def num_edges(self) -> int:
        total = sum(self._degrees)
        return total if self.directed else total // 2

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> number of nodes with that degree."""
        histogram: dict[int, int] = collections.Counter(self._degrees)
        return dict(histogram)

    def average_degree(self) -> float:
        if self.n == 0:
            return 0.0
        return sum(self._degrees) / self.n

    def is_connected(self) -> bool:
        """Connectivity test (weak connectivity for directed graphs).

        Undirected graphs run a vectorised frontier expansion over the CSR
        arrays — whole-frontier neighbor gathers instead of a per-node
        Python BFS — so the generators' connectivity retries stay cheap at
        10^5+ nodes.
        """
        if self.n == 0:
            return True
        if self.directed:
            undirected: list[set[int]] = [set() for _ in range(self.n)]
            for u in range(self.n):
                for v in self._adj[u]:
                    undirected[u].add(v)
                    undirected[v].add(u)
            seen = {0}
            frontier = collections.deque([0])
            while frontier:
                u = frontier.popleft()
                for v in undirected[u]:
                    if v not in seen:
                        seen.add(v)
                        frontier.append(v)
            return len(seen) == self.n
        import numpy as np

        indptr, indices = self.adjacency_arrays()
        visited = np.zeros(self.n, dtype=bool)
        visited[0] = True
        frontier = np.array([0], dtype=np.int64)
        reached = 1
        while frontier.size:
            starts = indptr[frontier]
            ends = indptr[frontier + 1]
            gathered = [indices[s:e] for s, e in zip(starts.tolist(), ends.tolist())]
            neighbors = np.concatenate(gathered) if gathered else indices[:0]
            fresh = np.unique(neighbors[~visited[neighbors]])
            visited[fresh] = True
            reached += fresh.shape[0]
            frontier = fresh
        return reached == self.n

    def components(self) -> list[list[int]]:
        """Connected components (undirected view), largest first."""
        seen: set[int] = set()
        components: list[list[int]] = []
        undirected: list[set[int]] = [set(ns) for ns in self._adj]
        if self.directed:
            for u in range(self.n):
                for v in self._adj[u]:
                    undirected[v].add(u)
        for start in range(self.n):
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            frontier = collections.deque([start])
            while frontier:
                u = frontier.popleft()
                for v in undirected[u]:
                    if v not in seen:
                        seen.add(v)
                        component.append(v)
                        frontier.append(v)
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"OverlayGraph(name={self.name!r}, n={self.n}, "
            f"edges={self.num_edges}, {kind})"
        )
