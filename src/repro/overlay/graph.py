"""The overlay graph abstraction.

``OverlayGraph`` is a frozen adjacency structure: node indices are dense
integers ``0..n-1`` and each node's neighbor list is a sorted tuple.  MPIL
treats the overlay as arbitrary and read-only, which is the point of the
paper ("the overlay underneath can be arbitrary"), so immutability is the
honest representation.

Undirected graphs are validated for symmetry; directed graphs (used for the
MPIL-over-Pastry adapter, where a Pastry node's outgoing neighbor list is
its leaf set plus routing-table entries) skip that check.
"""

from __future__ import annotations

import collections
from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

from repro.errors import OverlayError

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np


class OverlayGraph:
    """Immutable overlay adjacency structure."""

    def __init__(
        self,
        adjacency: Sequence[Iterable[int]],
        name: str = "overlay",
        directed: bool = False,
        validate: bool = True,
    ):
        self._adj: tuple[tuple[int, ...], ...] = tuple(
            tuple(sorted(set(int(v) for v in neighbors))) for neighbors in adjacency
        )
        self.name = name
        self.directed = directed
        #: per-node degree, computed once (perturbation families rank and
        #: re-rank nodes by degree; len() per probe re-scans nothing here)
        self._degrees: tuple[int, ...] = tuple(len(ns) for ns in self._adj)
        self._total_degrees: tuple[int, ...] | None = None
        self._csr: tuple | None = None
        if validate:
            self._validate()

    def _validate(self) -> None:
        n = self.n
        for u, neighbors in enumerate(self._adj):
            for v in neighbors:
                if not 0 <= v < n:
                    raise OverlayError(f"node {u} has out-of-range neighbor {v}")
                if v == u:
                    raise OverlayError(f"node {u} has a self-loop")
        if not self.directed:
            neighbor_sets = [set(ns) for ns in self._adj]
            for u, neighbors in enumerate(self._adj):
                for v in neighbors:
                    if u not in neighbor_sets[v]:
                        raise OverlayError(
                            f"undirected overlay is asymmetric: {u}->{v} but not {v}->{u}"
                        )

    # -- construction -------------------------------------------------------

    @classmethod
    def from_edges(
        cls, n: int, edges: Iterable[tuple[int, int]], name: str = "overlay"
    ) -> "OverlayGraph":
        """Build an undirected overlay from an edge list."""
        adjacency: list[set[int]] = [set() for _ in range(n)]
        for u, v in edges:
            if u == v:
                raise OverlayError(f"self-loop edge ({u}, {v})")
            if not (0 <= u < n and 0 <= v < n):
                raise OverlayError(f"edge ({u}, {v}) out of range for n={n}")
            adjacency[u].add(v)
            adjacency[v].add(u)
        return cls(adjacency, name=name)

    @classmethod
    def from_networkx(cls, graph, name: str = "overlay") -> "OverlayGraph":
        """Convert a networkx graph whose nodes are 0..n-1."""
        n = graph.number_of_nodes()
        nodes = set(graph.nodes)
        if nodes != set(range(n)):
            raise OverlayError("networkx graph nodes must be exactly 0..n-1")
        adjacency = [list(graph.neighbors(u)) for u in range(n)]
        return cls(adjacency, name=name, directed=graph.is_directed())

    def to_networkx(self):
        """Export to networkx (imported lazily)."""
        import networkx as nx

        graph = nx.DiGraph() if self.directed else nx.Graph()
        graph.add_nodes_from(range(self.n))
        for u in range(self.n):
            for v in self._adj[u]:
                graph.add_edge(u, v)
        return graph

    # -- accessors ----------------------------------------------------------

    @property
    def n(self) -> int:
        return len(self._adj)

    def neighbors(self, node: int) -> tuple[int, ...]:
        return self._adj[node]

    def degree(self, node: int) -> int:
        return self._degrees[node]

    @property
    def degrees(self) -> tuple[int, ...]:
        """Degree of every node, as one cached tuple (out-degree for
        directed overlays)."""
        return self._degrees

    @property
    def total_degrees(self) -> tuple[int, ...]:
        """Out + in degree of every node, cached.

        For undirected overlays this is just :attr:`degrees`; for directed
        ones (Pastry neighbor lists) it adds how many nodes point *at* each
        node — the ranking adversarial-removal scenarios target — without
        re-walking the adjacency per scenario cell.
        """
        if not self.directed:
            return self._degrees
        if self._total_degrees is None:
            import numpy as np

            _indptr, indices = self.adjacency_arrays()
            incoming = np.bincount(indices, minlength=self.n)
            self._total_degrees = tuple(
                int(out + inc) for out, inc in zip(self._degrees, incoming)
            )
        return self._total_degrees

    def adjacency_arrays(self) -> "tuple[np.ndarray, np.ndarray]":
        """CSR-style ``(indptr, indices)`` adjacency view, built lazily.

        ``indices[indptr[u]:indptr[u + 1]]`` are the (sorted) neighbors of
        ``u``; both arrays are cached, so vectorised consumers (metric
        tables, perturbation families scoring whole node sets) share one
        copy instead of re-walking the per-node tuples.
        """
        if self._csr is None:
            import numpy as np

            indptr = np.zeros(self.n + 1, dtype=np.int64)
            np.cumsum(self._degrees, out=indptr[1:])
            indices = np.fromiter(
                (v for ns in self._adj for v in ns),
                dtype=np.int64,
                count=int(indptr[-1]),
            )
            self._csr = (indptr, indices)
        return self._csr

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate edges; for undirected graphs each edge appears once."""
        for u in range(self.n):
            for v in self._adj[u]:
                if self.directed or u < v:
                    yield (u, v)

    @property
    def num_edges(self) -> int:
        total = sum(self._degrees)
        return total if self.directed else total // 2

    def degree_histogram(self) -> dict[int, int]:
        """Map degree -> number of nodes with that degree."""
        histogram: dict[int, int] = collections.Counter(self._degrees)
        return dict(histogram)

    def average_degree(self) -> float:
        if self.n == 0:
            return 0.0
        return sum(self._degrees) / self.n

    def is_connected(self) -> bool:
        """BFS connectivity test (weak connectivity for directed graphs)."""
        if self.n == 0:
            return True
        if self.directed:
            undirected: list[set[int]] = [set() for _ in range(self.n)]
            for u in range(self.n):
                for v in self._adj[u]:
                    undirected[u].add(v)
                    undirected[v].add(u)
            adj: Sequence[Iterable[int]] = undirected
        else:
            adj = self._adj
        seen = {0}
        frontier = collections.deque([0])
        while frontier:
            u = frontier.popleft()
            for v in adj[u]:
                if v not in seen:
                    seen.add(v)
                    frontier.append(v)
        return len(seen) == self.n

    def components(self) -> list[list[int]]:
        """Connected components (undirected view), largest first."""
        seen: set[int] = set()
        components: list[list[int]] = []
        undirected: list[set[int]] = [set(ns) for ns in self._adj]
        if self.directed:
            for u in range(self.n):
                for v in self._adj[u]:
                    undirected[v].add(u)
        for start in range(self.n):
            if start in seen:
                continue
            component = [start]
            seen.add(start)
            frontier = collections.deque([start])
            while frontier:
                u = frontier.popleft()
                for v in undirected[u]:
                    if v not in seen:
                        seen.add(v)
                        component.append(v)
                        frontier.append(v)
            components.append(component)
        components.sort(key=len, reverse=True)
        return components

    def __repr__(self) -> str:
        kind = "directed" if self.directed else "undirected"
        return (
            f"OverlayGraph(name={self.name!r}, n={self.n}, "
            f"edges={self.num_edges}, {kind})"
        )
