"""Overlay topologies and the Internet underlay.

The paper evaluates MPIL over power-law graphs (generated with Inet),
random graphs where "each node has 100 neighbors, equally", complete
topologies (analysis), and the structured overlay of MSPastry; the MSPastry
simulations sit on a GT-ITM transit-stub Internet topology.  This package
provides all of them (Inet and GT-ITM are replaced by synthetic equivalents
— see DESIGN.md §2 for the substitution notes).
"""

from repro.overlay.complete import complete_graph
from repro.overlay.graph import OverlayGraph
from repro.overlay.power_law import power_law_graph
from repro.overlay.random_graphs import (
    fixed_degree_random_graph,
    gnp_random_graph,
    random_regular_graph,
    ring_lattice_graph,
)
from repro.overlay.transit_stub import TransitStubUnderlay

__all__ = [
    "OverlayGraph",
    "TransitStubUnderlay",
    "complete_graph",
    "fixed_degree_random_graph",
    "gnp_random_graph",
    "power_law_graph",
    "random_regular_graph",
    "ring_lattice_graph",
]
