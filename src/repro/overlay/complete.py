"""Complete overlay topology (every node adjacent to every other).

Used by the Section-5 analysis cross-checks: the expected number of
replicas in a complete topology (Figure 8) is validated against MPIL runs
on :func:`complete_graph` instances.
"""

from __future__ import annotations

from repro.errors import OverlayError
from repro.overlay.graph import OverlayGraph


def complete_graph(n: int) -> OverlayGraph:
    """The complete graph K_n as an :class:`OverlayGraph`."""
    if n < 1:
        raise OverlayError(f"complete graph needs at least 1 node, got {n}")
    adjacency = [
        [v for v in range(n) if v != u]
        for u in range(n)
    ]
    return OverlayGraph(adjacency, name=f"complete-{n}", validate=False)
