"""The benchmark-regression gate: fresh BENCH results vs a committed baseline.

``benchmarks/baseline.json`` records, per experiment, the events/sec the
repository last committed to.  :func:`check_regressions` compares fresh
:class:`~repro.perf.profiler.BenchResult` measurements against it and
returns one :class:`Regression` per experiment whose throughput fell more
than ``tolerance`` (default 20%) below baseline.  CI runs this through
``mpil-experiments perf ... --check benchmarks/baseline.json`` and fails
the build on any finding; after an intentional performance change, rewrite
the baseline with ``--write-baseline benchmarks/baseline.json`` and commit
the diff.

Event-count changes are *not* regressions (optimisations legitimately
reshape what a run executes); they are surfaced on the report entry so a
reviewer can see when baseline and measurement are counting different
work.

Baselines are keyed per rung: schema version 2 stores entries under
``<experiment_id>@<scale>`` so one file can gate several ladder rungs at
once (``fig9@smoke`` and ``fig9@large`` hold different floors).  Version-1
files (bare-id keys) still load and gate every rung with the same floor.
Separately from throughput floors, :func:`check_budgets` compares each
measurement against the budget its scale declared — a budgeted rung whose
measured wall clock or peak RSS exceeds the ceiling fails the bench gate
even if its events/sec look fine.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Iterable, Mapping, Union

from repro.errors import ExperimentError
from repro.perf.profiler import BenchResult

#: bumped on any incompatible baseline.json layout change; version 2
#: introduced per-rung ``<id>@<scale>`` entry keys (version-1 files with
#: bare-id keys still load)
BASELINE_SCHEMA_VERSION = 2


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One experiment's committed reference numbers."""

    events_per_sec: float
    events_processed: int
    wall_clock_best: float

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Regression:
    """One experiment whose measured throughput fell below tolerance."""

    experiment_id: str
    baseline_events_per_sec: float
    measured_events_per_sec: float
    tolerance: float
    events_count_changed: bool

    @property
    def ratio(self) -> float:
        """measured / baseline (1.0 = exactly baseline, lower = slower)."""
        if self.baseline_events_per_sec == 0:
            return 1.0
        return self.measured_events_per_sec / self.baseline_events_per_sec

    def describe(self) -> str:
        note = " [event count changed]" if self.events_count_changed else ""
        return (
            f"{self.experiment_id}: {self.measured_events_per_sec:.1f} events/s is "
            f"{(1.0 - self.ratio) * 100:.1f}% below the baseline "
            f"{self.baseline_events_per_sec:.1f} "
            f"(tolerance {self.tolerance * 100:.0f}%){note}"
        )


def load_baseline(path: Union[str, pathlib.Path]) -> dict[str, BaselineEntry]:
    """Read a committed baseline file into per-entry reference numbers.

    Keys are ``<id>@<scale>`` in version-2 files and bare experiment ids
    in version-1 files; :func:`check_regressions` resolves both.
    """
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no baseline file at {path}")
    payload = json.loads(path.read_text())
    version = int(payload.get("schema_version", 0))
    if not 1 <= version <= BASELINE_SCHEMA_VERSION:
        raise ExperimentError(
            f"baseline schema version {version} unsupported "
            f"(this build reads versions 1..{BASELINE_SCHEMA_VERSION})"
        )
    entries: dict[str, BaselineEntry] = {}
    for experiment_id, entry in payload["entries"].items():
        entries[experiment_id] = BaselineEntry(
            events_per_sec=float(entry["events_per_sec"]),
            events_processed=int(entry["events_processed"]),
            wall_clock_best=float(entry["wall_clock_best"]),
        )
    return entries


def write_baseline(
    results: Iterable[BenchResult],
    path: Union[str, pathlib.Path],
    scale: str,
) -> pathlib.Path:
    """Write (or overwrite) a version-2 baseline file from fresh bench
    results, one ``<id>@<scale>`` entry per measurement; ``scale`` is the
    informational top-level label (the rung, or a comma list of rungs)."""
    entries = {
        f"{result.experiment_id}@{result.scale}": BaselineEntry(
            events_per_sec=result.events_per_sec,
            events_processed=result.events_processed,
            wall_clock_best=result.wall_clock_best,
        ).to_dict()
        for result in results
    }
    if not entries:
        raise ExperimentError("cannot write a baseline from zero bench results")
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "scale": scale,
        "entries": entries,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path


def check_regressions(
    results: Iterable[BenchResult],
    baseline: Union[str, pathlib.Path, Mapping[str, BaselineEntry]],
    tolerance: float = 0.2,
) -> list[Regression]:
    """Regressions among ``results``, per the committed ``baseline``.

    An experiment regresses when its measured events/sec is more than
    ``tolerance`` below the baseline value.  Experiments missing from the
    baseline are skipped (they gate nothing until the baseline is
    refreshed to include them).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ExperimentError(f"tolerance must be in [0, 1), got {tolerance}")
    if not isinstance(baseline, Mapping):
        baseline = load_baseline(baseline)
    regressions: list[Regression] = []
    for result in results:
        # per-rung entry first (schema v2), bare id as the v1 fallback
        entry = baseline.get(f"{result.experiment_id}@{result.scale}")
        if entry is None:
            entry = baseline.get(result.experiment_id)
        if entry is None:
            continue
        floor = entry.events_per_sec * (1.0 - tolerance)
        if result.events_per_sec < floor:
            regressions.append(
                Regression(
                    experiment_id=result.experiment_id,
                    baseline_events_per_sec=entry.events_per_sec,
                    measured_events_per_sec=result.events_per_sec,
                    tolerance=tolerance,
                    events_count_changed=(
                        result.events_processed != entry.events_processed
                    ),
                )
            )
    return regressions


@dataclasses.dataclass(frozen=True)
class BudgetViolation:
    """One measurement that exceeded its scale's declared budget."""

    experiment_id: str
    scale: str
    resource: str  #: ``"wall clock"`` or ``"peak RSS"``
    measured: float
    ceiling: float
    unit: str

    def describe(self) -> str:
        return (
            f"{self.experiment_id}@{self.scale}: {self.resource} "
            f"{self.measured:.1f}{self.unit} exceeds the scale's budget of "
            f"{self.ceiling:g}{self.unit}"
        )


def check_budgets(results: Iterable[BenchResult]) -> list[BudgetViolation]:
    """Measurements that blew their scale's budget ceilings.

    Uses the budget the profiler recorded into each
    :class:`~repro.perf.profiler.BenchResult`: mean wall clock against
    ``max_wall_s`` and observed peak RSS against ``max_rss_mb``.
    Unbudgeted scales (and version-1 BENCH files) gate nothing.
    """
    violations: list[BudgetViolation] = []
    for result in results:
        if (
            result.budget_max_wall_s is not None
            and result.wall_clock_mean > result.budget_max_wall_s
        ):
            violations.append(
                BudgetViolation(
                    experiment_id=result.experiment_id,
                    scale=result.scale,
                    resource="wall clock",
                    measured=result.wall_clock_mean,
                    ceiling=result.budget_max_wall_s,
                    unit="s",
                )
            )
        if (
            result.budget_max_rss_mb is not None
            and result.peak_rss_mb is not None
            and result.peak_rss_mb > result.budget_max_rss_mb
        ):
            violations.append(
                BudgetViolation(
                    experiment_id=result.experiment_id,
                    scale=result.scale,
                    resource="peak RSS",
                    measured=result.peak_rss_mb,
                    ceiling=result.budget_max_rss_mb,
                    unit="MiB",
                )
            )
    return violations
