"""The benchmark-regression gate: fresh BENCH results vs a committed baseline.

``benchmarks/baseline.json`` records, per experiment, the events/sec the
repository last committed to.  :func:`check_regressions` compares fresh
:class:`~repro.perf.profiler.BenchResult` measurements against it and
returns one :class:`Regression` per experiment whose throughput fell more
than ``tolerance`` (default 20%) below baseline.  CI runs this through
``mpil-experiments perf ... --check benchmarks/baseline.json`` and fails
the build on any finding; after an intentional performance change, rewrite
the baseline with ``--write-baseline benchmarks/baseline.json`` and commit
the diff.

Event-count changes are *not* regressions (optimisations legitimately
reshape what a run executes); they are surfaced on the report entry so a
reviewer can see when baseline and measurement are counting different
work.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Any, Iterable, Mapping, Union

from repro.errors import ExperimentError
from repro.perf.profiler import BenchResult

#: bumped on any incompatible baseline.json layout change
BASELINE_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True)
class BaselineEntry:
    """One experiment's committed reference numbers."""

    events_per_sec: float
    events_processed: int
    wall_clock_best: float

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclasses.dataclass(frozen=True)
class Regression:
    """One experiment whose measured throughput fell below tolerance."""

    experiment_id: str
    baseline_events_per_sec: float
    measured_events_per_sec: float
    tolerance: float
    events_count_changed: bool

    @property
    def ratio(self) -> float:
        """measured / baseline (1.0 = exactly baseline, lower = slower)."""
        if self.baseline_events_per_sec == 0:
            return 1.0
        return self.measured_events_per_sec / self.baseline_events_per_sec

    def describe(self) -> str:
        note = " [event count changed]" if self.events_count_changed else ""
        return (
            f"{self.experiment_id}: {self.measured_events_per_sec:.1f} events/s is "
            f"{(1.0 - self.ratio) * 100:.1f}% below the baseline "
            f"{self.baseline_events_per_sec:.1f} "
            f"(tolerance {self.tolerance * 100:.0f}%){note}"
        )


def load_baseline(path: Union[str, pathlib.Path]) -> dict[str, BaselineEntry]:
    """Read a committed baseline file into per-experiment entries."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no baseline file at {path}")
    payload = json.loads(path.read_text())
    version = int(payload.get("schema_version", 0))
    if version != BASELINE_SCHEMA_VERSION:
        raise ExperimentError(
            f"baseline schema version {version} unsupported "
            f"(this build reads version {BASELINE_SCHEMA_VERSION})"
        )
    entries: dict[str, BaselineEntry] = {}
    for experiment_id, entry in payload["entries"].items():
        entries[experiment_id] = BaselineEntry(
            events_per_sec=float(entry["events_per_sec"]),
            events_processed=int(entry["events_processed"]),
            wall_clock_best=float(entry["wall_clock_best"]),
        )
    return entries


def write_baseline(
    results: Iterable[BenchResult],
    path: Union[str, pathlib.Path],
    scale: str,
) -> pathlib.Path:
    """Write (or overwrite) a baseline file from fresh bench results."""
    entries = {
        result.experiment_id: BaselineEntry(
            events_per_sec=result.events_per_sec,
            events_processed=result.events_processed,
            wall_clock_best=result.wall_clock_best,
        ).to_dict()
        for result in results
    }
    if not entries:
        raise ExperimentError("cannot write a baseline from zero bench results")
    payload = {
        "schema_version": BASELINE_SCHEMA_VERSION,
        "scale": scale,
        "entries": entries,
    }
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, sort_keys=True, indent=2) + "\n")
    return path


def check_regressions(
    results: Iterable[BenchResult],
    baseline: Union[str, pathlib.Path, Mapping[str, BaselineEntry]],
    tolerance: float = 0.2,
) -> list[Regression]:
    """Regressions among ``results``, per the committed ``baseline``.

    An experiment regresses when its measured events/sec is more than
    ``tolerance`` below the baseline value.  Experiments missing from the
    baseline are skipped (they gate nothing until the baseline is
    refreshed to include them).
    """
    if not 0.0 <= tolerance < 1.0:
        raise ExperimentError(f"tolerance must be in [0, 1), got {tolerance}")
    if not isinstance(baseline, Mapping):
        baseline = load_baseline(baseline)
    regressions: list[Regression] = []
    for result in results:
        entry = baseline.get(result.experiment_id)
        if entry is None:
            continue
        floor = entry.events_per_sec * (1.0 - tolerance)
        if result.events_per_sec < floor:
            regressions.append(
                Regression(
                    experiment_id=result.experiment_id,
                    baseline_events_per_sec=entry.events_per_sec,
                    measured_events_per_sec=result.events_per_sec,
                    tolerance=tolerance,
                    events_count_changed=(
                        result.events_processed != entry.events_processed
                    ),
                )
            )
    return regressions
