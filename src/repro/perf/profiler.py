"""The profiling harness: time any registered experiment, emit BENCH JSON.

:func:`profile_experiment` wraps one registered experiment in
``time.perf_counter`` sampling (several timed repeats, best and mean
wall-clock) plus an optional ``cProfile`` pass for the top-k cumulative
functions, and reports throughput as **events per second** — where an
event is one discrete simulation step as counted by
:mod:`repro.sim.engine` (scheduler callbacks, synchronous MPIL message
hops, Pastry routing steps).  Event counts are required to be identical
across repeats: the simulations are deterministic functions of
``(experiment, scale, seed)``, so a drifting count means hidden
nondeterminism and raises immediately.

By default the measurement is *warm*: an untimed warmup run primes imports
and the process-level construction caches, so the timed repeats measure
simulation throughput rather than one-off setup.  ``warm=False`` clears
every construction cache before each repeat to measure cold end-to-end
cost instead.

Results serialise to ``BENCH_<id>.json`` via :func:`write_bench`; the
committed ``benchmarks/baseline.json`` and the CI gate consume them
through :mod:`repro.perf.regression`.
"""

from __future__ import annotations

import cProfile
import dataclasses
import json
import pathlib
import pstats
import time
from typing import Any, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.budget import current_rss_mb
from repro.experiments.registry import get_experiment, run_experiment
from repro.experiments.scales import Scale, get_scale
from repro.experiments.store import git_revision
from repro.sim.engine import events_processed_total, reset_events_processed
from repro.util.cache import clear_all_caches

#: bumped on any incompatible BENCH_<id>.json layout change; version 2
#: added the scale-budget fields and peak RSS (version-1 files still load,
#: with those fields absent)
SCHEMA_VERSION = 2


@dataclasses.dataclass(frozen=True)
class HotSpot:
    """One entry of the cProfile top-k (cumulative-time order)."""

    location: str  #: ``path:lineno(function)``, repo-relative where possible
    calls: int
    total_time: float  #: seconds inside the function itself
    cumulative_time: float  #: seconds including callees

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "HotSpot":
        return cls(
            location=str(payload["location"]),
            calls=int(payload["calls"]),
            total_time=float(payload["total_time"]),
            cumulative_time=float(payload["cumulative_time"]),
        )


@dataclasses.dataclass(frozen=True)
class BenchResult:
    """One experiment's measured performance (the BENCH file payload)."""

    experiment_id: str
    scale: str
    seed: int
    repeats: int
    warm: bool
    wall_clock_best: float  #: fastest timed repeat, seconds
    wall_clock_mean: float  #: mean over timed repeats, seconds
    events_processed: int  #: per run (identical across repeats by contract)
    events_per_sec: float  #: events_processed / wall_clock_best
    hotspots: tuple[HotSpot, ...]
    git_rev: str
    schema_version: int = SCHEMA_VERSION
    #: largest resident set any sample saw during the measured runs
    #: (``None`` off-Linux, and in version-1 files)
    peak_rss_mb: Optional[float] = None
    #: the profiled scale's budget ceilings, for the bench gate
    #: (``None`` = the scale is unbudgeted)
    budget_max_rss_mb: Optional[float] = None
    budget_max_wall_s: Optional[float] = None

    def summary(self) -> str:
        """One human line: id, throughput, wall clock."""
        return (
            f"{self.experiment_id:18s} {self.events_per_sec:12.1f} events/s  "
            f"({self.events_processed} events, best {self.wall_clock_best * 1e3:.1f} ms "
            f"over {self.repeats} repeats, {'warm' if self.warm else 'cold'})"
        )

    def to_dict(self) -> dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["hotspots"] = [spot.to_dict() for spot in self.hotspots]
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "BenchResult":
        version = int(payload.get("schema_version", 0))
        if not 1 <= version <= SCHEMA_VERSION:
            raise ExperimentError(
                f"BENCH schema version {version} unsupported "
                f"(this build reads versions 1..{SCHEMA_VERSION})"
            )

        def opt_float(key: str) -> Optional[float]:
            value = payload.get(key)
            return None if value is None else float(value)

        return cls(
            experiment_id=str(payload["experiment_id"]),
            scale=str(payload["scale"]),
            seed=int(payload["seed"]),
            repeats=int(payload["repeats"]),
            warm=bool(payload["warm"]),
            wall_clock_best=float(payload["wall_clock_best"]),
            wall_clock_mean=float(payload["wall_clock_mean"]),
            events_processed=int(payload["events_processed"]),
            events_per_sec=float(payload["events_per_sec"]),
            hotspots=tuple(
                HotSpot.from_dict(spot) for spot in payload["hotspots"]
            ),
            git_rev=str(payload["git_rev"]),
            schema_version=version,
            peak_rss_mb=opt_float("peak_rss_mb"),
            budget_max_rss_mb=opt_float("budget_max_rss_mb"),
            budget_max_wall_s=opt_float("budget_max_wall_s"),
        )


def _short_location(filename: str, lineno: int, function: str) -> str:
    """Compress an absolute stats path to its last meaningful components."""
    if filename.startswith("~") or filename == "<built-in>":
        return f"<built-in>({function})"
    parts = pathlib.PurePath(filename).parts
    for anchor in ("repro", "site-packages"):
        if anchor in parts:
            index = parts.index(anchor)
            filename = "/".join(parts[index:])
            break
    else:
        filename = "/".join(parts[-2:])
    return f"{filename}:{lineno}({function})"


def _collect_hotspots(profile: cProfile.Profile, top: int) -> tuple[HotSpot, ...]:
    stats = pstats.Stats(profile)
    entries = sorted(
        stats.stats.items(),  # type: ignore[attr-defined]
        key=lambda item: item[1][3],
        reverse=True,
    )
    hotspots: list[HotSpot] = []
    for (filename, lineno, function), row in entries[:top]:
        _cc, ncalls, tottime, cumtime = row[0], row[1], row[2], row[3]
        hotspots.append(
            HotSpot(
                location=_short_location(filename, lineno, function),
                calls=int(ncalls),
                total_time=round(float(tottime), 6),
                cumulative_time=round(float(cumtime), 6),
            )
        )
    return tuple(hotspots)


def profile_experiment(
    experiment_id: str,
    scale: Union[str, Scale] = "smoke",
    seed: int = 0,
    repeats: int = 3,
    top: int = 10,
    warm: bool = True,
    with_profile: bool = True,
) -> BenchResult:
    """Measure one experiment's throughput; see the module docstring.

    The cProfile pass runs *after* the timed repeats (instrumentation
    slows function-call-heavy code several-fold, so it must never share a
    clock with them).  The resolved scale's budget ceilings and the peak
    resident set observed across the timed repeats land in the result so
    the bench gate can check measurements against the budget.
    """
    get_experiment(experiment_id)  # raises on unknown ids
    resolved = get_scale(scale)  # raises on unknown scales
    if repeats < 1:
        raise ExperimentError(f"repeats must be >= 1, got {repeats}")
    if top < 0:
        raise ExperimentError(f"top must be >= 0, got {top}")

    if warm:
        run_experiment(experiment_id, scale=resolved, seed=seed)  # prime caches

    walls: list[float] = []
    counts: list[int] = []
    peak_rss: Optional[float] = None
    for _ in range(repeats):
        if not warm:
            clear_all_caches()
        reset_events_processed()
        started = time.perf_counter()
        run_experiment(experiment_id, scale=resolved, seed=seed)
        walls.append(time.perf_counter() - started)
        counts.append(events_processed_total())
        rss = current_rss_mb()
        if rss is not None and (peak_rss is None or rss > peak_rss):
            peak_rss = rss
    if len(set(counts)) != 1:
        raise ExperimentError(
            f"{experiment_id} executed varying event counts across repeats "
            f"({counts}); the run is not deterministic — fix that before "
            f"trusting any measurement of it"
        )

    hotspots: tuple[HotSpot, ...] = ()
    if with_profile and top > 0:
        if not warm:
            clear_all_caches()  # the hotspot pass must see the same cold
            # construction work the timed repeats measured
        profile = cProfile.Profile()
        profile.enable()
        run_experiment(experiment_id, scale=resolved, seed=seed)
        profile.disable()
        hotspots = _collect_hotspots(profile, top)

    best = min(walls)
    return BenchResult(
        experiment_id=experiment_id,
        scale=resolved.name,
        seed=seed,
        repeats=repeats,
        warm=warm,
        wall_clock_best=round(best, 6),
        wall_clock_mean=round(sum(walls) / len(walls), 6),
        events_processed=counts[0],
        events_per_sec=round(counts[0] / best, 3) if best > 0 else 0.0,
        hotspots=hotspots,
        git_rev=git_revision(),
        peak_rss_mb=None if peak_rss is None else round(peak_rss, 1),
        budget_max_rss_mb=resolved.budget.max_rss_mb,
        budget_max_wall_s=resolved.budget.max_wall_s,
    )


def bench_path(
    out_dir: Union[str, pathlib.Path],
    experiment_id: str,
    scale: Optional[str] = None,
) -> pathlib.Path:
    """Where :func:`write_bench` puts one experiment's BENCH file.

    ``scale`` qualifies the name (``BENCH_<id>@<scale>.json``) so
    multi-rung profiling runs keep one file per rung; without it the
    historical ``BENCH_<id>.json`` name is used.  Both spellings match the
    CI artifact glob ``BENCH_*.json``.
    """
    suffix = "" if scale is None else f"@{scale}"
    return pathlib.Path(out_dir) / f"BENCH_{experiment_id}{suffix}.json"


def write_bench(
    result: BenchResult,
    out_dir: Union[str, pathlib.Path],
    qualify_scale: bool = False,
) -> pathlib.Path:
    """Persist one bench result as ``<out_dir>/BENCH_<id>.json`` (or the
    scale-qualified name when ``qualify_scale`` is set)."""
    path = bench_path(
        out_dir, result.experiment_id, scale=result.scale if qualify_scale else None
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(result.to_dict(), sort_keys=True, indent=2) + "\n")
    return path


def load_bench(path: Union[str, pathlib.Path]) -> BenchResult:
    """Reload a BENCH file written by :func:`write_bench`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise ExperimentError(f"no BENCH file at {path}")
    return BenchResult.from_dict(json.loads(path.read_text()))
