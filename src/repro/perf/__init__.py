"""Hot-path performance tooling.

This package makes per-operation cost a first-class, continuously tracked
quantity (the ROADMAP's "as fast as the hardware allows" demands a meter
before a target):

- :mod:`repro.perf.profiler` — wrap any registered experiment in
  ``time.perf_counter`` sampling plus an optional ``cProfile`` pass and
  emit a machine-readable ``BENCH_<id>.json`` (wall-clock, events/sec,
  top-k cumulative functions, git revision);
- :mod:`repro.perf.regression` — compare fresh bench results against a
  committed baseline and flag events/sec regressions (the CI gate).

The ``mpil-experiments perf`` CLI command is the front door; see the
README's "Performance" section.
"""

from repro.perf.profiler import (
    BenchResult,
    HotSpot,
    bench_path,
    load_bench,
    profile_experiment,
    write_bench,
)
from repro.perf.regression import (
    BaselineEntry,
    BudgetViolation,
    Regression,
    check_budgets,
    check_regressions,
    load_baseline,
    write_baseline,
)

__all__ = [
    "BaselineEntry",
    "BenchResult",
    "BudgetViolation",
    "HotSpot",
    "Regression",
    "bench_path",
    "check_budgets",
    "check_regressions",
    "load_baseline",
    "load_bench",
    "profile_experiment",
    "write_baseline",
    "write_bench",
]
