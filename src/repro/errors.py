"""Exception hierarchy for the MPIL reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch one base class.  Submodules raise the most specific subclass that
applies; nothing in the library raises bare ``Exception``.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError):
    """An invalid parameter or combination of parameters was supplied."""


class IdSpaceError(ReproError):
    """An identifier operation was attempted with incompatible spaces or
    out-of-range values."""


class OverlayError(ReproError):
    """An overlay graph is malformed (self loops, asymmetry, bad indices)
    or a generator could not satisfy its constraints."""


class SimulationError(ReproError):
    """The discrete-event engine or a simulation driver reached an
    inconsistent state."""


class RoutingError(ReproError):
    """A routing operation failed in a way that indicates a bug rather
    than an expected protocol outcome (e.g. empty neighbor metric table)."""


class ExperimentError(ReproError):
    """An experiment was requested with an unknown id or invalid scale."""


class LedgerError(ExperimentError):
    """The sweep task ledger rejected a state transition or could not be
    accessed (e.g. it is locked by another process).  A subclass of
    :class:`ExperimentError` so CLI error handling stays one ``except``."""
