"""The analyzer driver: walk files, run rules, apply exemptions.

:func:`lint_paths` is the one entry point — the CLI ``lint`` command and
``api.lint`` both call it.  For every Python file under the given paths
it parses the source once, runs every registered rule (or a requested
subset), and filters the raw findings through the two sanctioned
exemption channels:

- **inline suppressions** — ``# repro: allow[DET003] reason`` on the
  offending line silences exactly those rule ids for that line;
- **config allowlists** — ``[tool.repro-lint] allow.DET003 = [...]``
  path patterns exempt whole files from one rule (see
  :mod:`repro.lint.config`).

Both channels are counted in the returned :class:`LintReport` so a clean
run still shows how many exemptions it leaned on.  Files that fail to
parse are reported as ``SYNTAX`` violations rather than aborting the
scan.  Output ordering is fully deterministic: files are visited in
sorted path order and violations are sorted by (path, line, column,
rule id).
"""

from __future__ import annotations

import pathlib
import re
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ConfigurationError
from repro.lint.config import LintConfig, load_config
from repro.lint.report import LintReport, Violation
from repro.lint.rules import FileContext, Rule, all_rules, get_rule

#: pseudo-rule id for files the parser rejects (always fails the gate)
SYNTAX_RULE_ID = "SYNTAX"

#: inline suppression marker: ``# repro: allow[DET003] reason`` or
#: ``# repro: allow[DET004,DET005] reason``
_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s]+)\]"
)


def suppressions_by_line(source: str) -> dict[int, set[str]]:
    """1-based line -> rule ids silenced on that line."""
    markers: dict[int, set[str]] = {}
    for lineno, line in enumerate(source.splitlines(), start=1):
        match = _SUPPRESSION_RE.search(line)
        if match:
            markers[lineno] = {
                rule_id.strip()
                for rule_id in match.group("rules").split(",")
                if rule_id.strip()
            }
    return markers


def iter_python_files(
    paths: Sequence[Union[str, pathlib.Path]]
) -> list[pathlib.Path]:
    """Every ``.py`` file under ``paths``, deduplicated, sorted.

    Directories are walked recursively; explicit file arguments are taken
    as-is (and must exist).  Missing paths raise a one-line
    :class:`ConfigurationError` rather than silently scanning nothing.
    """
    files: set[pathlib.Path] = set()
    for entry in paths:
        path = pathlib.Path(entry)
        if path.is_dir():
            files.update(p for p in sorted(path.rglob("*.py")) if p.is_file())
        elif path.is_file():
            files.add(path)
        else:
            raise ConfigurationError(f"lint path does not exist: {path}")
    return sorted(files)


def lint_file(
    path: Union[str, pathlib.Path],
    config: LintConfig,
    rules: Optional[Iterable[Rule]] = None,
) -> tuple[list[Violation], int, int]:
    """Lint one file: ``(violations, suppressed_count, allowed_count)``."""
    file_path = pathlib.Path(path)
    rel_path = config.relative_path(file_path)
    source = file_path.read_text()
    try:
        context = FileContext(rel_path, source)
    except SyntaxError as exc:
        return (
            [
                Violation(
                    path=rel_path,
                    line=exc.lineno or 1,
                    column=(exc.offset or 1) - 1,
                    rule_id=SYNTAX_RULE_ID,
                    message=f"file does not parse: {exc.msg}",
                )
            ],
            0,
            0,
        )
    markers = suppressions_by_line(source)
    violations: list[Violation] = []
    suppressed = 0
    allowed = 0
    for rule in rules if rules is not None else all_rules():
        if config.is_allowed(rule.rule_id, file_path):
            allowed += sum(1 for _ in rule.check(context))
            continue
        for finding in rule.check(context):
            if rule.rule_id in markers.get(finding.line, ()):
                suppressed += 1
                continue
            violations.append(
                Violation(
                    path=rel_path,
                    line=finding.line,
                    column=finding.column,
                    rule_id=rule.rule_id,
                    message=finding.message,
                )
            )
    return violations, suppressed, allowed


def lint_paths(
    paths: Sequence[Union[str, pathlib.Path]],
    config: Optional[LintConfig] = None,
    rules: Optional[Sequence[str]] = None,
) -> LintReport:
    """Run the analyzer over files/directories and return the report.

    ``config=None`` auto-discovers the governing ``pyproject.toml``
    (nearest one at or above the first path); pass an explicit
    :class:`LintConfig` to pin allowlists in tests.  ``rules`` limits the
    pass to the named rule ids (unknown ids raise the one-line error).
    """
    if not paths:
        raise ConfigurationError("lint needs at least one path")
    if config is None:
        config = load_config(start=paths[0])
    selected = (
        [get_rule(rule_id) for rule_id in rules] if rules is not None else None
    )
    violations: list[Violation] = []
    suppressed = 0
    allowed = 0
    files = [
        path for path in iter_python_files(paths) if not config.is_excluded(path)
    ]
    for path in files:
        file_violations, file_suppressed, file_allowed = lint_file(
            path, config, rules=selected
        )
        violations.extend(file_violations)
        suppressed += file_suppressed
        allowed += file_allowed
    return LintReport(
        violations=tuple(sorted(violations)),
        files_scanned=len(files),
        suppressed=suppressed,
        allowed=allowed,
    )
