"""``[tool.repro-lint]`` configuration: path allowlists and excludes.

The analyzer's rules are absolute statements of the determinism contract;
the *config* records where the contract deliberately does not apply — the
one module allowed to construct ``random.Random`` (``sim/rng.py``), the
provenance/profiling modules allowed to read wall clocks, the entry points
allowed to read the environment.  Keeping those carve-outs in
``pyproject.toml`` (not in the rules) makes every exemption reviewable in
one place::

    [tool.repro-lint]
    exclude = ["src/repro/_vendored"]

    [tool.repro-lint.allow]
    DET001 = ["src/repro/sim/rng.py"]
    DET003 = ["src/repro/perf", "src/repro/experiments/budget.py"]

Entries are paths relative to the directory holding ``pyproject.toml``:
an exact file path, a directory prefix (everything under it), or an
``fnmatch`` glob.  :func:`load_config` walks upward from a start path to
find the governing ``pyproject.toml``, so ``mpil-experiments lint`` works
from any subdirectory of a checkout.
"""

from __future__ import annotations

import dataclasses
import fnmatch
import pathlib
import re
from typing import Mapping, Optional, Union

from repro.errors import ConfigurationError

try:  # Python 3.11+
    import tomllib
except ModuleNotFoundError:  # pragma: no cover - exercised only on 3.10
    tomllib = None  # type: ignore[assignment]

#: the pyproject table the analyzer reads
CONFIG_TABLE = "repro-lint"


def _match(rel_path: str, pattern: str) -> bool:
    """True iff ``rel_path`` (POSIX, relative) matches one config entry."""
    pattern = pattern.rstrip("/")
    if rel_path == pattern:
        return True
    if rel_path.startswith(pattern + "/"):
        return True
    return fnmatch.fnmatch(rel_path, pattern)


@dataclasses.dataclass(frozen=True)
class LintConfig:
    """Resolved analyzer configuration.

    ``root`` anchors the relative paths in ``allow``/``exclude`` (and the
    paths violations are reported under); with no config file it defaults
    to the current directory.
    """

    root: pathlib.Path = dataclasses.field(default_factory=pathlib.Path.cwd)
    allow: Mapping[str, tuple[str, ...]] = dataclasses.field(default_factory=dict)
    exclude: tuple[str, ...] = ()

    def relative_path(self, path: Union[str, pathlib.Path]) -> str:
        """``path`` as a POSIX string relative to the config root (files
        outside the root keep their absolute form)."""
        resolved = pathlib.Path(path).resolve()
        try:
            return resolved.relative_to(self.root.resolve()).as_posix()
        except ValueError:
            return resolved.as_posix()

    def is_excluded(self, path: Union[str, pathlib.Path]) -> bool:
        rel = self.relative_path(path)
        return any(_match(rel, pattern) for pattern in self.exclude)

    def is_allowed(self, rule_id: str, path: Union[str, pathlib.Path]) -> bool:
        """True iff ``rule_id`` is exempted for this file by the config."""
        patterns = self.allow.get(rule_id, ())
        if not patterns:
            return False
        rel = self.relative_path(path)
        return any(_match(rel, pattern) for pattern in patterns)

    @classmethod
    def from_dict(
        cls, payload: Mapping, root: Union[str, pathlib.Path, None] = None
    ) -> "LintConfig":
        """Build a config from a ``[tool.repro-lint]`` table's contents."""
        allow_table = payload.get("allow", {})
        if not isinstance(allow_table, Mapping):
            raise ConfigurationError(
                f"[tool.{CONFIG_TABLE}] allow must be a table of "
                f"rule-id -> path list, got {type(allow_table).__name__}"
            )
        allow: dict[str, tuple[str, ...]] = {}
        for rule_id, patterns in allow_table.items():
            if isinstance(patterns, str):
                patterns = [patterns]
            if not isinstance(patterns, (list, tuple)) or not all(
                isinstance(p, str) for p in patterns
            ):
                raise ConfigurationError(
                    f"[tool.{CONFIG_TABLE}] allow.{rule_id} must be a list "
                    f"of path strings"
                )
            allow[str(rule_id)] = tuple(patterns)
        exclude = payload.get("exclude", [])
        if isinstance(exclude, str):
            exclude = [exclude]
        if not isinstance(exclude, (list, tuple)) or not all(
            isinstance(p, str) for p in exclude
        ):
            raise ConfigurationError(
                f"[tool.{CONFIG_TABLE}] exclude must be a list of path strings"
            )
        return cls(
            root=pathlib.Path(root) if root is not None else pathlib.Path.cwd(),
            allow=allow,
            exclude=tuple(exclude),
        )


def find_pyproject(start: Union[str, pathlib.Path]) -> Optional[pathlib.Path]:
    """The nearest ``pyproject.toml`` at or above ``start``, or None."""
    current = pathlib.Path(start).resolve()
    if current.is_file():
        current = current.parent
    for directory in (current, *current.parents):
        candidate = directory / "pyproject.toml"
        if candidate.is_file():
            return candidate
    return None


# The self-hosted fallback for Python 3.10 (no tomllib): enough TOML to
# read the [tool.repro-lint] table — bare tables, string keys, strings,
# and (possibly multi-line) arrays of strings.  3.11+ always uses tomllib.
_TABLE_RE = re.compile(r"^\[(?P<name>[^\]]+)\]\s*$")
_KEY_RE = re.compile(
    r"^(?P<key>[A-Za-z0-9_\-\"\']+)\s*=\s*(?P<value>.*)$"
)


def _strip_comment(line: str) -> str:
    in_string: Optional[str] = None
    for index, char in enumerate(line):
        if in_string:
            if char == in_string:
                in_string = None
        elif char in "\"'":
            in_string = char
        elif char == "#":
            return line[:index]
    return line


def _parse_string_array(text: str, context: str) -> list[str]:
    body = text.strip()
    if not (body.startswith("[") and body.endswith("]")):
        raise ConfigurationError(f"{context}: expected a TOML array, got {text!r}")
    items = []
    for chunk in body[1:-1].split(","):
        chunk = chunk.strip()
        if not chunk:
            continue
        if len(chunk) < 2 or chunk[0] not in "\"'" or chunk[-1] != chunk[0]:
            raise ConfigurationError(
                f"{context}: expected a quoted string, got {chunk!r}"
            )
        items.append(chunk[1:-1])
    return items


def _parse_minimal_toml(text: str, wanted_table: str) -> dict:
    """Extract one pyproject table with a TOML subset parser (3.10 path)."""
    sections: dict[str, dict] = {}
    current: Optional[dict] = None
    pending_key: Optional[str] = None
    pending_value = ""
    for raw_line in text.splitlines():
        line = _strip_comment(raw_line).strip()
        if not line:
            continue
        if pending_key is not None:
            pending_value += " " + line
            if line.endswith("]"):
                assert current is not None
                current[pending_key] = _parse_string_array(
                    pending_value, pending_key
                )
                pending_key, pending_value = None, ""
            continue
        table = _TABLE_RE.match(line)
        if table:
            current = sections.setdefault(table.group("name").strip(), {})
            continue
        if current is None:
            continue
        pair = _KEY_RE.match(line)
        if not pair:
            continue
        key = pair.group("key").strip("\"'")
        value = pair.group("value").strip()
        if value.startswith("[") and not value.endswith("]"):
            pending_key, pending_value = key, value
            continue
        if value.startswith("["):
            current[key] = _parse_string_array(value, key)
        elif value[:1] in "\"'" and value[-1:] == value[:1]:
            current[key] = value[1:-1]
        # other value kinds (ints, booleans, inline tables) are not part
        # of the repro-lint schema and are ignored by the fallback parser
    result: dict = dict(sections.get(f"tool.{wanted_table}", {}))
    prefix = f"tool.{wanted_table}."
    for name, table_dict in sections.items():
        if name.startswith(prefix):
            result[name[len(prefix):]] = dict(table_dict)
    return result


def load_config(
    start: Union[str, pathlib.Path, None] = None,
    pyproject: Union[str, pathlib.Path, None] = None,
) -> LintConfig:
    """Resolve the analyzer config for a lint invocation.

    ``pyproject`` names the file explicitly; otherwise the nearest
    ``pyproject.toml`` at or above ``start`` (default: the current
    directory) governs.  A missing file or missing ``[tool.repro-lint]``
    table yields the empty config — every rule applies everywhere.
    """
    if pyproject is not None:
        path = pathlib.Path(pyproject)
        if not path.is_file():
            raise ConfigurationError(f"no pyproject file at {path}")
    else:
        found = find_pyproject(start if start is not None else pathlib.Path.cwd())
        if found is None:
            return LintConfig()
        path = found
    text = path.read_text()
    if tomllib is not None:
        try:
            table = tomllib.loads(text).get("tool", {}).get(CONFIG_TABLE, {})
        except tomllib.TOMLDecodeError as exc:
            raise ConfigurationError(f"invalid TOML in {path}: {exc}") from exc
    else:  # pragma: no cover - exercised only on 3.10
        table = _parse_minimal_toml(text, CONFIG_TABLE)
    return LintConfig.from_dict(table, root=path.parent)
