"""The determinism-contract rules: named, testable AST checks.

Each rule encodes one clause of the repo's reproducibility or
error-handling contract (see ARCHITECTURE.md, "The determinism
contract").  Rules are instances registered under stable ids
(``DET001``..``DET006``, ``CON001``, ``ERR001``); each carries a
one-line ``title``, a ``rationale`` (why the contract exists), and a
``fix_pattern`` (what compliant code looks like) — surfaced by
``mpil-experiments lint --explain RULE``.

Rules are *syntactic*: they resolve names through the file's import
aliases (``import numpy as np`` makes ``np.random.seed`` recognisable)
but do no cross-module type inference.  Deliberate exemptions live in
``[tool.repro-lint]`` path allowlists or inline
``# repro: allow[RULE] reason`` suppressions, never in the rules.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Iterator, Optional, Union

from repro.errors import ExperimentError


@dataclasses.dataclass(frozen=True)
class Finding:
    """One raw rule hit inside a file (path is attached by the engine)."""

    line: int
    column: int
    message: str


class FileContext:
    """One parsed source file plus the name-resolution tables rules need."""

    def __init__(self, rel_path: str, source: str):
        self.rel_path = rel_path
        self.source = source
        self.tree = ast.parse(source, filename=rel_path)
        #: local alias -> canonical module path ("np" -> "numpy")
        self.module_aliases: dict[str, str] = {}
        #: local name -> canonical dotted origin ("Random" -> "random.Random")
        self.from_imports: dict[str, str] = {}
        #: canonical top-level modules this file really imports; rules keyed
        #: on a module (random, numpy, time, os) fire only when its root is
        #: here, so a local variable that happens to be named `random` in a
        #: file that never imports it cannot false-positive
        self.imported_roots: set[str] = set()
        self._collect_imports()
        #: child node id -> parent node (for wrapped-in-sorted checks)
        self.parents: dict[int, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[id(child)] = parent

    def _collect_imports(self) -> None:
        for node in ast.walk(self.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    self.module_aliases[alias.asname or alias.name.split(".")[0]] = (
                        alias.name if alias.asname else alias.name.split(".")[0]
                    )
                    if alias.asname is None and "." in alias.name:
                        # `import numpy.random` binds the top-level package
                        self.module_aliases[alias.name.split(".")[0]] = (
                            alias.name.split(".")[0]
                        )
                    self.imported_roots.add(alias.name.split(".")[0])
            elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
                for alias in node.names:
                    self.from_imports[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
                self.imported_roots.add(node.module.split(".")[0])

    def imports_module(self, root: str) -> bool:
        """True iff the file imports ``root`` (directly or via ``from``)."""
        return root in self.imported_roots

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Canonical dotted name of a Name/Attribute chain, or None.

        ``np.random.seed`` resolves to ``numpy.random.seed`` when the file
        imported ``numpy as np``; ``perf_counter`` resolves to
        ``time.perf_counter`` after ``from time import perf_counter``.
        Bare builtins resolve to themselves.
        """
        if isinstance(node, ast.Name):
            if node.id in self.from_imports:
                return self.from_imports[node.id]
            if node.id in self.module_aliases:
                return self.module_aliases[node.id]
            return node.id
        if isinstance(node, ast.Attribute):
            base = self.resolve(node.value)
            if base is None:
                return None
            return f"{base}.{node.attr}"
        return None

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(id(node))


class Rule:
    """Base class: subclasses set the metadata and implement :meth:`check`."""

    rule_id: str = ""
    title: str = ""
    rationale: str = ""
    fix_pattern: str = ""

    def check(self, context: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def explain(self) -> str:
        """The ``--explain`` payload: title, rationale, and fix pattern."""
        return (
            f"{self.rule_id}: {self.title}\n\n"
            f"Why: {self.rationale}\n\n"
            f"Fix: {self.fix_pattern}"
        )


_RULES: dict[str, Rule] = {}


def register_rule(rule: Union[Rule, type]) -> Union[Rule, type]:
    """Add a rule to the registry (classes are instantiated; duplicate ids
    rejected).  Usable as a class decorator."""
    instance = rule() if isinstance(rule, type) else rule
    if instance.rule_id in _RULES:
        raise ExperimentError(f"duplicate lint rule id {instance.rule_id!r}")
    _RULES[instance.rule_id] = instance
    return rule


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id."""
    return [_RULES[rule_id] for rule_id in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    """The rule registered under ``rule_id`` (one-line error if unknown)."""
    try:
        return _RULES[rule_id]
    except KeyError:
        raise ExperimentError(
            f"unknown lint rule {rule_id!r}; known rules: {sorted(_RULES)}"
        ) from None


def _calls(context: FileContext) -> Iterator[tuple[ast.Call, Optional[str]]]:
    for node in ast.walk(context.tree):
        if isinstance(node, ast.Call):
            yield node, context.resolve(node.func)


#: every stdlib `random` module draw/seed entry point worth naming in the
#: message; any other `random.<attr>()` call is flagged generically
_RANDOM_MODULE = "random"

#: legacy NumPy global-RNG entry points (mutate or read np.random's hidden
#: global MT19937 state) plus the legacy RandomState constructor
_NUMPY_LEGACY = {
    "seed", "rand", "randn", "randint", "random", "random_sample", "ranf",
    "sample", "choice", "shuffle", "permutation", "uniform", "normal",
    "standard_normal", "get_state", "set_state", "RandomState",
}

#: wall-clock entry points that must not feed simulation state
_WALL_CLOCK = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

#: filesystem enumerators whose order is filesystem-dependent
_FS_SCAN_METHODS = {"glob", "rglob", "iterdir"}
_FS_SCAN_FUNCTIONS = {"os.listdir", "os.scandir"}

#: builtin exception types the library must not raise bare (TypeError is
#: deliberately exempt: constructor-signature errors mirror dataclasses)
_BARE_EXCEPTIONS = {"Exception", "ValueError", "RuntimeError"}


@register_rule
class _Det001RawRandom(Rule):
    rule_id = "DET001"
    title = "stdlib `random` used directly instead of sim.rng.derive_rng"
    rationale = (
        "Every random draw must flow through repro.sim.rng.derive_rng so a "
        "(seed, labels) pair names the stream and replays identically "
        "regardless of call order, process boundaries, or which other "
        "streams exist.  A raw random.Random(), random.seed(), or "
        "module-global random.*() call creates an unnamed stream whose "
        "state leaks across call sites, silently forking trajectories "
        "between otherwise identical runs."
    )
    fix_pattern = (
        "rng = derive_rng(seed, \"my-subsystem\", index) and draw from that "
        "rng; only src/repro/sim/rng.py (the allowlisted stream factory) "
        "may construct random.Random itself."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.imports_module(_RANDOM_MODULE):
            return
        for node, name in _calls(context):
            if name is None:
                continue
            if name == _RANDOM_MODULE or not name.startswith(_RANDOM_MODULE + "."):
                continue
            attr = name.split(".", 1)[1]
            if attr.startswith("_"):
                continue
            yield Finding(
                node.lineno,
                node.col_offset,
                f"call to random.{attr}() bypasses sim.rng.derive_rng "
                f"(streams must be named and derived, not constructed)",
            )


@register_rule
class _Det002NumpyGlobalRng(Rule):
    rule_id = "DET002"
    title = "legacy NumPy global RNG (np.random.seed / np.random.rand*)"
    rationale = (
        "numpy.random's module-level functions share one hidden global "
        "MT19937 state: any import that seeds or draws from it perturbs "
        "every other user in the process, and parallel sweep workers "
        "inherit whatever state the parent left behind.  There is no "
        "allowlist — no module may use it."
    )
    fix_pattern = (
        "use numpy.random.Generator seeded from the derived stream: "
        "np.random.default_rng(derive_seed(seed, \"label\")), or draw via "
        "the random.Random returned by derive_rng."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.imports_module("numpy"):
            return
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.Attribute, ast.Name)):
                continue
            name = context.resolve(node)
            if name is None or not name.startswith("numpy.random."):
                continue
            attr = name.split("numpy.random.", 1)[1].split(".")[0]
            if attr not in _NUMPY_LEGACY:
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                node.lineno,
                node.col_offset,
                f"numpy.random.{attr} touches the legacy global RNG state; "
                f"use np.random.default_rng(derive_seed(...)) instead",
            )


@register_rule
class _Det003WallClock(Rule):
    rule_id = "DET003"
    title = "wall-clock read outside the provenance/profiling allowlist"
    rationale = (
        "Simulation state must advance only on the EventScheduler's "
        "virtual clock; a wall-clock read (time.time, perf_counter, "
        "datetime.now, ...) that feeds simulation state or artifacts "
        "makes outputs depend on host speed and load.  Wall clocks are "
        "legitimate only for provenance and profiling — manifests, the "
        "task ledger, perf timing, budget guards — which the "
        "[tool.repro-lint] DET003 allowlist enumerates."
    )
    fix_pattern = (
        "inside simulation/analysis code, take the current time from the "
        "scheduler (engine.now) or thread it in as a parameter; timing "
        "for provenance belongs in the allowlisted modules "
        "(experiments/store.py, experiments/ledger.py, perf/, ...)."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node, name in _calls(context):
            if name is None or name not in _WALL_CLOCK:
                continue
            if not context.imports_module(name.split(".")[0]):
                continue
            yield Finding(
                node.lineno,
                node.col_offset,
                f"wall-clock read {name}() outside the allowlisted "
                f"provenance/profiling modules",
            )


def _is_set_expression(node: ast.AST, context: FileContext) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return context.resolve(node.func) in {"set", "frozenset"}
    return False


@register_rule
class _Det004SetIteration(Rule):
    rule_id = "DET004"
    title = "iteration over an unsorted set/frozenset"
    rationale = (
        "Set iteration order depends on insertion history and, for "
        "strings, on PYTHONHASHSEED — so the same data iterates in a "
        "different order in every sweep worker process.  When that order "
        "feeds output rows, RNG draw sequence, or filesystem writes, "
        "replicas of the same seed stop being byte-identical."
    )
    fix_pattern = (
        "iterate sorted(the_set) — or keep a list/dict (insertion-ordered) "
        "when order of first appearance is the contract."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()

        def flag(node: ast.AST, what: str) -> Iterator[Finding]:
            key = (node.lineno, node.col_offset)
            if key not in seen:
                seen.add(key)
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"{what} iterates a set in hash/insertion order "
                    f"(PYTHONHASHSEED-dependent for strings); wrap in sorted()",
                )

        for node in ast.walk(context.tree):
            if isinstance(node, ast.For) and _is_set_expression(node.iter, context):
                yield from flag(node.iter, "for loop")
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                                   ast.GeneratorExp)):
                for generator in node.generators:
                    if _is_set_expression(generator.iter, context):
                        yield from flag(generator.iter, "comprehension")
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "join"
                and node.args
                and _is_set_expression(node.args[0], context)
            ):
                yield from flag(node.args[0], "str.join")


@register_rule
class _Det005UnsortedScan(Rule):
    rule_id = "DET005"
    title = "unsorted filesystem scan (glob/iterdir/listdir) consumed directly"
    rationale = (
        "glob, rglob, iterdir, os.listdir, and os.scandir return entries "
        "in filesystem order — which differs between ext4, tmpfs, and "
        "object-store mounts, and even between runs after deletions.  Any "
        "loop or aggregation over the raw result makes artifacts depend "
        "on which disk produced them."
    )
    fix_pattern = (
        "wrap the scan in sorted(...) at the call site — "
        "for path in sorted(directory.glob(\"seed_*.json\")): ... — and "
        "sort numerically when names carry numbers."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node, name in _calls(context):
            if name in _FS_SCAN_FUNCTIONS and not context.imports_module("os"):
                continue
            is_scan = name in _FS_SCAN_FUNCTIONS or (
                isinstance(node.func, ast.Attribute)
                and node.func.attr in _FS_SCAN_METHODS
            )
            if not is_scan:
                continue
            parent = context.parent(node)
            if (
                isinstance(parent, ast.Call)
                and context.resolve(parent.func) == "sorted"
            ):
                continue
            scan = (
                name if name in _FS_SCAN_FUNCTIONS
                else node.func.attr  # type: ignore[union-attr]
            )
            yield Finding(
                node.lineno,
                node.col_offset,
                f"{scan}() result used without sorted(); filesystem "
                f"enumeration order is not deterministic",
            )


@register_rule
class _Det006EnvironRead(Rule):
    rule_id = "DET006"
    title = "environment read outside CLI/config entry points"
    rationale = (
        "os.environ reads buried in library code are invisible inputs: "
        "two hosts with different environments silently produce different "
        "results from the same seed and spec.  Environment access is "
        "allowed only at the process boundary — CLI entry points and "
        "benchmark conftests named in the [tool.repro-lint] DET006 "
        "allowlist — which must turn it into explicit parameters."
    )
    fix_pattern = (
        "read the variable once at the entry point and pass the value "
        "down as a function argument or config field."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        if not context.imports_module("os"):
            return
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(context.tree):
            name: Optional[str] = None
            if isinstance(node, (ast.Attribute, ast.Name)):
                resolved = context.resolve(node)
                if resolved is not None and (
                    resolved in {"os.environ", "os.environb", "os.getenv",
                                 "os.putenv"}
                    or resolved.startswith("os.environ.")
                    or resolved.startswith("os.environb.")
                ):
                    name = resolved
            if name is None:
                continue
            key = (node.lineno, node.col_offset)
            if key in seen:
                continue
            seen.add(key)
            yield Finding(
                node.lineno,
                node.col_offset,
                f"{name} read outside a CLI/config entry point; pass the "
                f"value in explicitly",
            )


@register_rule
class _Con001FrozenMutation(Rule):
    rule_id = "CON001"
    title = "frozen-dataclass mutation outside __init__/__post_init__"
    rationale = (
        "object.__setattr__ is the sanctioned escape hatch for frozen "
        "dataclasses to normalise fields during construction — and only "
        "then.  A mutation after construction breaks the immutability "
        "the rest of the code relies on (hash stability, safe sharing "
        "across sweep workers, cache keys)."
    )
    fix_pattern = (
        "return a new instance instead (dataclasses.replace or an "
        "evolve() method); keep object.__setattr__ calls inside __init__ "
        "or __post_init__ only."
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        allowed = {"__init__", "__post_init__", "__setstate__"}

        def walk(node: ast.AST, stack: tuple[str, ...]) -> Iterator[Finding]:
            for child in ast.iter_child_nodes(node):
                child_stack = stack
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    child_stack = stack + (child.name,)
                if (
                    isinstance(child, ast.Call)
                    and context.resolve(child.func) == "object.__setattr__"
                    and (not stack or stack[-1] not in allowed)
                ):
                    yield Finding(
                        child.lineno,
                        child.col_offset,
                        "object.__setattr__ outside __init__/__post_init__ "
                        "mutates a frozen dataclass after construction",
                    )
                yield from walk(child, child_stack)

        yield from walk(context.tree, ())


@register_rule
class _Err001BareException(Rule):
    rule_id = "ERR001"
    title = "bare Exception/ValueError/RuntimeError raised in library code"
    rationale = (
        "The CLI promises one clean line per expected failure: it catches "
        "ExperimentError/ConfigurationError and prints them without a "
        "traceback, while everything else is treated as an internal bug "
        "and propagates with its stack.  Raising a bare builtin in "
        "CLI-reachable code therefore turns an expected, explainable "
        "failure into a traceback dump."
    )
    fix_pattern = (
        "raise the most specific repro.errors class (ConfigurationError "
        "for bad parameters, ExperimentError for unknown ids/scales, "
        "...); add a new ReproError subclass rather than reusing a "
        "builtin.  (TypeError for constructor-signature misuse is exempt.)"
    )

    def check(self, context: FileContext) -> Iterator[Finding]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            target = exc.func if isinstance(exc, ast.Call) else exc
            name = context.resolve(target)
            if name in _BARE_EXCEPTIONS:
                yield Finding(
                    node.lineno,
                    node.col_offset,
                    f"raise {name} in library code; raise a repro.errors "
                    f"class so the CLI reports it as one line",
                )
