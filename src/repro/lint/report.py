"""Violations and lint reports: the analyzer's output model.

A :class:`Violation` is one rule firing at one source location; a
:class:`LintReport` is the deterministic, sorted collection of every
violation the analyzer found over a file set, plus scan statistics.  The
JSON schema (``LintReport.to_dict``) is versioned and round-trips through
:meth:`LintReport.from_dict`, so CI can archive reports as artifacts and
tooling can diff them across revisions.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Mapping

from repro.errors import ExperimentError

#: bumped whenever the JSON report layout changes incompatibly
REPORT_SCHEMA_VERSION = 1


@dataclasses.dataclass(frozen=True, order=True)
class Violation:
    """One rule firing at one source location.

    Ordered by ``(path, line, column, rule_id)`` so reports are stable
    regardless of rule registration or filesystem walk order.
    """

    path: str  #: file path, POSIX-style, relative to the lint root
    line: int  #: 1-based source line
    column: int  #: 0-based column offset (ast convention)
    rule_id: str  #: e.g. ``DET003``
    message: str  #: one-line description of this occurrence

    def render(self) -> str:
        """``path:line:col: RULE message`` — one grep-able line."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule_id} {self.message}"

    def to_dict(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping) -> "Violation":
        return cls(
            path=str(payload["path"]),
            line=int(payload["line"]),
            column=int(payload["column"]),
            rule_id=str(payload["rule_id"]),
            message=str(payload["message"]),
        )


@dataclasses.dataclass(frozen=True)
class LintReport:
    """Everything one analyzer pass found, in deterministic order."""

    violations: tuple[Violation, ...]
    files_scanned: int
    suppressed: int  #: violations silenced by inline ``# repro: allow[...]``
    allowed: int  #: violations silenced by a config path allowlist

    @property
    def ok(self) -> bool:
        """True iff the scanned tree honours every rule."""
        return not self.violations

    def counts(self) -> dict[str, int]:
        """Violations per rule id, only rules that fired, sorted by id."""
        counts: dict[str, int] = {}
        for violation in self.violations:
            counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict:
        """The versioned JSON payload (sorted keys when dumped)."""
        return {
            "version": REPORT_SCHEMA_VERSION,
            "files_scanned": self.files_scanned,
            "suppressed": self.suppressed,
            "allowed": self.allowed,
            "counts": self.counts(),
            "violations": [v.to_dict() for v in self.violations],
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"

    @classmethod
    def from_dict(cls, payload: Mapping) -> "LintReport":
        version = payload.get("version")
        if version != REPORT_SCHEMA_VERSION:
            raise ExperimentError(
                f"unsupported lint report version {version!r} "
                f"(this build reads version {REPORT_SCHEMA_VERSION})"
            )
        return cls(
            violations=tuple(
                Violation.from_dict(entry) for entry in payload["violations"]
            ),
            files_scanned=int(payload["files_scanned"]),
            suppressed=int(payload.get("suppressed", 0)),
            allowed=int(payload.get("allowed", 0)),
        )

    def render_text(self) -> str:
        """The human report: one line per violation plus a summary line."""
        lines = [violation.render() for violation in self.violations]
        if self.violations:
            per_rule = ", ".join(
                f"{rule}={count}" for rule, count in self.counts().items()
            )
            lines.append(
                f"{len(self.violations)} violation(s) in {self.files_scanned} "
                f"file(s) [{per_rule}]"
            )
        else:
            lines.append(
                f"clean: {self.files_scanned} file(s), 0 violations "
                f"({self.suppressed} suppressed inline, "
                f"{self.allowed} allowed by config)"
            )
        return "\n".join(lines)
