"""repro.lint — the determinism-contract static analyzer.

The repo's correctness story rests on byte-identical replays: every
random draw flows through :func:`repro.sim.rng.derive_rng`, simulation
state never reads wall clocks, filesystem scans are sorted, and expected
failures surface as :class:`repro.errors.ReproError` subclasses.  This
package encodes those conventions as named AST rules and runs them as a
repo-wide gate::

    from repro.lint import lint_paths
    report = lint_paths(["src", "benchmarks"])
    assert report.ok, report.render_text()

or from the shell: ``mpil-experiments lint src benchmarks``.

Rules (``mpil-experiments lint --explain RULE`` for rationale and fix):

========  ==========================================================
DET001    stdlib ``random`` used directly instead of ``derive_rng``
DET002    legacy NumPy global RNG (``np.random.seed``/``rand*``)
DET003    wall-clock read outside the provenance/profiling allowlist
DET004    iteration over an unsorted ``set``/``frozenset``
DET005    unsorted filesystem scan (``glob``/``iterdir``/``listdir``)
DET006    environment read outside CLI/config entry points
CON001    frozen-dataclass mutation outside ``__init__``/``__post_init__``
ERR001    bare ``Exception``/``ValueError``/``RuntimeError`` raised
========  ==========================================================

Exemptions are explicit and reviewable: per-line
``# repro: allow[DET003] reason`` suppressions, or path allowlists under
``[tool.repro-lint]`` in ``pyproject.toml`` (see :mod:`repro.lint.config`).
"""

from __future__ import annotations

from repro.lint.config import LintConfig, find_pyproject, load_config
from repro.lint.engine import SYNTAX_RULE_ID, lint_file, lint_paths
from repro.lint.report import REPORT_SCHEMA_VERSION, LintReport, Violation
from repro.lint.rules import FileContext, Rule, all_rules, get_rule

__all__ = [
    "FileContext",
    "LintConfig",
    "LintReport",
    "REPORT_SCHEMA_VERSION",
    "Rule",
    "SYNTAX_RULE_ID",
    "Violation",
    "all_rules",
    "find_pyproject",
    "get_rule",
    "lint_file",
    "lint_paths",
    "load_config",
]
