"""repro.api — the one-stop facade over the experiment layer.

Four verbs cover the workflow end to end:

- :func:`list_experiments` — registered specs with their metadata (tags,
  paper figure, scenario family), optionally filtered by tags;
- :func:`run` — one experiment (by id, or an unregistered
  :class:`~repro.experiments.spec.ExperimentSpec`) at one seed;
- :func:`sweep` — experiments x seeds across a crash-tolerant worker
  pool, persisting replicates, a durable task ledger, and aggregates
  through a :class:`~repro.experiments.store.ResultStore`;
  ``resume=True`` re-runs only what an interrupted sweep left behind;
- :func:`sweep_status` — a sweep's ledger rows (task states, attempts,
  checksums) without running anything;
- :func:`compose` — build a runnable spec from a declarative TOML file or
  dict (see :mod:`repro.experiments.compose`), no module required;
- :func:`telemetry` — run one experiment with span recording on and get
  back the result together with its span stream and metrics snapshot
  (see :mod:`repro.telemetry`); the run itself is byte-identical to an
  untraced one;
- :func:`lint` — run the determinism-contract static analyzer
  (:mod:`repro.lint`) over source trees and return the
  :class:`~repro.lint.report.LintReport` the CI gate checks.

Example::

    from repro import api

    print([spec.experiment_id for spec in api.list_experiments(tags=("ext",))])
    result = api.run("fig9", scale="smoke", seed=1)
    report = api.sweep(["fig9", "tab1"], seeds="0..3", scale="smoke", jobs=2,
                       store="results")
    # interrupted?  finish what's missing, skip what's verified complete:
    report = api.sweep(["fig9", "tab1"], seeds="0..3", scale="smoke", jobs=2,
                       store="results", resume=True)
    custom = api.compose("severity-sweep.toml")
    print(api.run(custom, scale="smoke").table())

Composed specs can also be registered (``api.compose(path,
register_spec=True)``) so they resolve by id like any built-in — which is
what the ``mpil-experiments compose`` command does before routing the run
through the result store.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.compose import compose_spec, load_spec_file
from repro.experiments.ledger import TaskRow
from repro.experiments.registry import (
    get_spec,
    list_experiments as _registry_list,
    register,
    run_experiment,
    unregister,
)
from repro.experiments.runner import SweepReport, SweepSpec, parse_seeds, run_sweep
from repro.experiments.scales import (
    Scale,
    all_scales,
    get_scale,
    register_scale,
    unregister_scale,
    with_service_overrides,
)
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore
from repro.lint import LintConfig, LintReport, lint_paths as _lint_paths
from repro.telemetry import SpanRecorder, Telemetry

__all__ = [
    "ExperimentResult",
    "ExperimentSpec",
    "LintConfig",
    "LintReport",
    "Scale",
    "SweepReport",
    "TelemetryRun",
    "compose",
    "get",
    "get_scale",
    "lint",
    "list_experiments",
    "register",
    "register_scale",
    "run",
    "scales",
    "serve",
    "sweep",
    "sweep_status",
    "telemetry",
    "unregister",
    "unregister_scale",
]


def scales() -> list[Scale]:
    """Every known scale rung — built-in and registered — sorted by name.

    This (with :func:`get_scale` and :func:`register_scale`) is the
    supported way to work with rungs; reaching into
    ``experiments.scales.SCALES`` only sees the built-ins.

    >>> from repro import api
    >>> [s.name for s in api.scales()][:3]
    ['default', 'large', 'massive']
    """
    return list(all_scales())


def list_experiments(tags: Iterable[str] = ()) -> list[ExperimentSpec]:
    """Registered experiment specs, optionally filtered by tags.

    >>> from repro import api
    >>> all(spec.matches_tags(("ext",)) for spec in api.list_experiments(("ext",)))
    True
    """
    return _registry_list(tags)


def run(
    experiment: Union[str, ExperimentSpec],
    scale: Union[str, Scale] = "default",
    seed: int = 0,
) -> ExperimentResult:
    """Run one experiment — a registered id or a composed spec."""
    if isinstance(experiment, ExperimentSpec):
        return experiment.run(scale=scale, seed=seed)
    return run_experiment(experiment, scale=scale, seed=seed)


def serve(
    experiment: str = "svc-steady",
    scale: Union[str, Scale] = "default",
    seed: int = 0,
    rate: Optional[float] = None,
    duration: Optional[float] = None,
    window: Optional[float] = None,
) -> ExperimentResult:
    """Run a sustained-traffic service experiment, like the CLI ``serve``.

    Service experiments (ids ``svc-*``, tag ``service``) replay an
    open-loop arrival stream against a perturbed overlay and report
    per-window p50/p95/p99 discovery latency, throughput, in-flight
    depth, and SLO verdicts (see :mod:`repro.service`).  ``rate``,
    ``duration``, and ``window`` override the scale preset's traffic
    knobs; ``None`` keeps the preset's value.

    >>> from repro import api
    >>> result = api.serve("svc-steady", scale="smoke", rate=0.2)
    >>> "latency_p99" in result.columns
    True
    """
    spec = get_spec(experiment) if isinstance(experiment, str) else experiment
    if "service" not in spec.tags:
        raise ExperimentError(
            f"{spec.experiment_id!r} is not a service-mode experiment; "
            f"pick one tagged 'service' (api.list_experiments(('service',)))"
        )
    return spec.run(
        scale=with_service_overrides(
            scale, rate=rate, duration=duration, window=window
        ),
        seed=seed,
    )


def sweep(
    experiments: Union[str, Iterable[str]],
    seeds: Union[str, Iterable[int]] = "0..9",
    scale: str = "default",
    jobs: int = 1,
    store: Union[ResultStore, str, pathlib.Path, None] = None,
    resume: bool = False,
    max_retries: int = 2,
    task_timeout: Optional[float] = None,
) -> SweepReport:
    """Run registered experiments over a seed set, like the CLI ``sweep``.

    ``seeds`` accepts the CLI's spec syntax (``"0..9"``, ``"0,2,5"``,
    ``"7"``) or an iterable of ints; ``store`` may be a
    :class:`~repro.experiments.store.ResultStore`, a directory path, or
    ``None`` to keep results in memory only.  With a store the sweep is
    durable (sqlite task ledger, crash-tolerant workers, atomic artifact
    commits): ``resume=True`` skips verified-complete tasks from an
    earlier interrupted call, ``max_retries``/``task_timeout`` bound
    crashed and hung workers.
    """
    if isinstance(experiments, str):
        experiments = (experiments,)
    if isinstance(seeds, str):
        seed_tuple = parse_seeds(seeds)
    else:
        seed_tuple = tuple(seeds)
    if isinstance(store, (str, pathlib.Path)):
        store = ResultStore(store)
    spec = SweepSpec(
        experiment_ids=tuple(experiments), seeds=seed_tuple, scale=scale
    )
    return run_sweep(
        spec,
        store,
        jobs=jobs,
        resume=resume,
        max_retries=max_retries,
        task_timeout=task_timeout,
    )


def sweep_status(
    store: Union[ResultStore, str, pathlib.Path],
    experiment: Optional[str] = None,
    scale: Optional[str] = None,
) -> list[TaskRow]:
    """A sweep's ledger rows, like the CLI ``status`` (read-only).

    Each :class:`~repro.experiments.ledger.TaskRow` carries the task's
    state (``pending/running/done/failed``), attempt count, worker id,
    committed-artifact checksum, and last error.
    """
    if isinstance(store, (str, pathlib.Path)):
        store = ResultStore(store)
    return store.ledger.rows(experiment_id=experiment, scale=scale)


@dataclasses.dataclass(frozen=True)
class TelemetryRun:
    """What :func:`telemetry` returns: the result plus its observations.

    ``spans`` is the full :class:`~repro.telemetry.SpanRecorder` (iterate
    it, filter with ``spans.spans(...)``, or export via
    :mod:`repro.telemetry.sinks`); ``metrics`` is the run registry's final
    deterministic snapshot.
    """

    result: ExperimentResult
    spans: SpanRecorder
    metrics: dict


def telemetry(
    experiment: Union[str, ExperimentSpec],
    scale: Union[str, Scale] = "default",
    seed: int = 0,
    max_spans: Optional[int] = 200_000,
) -> TelemetryRun:
    """Run one experiment with span recording on (the ``trace`` command's
    programmatic face).

    Tracing never perturbs the run: the result is byte-identical to
    :func:`run` with the same arguments.  ``max_spans`` bounds the
    recorder (excess spans are counted in ``spans.dropped``, not silently
    lost); ``None`` removes the cap.

    >>> from repro import api
    >>> traced = api.telemetry("fig9", scale="smoke", seed=1)
    >>> traced.result == api.run("fig9", scale="smoke", seed=1)
    True
    >>> len(traced.spans) > 0
    True
    """
    handle = Telemetry.with_spans(max_spans=max_spans)
    spec = get_spec(experiment) if isinstance(experiment, str) else experiment
    result = spec.run(scale=scale, seed=seed, telemetry=handle)
    assert handle.spans is not None
    return TelemetryRun(
        result=result, spans=handle.spans, metrics=handle.metrics.snapshot()
    )


def compose(
    source: Union[Mapping, str, pathlib.Path],
    register_spec: bool = False,
) -> ExperimentSpec:
    """Build an :class:`ExperimentSpec` from a TOML/JSON file or a dict.

    With ``register_spec=True`` the composed spec is also added to the
    registry (duplicate ids rejected), so it resolves by id in
    :func:`run` and — within this process — :func:`sweep`; remove it
    again with :func:`unregister`.  Runtime registrations live only in
    the registering process: sweep composed specs with ``jobs=1``, or on
    a fork-based platform (Linux), where pool workers inherit them —
    spawn-based workers (macOS/Windows) re-import the registry and see
    only the built-ins.
    """
    if isinstance(source, (str, pathlib.Path)):
        source = load_spec_file(source)
    spec = compose_spec(source)
    if register_spec:
        register(spec)
    return spec


def get(experiment_id: str) -> ExperimentSpec:
    """The registered spec for an id (metadata access without running)."""
    return get_spec(experiment_id)


def lint(
    paths: Iterable[Union[str, pathlib.Path]] = ("src", "benchmarks"),
    config: Optional[LintConfig] = None,
    rules: Optional[Iterable[str]] = None,
) -> LintReport:
    """Run the determinism-contract analyzer, like the CLI ``lint``.

    ``config=None`` auto-discovers the nearest ``pyproject.toml``'s
    ``[tool.repro-lint]`` allowlists; ``rules`` restricts the pass to the
    named rule ids.  The returned report is deterministic (sorted
    violations) and ``report.ok`` is the CI gate condition.

    >>> from repro import api
    >>> api.lint(["src/repro/sim"]).ok
    True
    """
    return _lint_paths(
        list(paths),
        config=config,
        rules=list(rules) if rules is not None else None,
    )
