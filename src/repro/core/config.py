"""MPIL algorithm configuration.

Groups the knobs the paper names: ``max_flows`` (the message-carried flow
budget, Section 4.3), ``per_flow_replicas`` (replicas stored / local maxima
visited per flow, Section 4.4), duplicate suppression (Section 4.2 "a node
can either silently discard the message ... or forward the message again;
we explore both options"), plus reproduction-side choices that the paper
leaves open (tie-breaking among equal-metric candidates, which neighbor set
the local-maximum test ranges over, and which routing metric to use — the
latter two exist for ablations and default to the paper's behaviour).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError

TIE_BREAKS = ("random", "lowest-id")
LOCAL_MAX_RULES = ("all-neighbors", "unvisited-only")
METRIC_NAMES = ("common-digits", "prefix", "suffix")


@dataclasses.dataclass(frozen=True)
class MPILConfig:
    """Parameters of the MPIL insertion/lookup algorithm.

    Attributes
    ----------
    max_flows:
        Flow budget carried by each request ("max flows is an integer field
        in every message, and it is decreased each time a node creates an
        additional flow").  The total number of flows a request ever creates
        is bounded by this value.
    per_flow_replicas:
        For insertions, replicas stored per flow; for lookups, the number of
        local maxima a flow may pass before stopping.
    duplicate_suppression:
        When True a node silently discards a request it has already
        processed ("MPIL with DS"); when False it processes every copy
        ("MPIL without DS").
    tie_break:
        How to choose which equal-metric candidates receive the message when
        there are more candidates than allowed flows: ``"random"`` (default)
        or ``"lowest-id"`` (deterministic, useful in tests).
    local_max_rule:
        Neighbor set the local-maximum test ranges over.  The paper's
        pseudo-code compares against "all nodes in neighbor list"
        (``"all-neighbors"``, default); ``"unvisited-only"`` restricts to
        neighbors not yet on the message's route (ablation).
    metric:
        Routing metric name: ``"common-digits"`` (MPIL), ``"prefix"`` or
        ``"suffix"`` (Section 4.2 ablations).
    max_hops:
        Optional safety valve for timed simulations; ``None`` disables it.
        Static propagation terminates without it because routes only grow.
    """

    max_flows: int = 10
    per_flow_replicas: int = 5
    duplicate_suppression: bool = True
    tie_break: str = "random"
    local_max_rule: str = "all-neighbors"
    metric: str = "common-digits"
    max_hops: int | None = None

    def __post_init__(self) -> None:
        if self.max_flows < 1:
            raise ConfigurationError(
                f"max_flows must be >= 1 (the originator's own send consumes one flow), "
                f"got {self.max_flows}"
            )
        if self.per_flow_replicas < 1:
            raise ConfigurationError(
                f"per_flow_replicas must be >= 1, got {self.per_flow_replicas}"
            )
        if self.tie_break not in TIE_BREAKS:
            raise ConfigurationError(
                f"tie_break must be one of {TIE_BREAKS}, got {self.tie_break!r}"
            )
        if self.local_max_rule not in LOCAL_MAX_RULES:
            raise ConfigurationError(
                f"local_max_rule must be one of {LOCAL_MAX_RULES}, got {self.local_max_rule!r}"
            )
        if self.metric not in METRIC_NAMES:
            raise ConfigurationError(
                f"metric must be one of {METRIC_NAMES}, got {self.metric!r}"
            )
        if self.max_hops is not None and self.max_hops < 1:
            raise ConfigurationError(f"max_hops must be >= 1 or None, got {self.max_hops}")

    def replace(self, **changes) -> "MPILConfig":
        """Return a copy with the given fields replaced."""
        return dataclasses.replace(self, **changes)

    @property
    def replica_bound(self) -> int:
        """Paper's upper bound on replicas per insertion:
        ``max_flows * per_flow_replicas``."""
        return self.max_flows * self.per_flow_replicas
