"""Synchronous MPIL driver for static overlays.

This is the reproduction of the paper's first simulator: "a simulator
written in Python that simulates overlay-level routing ... a message-level
simulator, not a packet-level simulator" (Section 6).  All nodes are
online; message propagation is hop-ordered (a FIFO queue gives exact
breadth-first timing, equivalent to unit per-hop latency), which is all the
static experiments of Section 6.1 measure.

The driver owns:

- the overlay graph and node identifiers;
- the vectorised :class:`~repro.core.metric.NeighborMetricTable`;
- the global :class:`~repro.core.replicas.ReplicaDirectory`;
- traffic/duplicate/flow accounting per request.
"""

from __future__ import annotations

import collections
from typing import Optional, Sequence

from repro.core.config import MPILConfig
from repro.core.identifiers import Identifier, IdSpace
from repro.core.messages import KIND_INSERT, KIND_LOOKUP, MPILMessage
from repro.core.metric import NeighborMetricTable, metric_by_name
from repro.core.replicas import ReplicaDirectory
from repro.core.results import InsertResult, LookupResult
from repro.core.routing import decide_forwarding
from repro.errors import ConfigurationError, RoutingError
from repro.overlay.graph import OverlayGraph
from repro.sim.engine import add_events_processed
from repro.sim.rng import derive_rng
from repro.sim.trace import TraceRecorder
from repro.telemetry import current as current_telemetry
from repro.util.cache import BoundedCache

#: node identifiers are a pure function of (seed, n, space); sweeps and
#: repeated runs over the same cell share one tuple
_IDS_CACHE: BoundedCache[tuple] = BoundedCache(maxsize=32)
#: neighbor metric tables are pure functions of (overlay, ids, metric);
#: keyed by identity of objects the entry itself keeps alive
_METRIC_TABLE_CACHE: BoundedCache[tuple] = BoundedCache(maxsize=12)


def _cached_node_ids(space: IdSpace, n: int, seed: object) -> tuple[Identifier, ...]:
    return _IDS_CACHE.get_or_build(
        (repr(seed), n, space),
        lambda: tuple(space.random_unique_identifiers(n, derive_rng(seed, "node-ids", n))),
    )


def _cached_metric_table(
    overlay: OverlayGraph, ids: tuple[Identifier, ...], metric_name: str
) -> NeighborMetricTable:
    # the entry holds the overlay and ids so the id()-based key stays valid
    # for exactly as long as the entry lives
    return _METRIC_TABLE_CACHE.get_or_build(
        (id(overlay), id(ids), metric_name),
        lambda: (
            overlay,
            ids,
            NeighborMetricTable(overlay, ids, metric=metric_by_name(metric_name)),
        ),
    )[2]


class MPILNetwork:
    """A static overlay running the MPIL insertion/lookup protocol.

    Parameters
    ----------
    overlay:
        Any :class:`OverlayGraph` (the algorithm is overlay-independent).
    space:
        Identifier space (default: the paper's 160-bit base-16 space).
    ids:
        Optional explicit node identifiers; drawn uniformly at random
        (distinct) when omitted.
    config:
        :class:`MPILConfig` defaults for insert/lookup operations; individual
        calls may override ``max_flows`` and ``per_flow_replicas``.
    seed:
        Root seed for identifier generation and tie-break randomness.
    """

    def __init__(
        self,
        overlay: OverlayGraph,
        space: IdSpace = IdSpace(),
        ids: Optional[Sequence[Identifier]] = None,
        config: MPILConfig = MPILConfig(),
        seed: object = 0,
        trace: Optional[TraceRecorder] = None,
    ):
        self.overlay = overlay
        self.space = space
        self.config = config
        self.seed = seed
        self.trace = trace
        if ids is None:
            self.ids: tuple[Identifier, ...] = _cached_node_ids(space, overlay.n, seed)
            share_table = True
        else:
            if len(ids) != overlay.n:
                raise ConfigurationError(
                    f"{len(ids)} identifiers supplied for {overlay.n} nodes"
                )
            for identifier in ids:
                if identifier.space != space:
                    raise ConfigurationError(
                        "explicit identifiers must live in the network's id space"
                    )
            # identity-keyed sharing only helps callers that reuse one ids
            # tuple (e.g. mpil_on_pastry passing the cached Pastry ids); a
            # fresh list/tuple per construction would guarantee misses while
            # churning useful entries out of the bounded cache
            share_table = isinstance(ids, tuple)
            self.ids = ids if share_table else tuple(ids)
        if share_table:
            self.metric_table = _cached_metric_table(overlay, self.ids, config.metric)
        else:
            self.metric_table = NeighborMetricTable(
                overlay, self.ids, metric=metric_by_name(config.metric)
            )
        self.directory = ReplicaDirectory()
        self._next_request_id = 0

    # -- public API ---------------------------------------------------------

    @property
    def request_counter(self) -> int:
        """Monotonic request id; each request's RNG stream derives from it.

        Callers that replay workloads on a shared network (the service
        drivers) snapshot and restore this so repeats see identical noise.
        """
        return self._next_request_id

    @request_counter.setter
    def request_counter(self, value: int) -> None:
        self._next_request_id = int(value)

    def random_object_id(self, rng) -> Identifier:
        """Draw a fresh object identifier from the network's id space."""
        return self.space.random_identifier(rng)

    def insert(
        self,
        origin: int,
        object_id: Identifier,
        owner: Optional[int] = None,
        max_flows: Optional[int] = None,
        per_flow_replicas: Optional[int] = None,
    ) -> InsertResult:
        """Insert a pointer for ``object_id`` starting from ``origin``.

        ``owner`` identifies the node that actually holds the object (the
        pointer target); it defaults to the origin.
        """
        self._check_node(origin)
        owner = origin if owner is None else owner
        run = self._run_request(
            kind=KIND_INSERT,
            origin=origin,
            object_id=object_id,
            owner=owner,
            max_flows=max_flows if max_flows is not None else self.config.max_flows,
            per_flow_replicas=(
                per_flow_replicas
                if per_flow_replicas is not None
                else self.config.per_flow_replicas
            ),
        )
        return InsertResult(
            object_id=object_id,
            origin=origin,
            owner=owner,
            replicas=tuple(sorted(run["stored"])),
            traffic=run["traffic"],
            duplicates=run["duplicates"],
            flows_created=run["flows"],
            max_hop=run["max_hop"],
        )

    def lookup(
        self,
        origin: int,
        object_id: Identifier,
        max_flows: Optional[int] = None,
        per_flow_replicas: Optional[int] = None,
    ) -> LookupResult:
        """Query for ``object_id`` starting from ``origin``."""
        self._check_node(origin)
        run = self._run_request(
            kind=KIND_LOOKUP,
            origin=origin,
            object_id=object_id,
            owner=origin,
            max_flows=max_flows if max_flows is not None else self.config.max_flows,
            per_flow_replicas=(
                per_flow_replicas
                if per_flow_replicas is not None
                else self.config.per_flow_replicas
            ),
        )
        replies = tuple(run["replies"])
        return LookupResult(
            object_id=object_id,
            origin=origin,
            success=bool(replies),
            first_reply_hop=replies[0][1] if replies else None,
            replies=replies,
            traffic=run["traffic"],
            traffic_at_first_reply=run["traffic_at_first_reply"],
            duplicates=run["duplicates"],
            flows_created=run["flows"],
        )

    def delete(self, object_id: Identifier) -> int:
        """Remove every replica of an object from the directory.

        The full deletion *protocol* (heartbeats + explicit delete messages,
        Section 4.4) lives in :class:`repro.core.heartbeats.HeartbeatService`;
        this method is the directory-level primitive it uses.
        """
        return self.directory.remove_object(object_id)

    # -- request propagation -------------------------------------------------

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.overlay.n:
            raise RoutingError(f"node index {node} out of range (n={self.overlay.n})")

    def _run_request(
        self,
        kind: str,
        origin: int,
        object_id: Identifier,
        owner: int,
        max_flows: int,
        per_flow_replicas: int,
    ) -> dict:
        """Propagate one request to quiescence and return its accounting."""
        request_id = self._next_request_id
        self._next_request_id += 1
        rng = derive_rng(self.seed, "request", request_id)
        cfg = self.config

        telemetry = current_telemetry()
        spans = telemetry.spans  # None unless the run opted into tracing

        queue: collections.deque[MPILMessage] = collections.deque()
        queue.append(
            MPILMessage(
                kind=kind,
                request_id=request_id,
                object_id=object_id,
                origin=origin,
                owner=owner,
                at=origin,
                route=(),
                max_flows=max_flows,
                replicas_left=per_flow_replicas,
                hop=0,
                given_flows=0,
            )
        )
        # span ids of the "send" spans that delivered each queued message,
        # kept in lockstep with ``queue`` (only when tracing is on)
        parents: collections.deque[Optional[int]] = collections.deque()
        trace_id = ""
        if spans is not None:
            trace_id = spans.begin_trace(kind)
            parents.append(
                spans.emit(
                    trace_id,
                    kind,
                    node=origin,
                    start=0.0,
                    request=request_id,
                    object=str(object_id),
                )
            )

        processed: set[int] = set()
        received: set[int] = set()
        stored: list[int] = []
        replies: list[tuple[int, int]] = []
        traffic = 0
        traffic_at_first_reply: Optional[int] = None
        duplicates = 0
        flows = 0
        max_hop = 0
        events = 0
        metric_table = self.metric_table
        scores_with_self = metric_table.scores_with_self
        neighbor_list = metric_table.neighbor_list
        directory = self.directory
        is_lookup = kind == KIND_LOOKUP
        suppress = cfg.duplicate_suppression

        while queue:
            msg = queue.popleft()
            node = msg.at
            events += 1
            if msg.hop > max_hop:
                max_hop = msg.hop
            parent_id = parents.popleft() if spans is not None else None

            if node in received:
                duplicates += 1
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "dup-drop" if suppress else "dup",
                        node=node,
                        start=float(msg.hop),
                        parent_id=parent_id,
                        request=request_id,
                    )
                if suppress:
                    continue
            received.add(node)
            if suppress and node in processed:
                continue
            processed.add(node)

            if is_lookup and directory.has(node, object_id):
                # "each recipient node checks to see it has the object; if it
                # does, it stops forwarding the query and replies back
                # directly to the querying node."
                replies.append((node, msg.hop))
                if traffic_at_first_reply is None:
                    traffic_at_first_reply = traffic
                if self.trace is not None:
                    self.trace.emit(msg.hop, "reply", node, request=request_id)
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "reply",
                        node=node,
                        start=float(msg.hop),
                        parent_id=parent_id,
                        request=request_id,
                        hop=msg.hop,
                    )
                continue

            scores = scores_with_self(node, object_id)
            excluded = set(msg.route)
            excluded.add(node)
            decision = decide_forwarding(
                self_score=scores[0],
                neighbor_ids=neighbor_list(node),
                neighbor_scores=scores[1:],
                excluded=excluded,
                max_flows=msg.max_flows,
                given_flows=msg.given_flows,
                rng=rng,
                tie_break=cfg.tie_break,
                local_max_rule=cfg.local_max_rule,
            )

            replicas_left = msg.replicas_left
            if decision.is_local_max:
                if not is_lookup:
                    directory.store(node, object_id, owner, hop=msg.hop)
                    if node not in stored:
                        stored.append(node)
                    if self.trace is not None:
                        self.trace.emit(msg.hop, "store", node, request=request_id)
                    if spans is not None:
                        spans.emit(
                            trace_id,
                            "store",
                            node=node,
                            start=float(msg.hop),
                            parent_id=parent_id,
                            request=request_id,
                        )
                replicas_left -= 1
                if replicas_left <= 0:
                    continue

            if not decision.next_hops:
                continue

            flows += decision.new_flows
            for next_node, budget in zip(decision.next_hops, decision.budgets):
                traffic += 1
                child = msg.child(next_node, budget)
                child.replicas_left = replicas_left
                queue.append(child)
                if self.trace is not None:
                    self.trace.emit(
                        msg.hop, "send", node, to=next_node, request=request_id
                    )
                if spans is not None:
                    parents.append(
                        spans.emit(
                            trace_id,
                            "send",
                            node=node,
                            start=float(msg.hop),
                            end=float(msg.hop + 1),
                            parent_id=parent_id,
                            to=next_node,
                            request=request_id,
                        )
                    )

        add_events_processed(events)
        metrics = telemetry.metrics
        metrics.inc("mpil_requests_total", kind=kind)
        if traffic:
            metrics.inc("mpil_messages_total", traffic, kind=kind)
        if duplicates:
            metrics.inc("mpil_duplicates_total", duplicates, kind=kind)
        if is_lookup:
            if replies:
                metrics.inc("mpil_replies_total", len(replies))
        elif stored:
            metrics.inc("mpil_replicas_stored_total", len(stored))
        metrics.histogram("mpil_request_max_hop", kind=kind).observe(max_hop)
        return {
            "stored": stored,
            "replies": replies,
            "traffic": traffic,
            "traffic_at_first_reply": traffic_at_first_reply,
            "duplicates": duplicates,
            "flows": flows,
            "max_hop": max_hop,
        }
