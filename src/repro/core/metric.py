"""Routing metrics and vectorised neighbor metric tables.

MPIL's metric (Section 4.1) counts the digits two identifiers share at the
same positions.  For the ablation study motivated by Section 4.2 ("The
effectiveness of such redundancy is limited for prefix and suffix routing
due to the lower distinguishability of their routing metrics") we also
implement prefix-length and suffix-length metrics behind the same
interface, so the MPIL drivers can be run with any of the three.

``NeighborMetricTable`` precomputes, per overlay node, the digit matrix of
its neighbors; evaluating the metric against a target is then one NumPy
comparison, which is what makes the 16000-node experiments feasible in
Python.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.identifiers import Identifier
from repro.errors import ConfigurationError, RoutingError


def common_digits(a: Identifier, b: Identifier) -> int:
    """Module-level convenience alias for ``a.common_digits(b)``."""
    return a.common_digits(b)


class CommonDigitsMetric:
    """The MPIL routing metric: matching digits in matching positions."""

    name = "common-digits"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.common_digits(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Vectorised scores of every row of ``matrix`` against the target."""
        return (matrix == target_digits).sum(axis=1, dtype=np.int32)


class PrefixLengthMetric:
    """Length of the shared prefix, in digits (Pastry/Tapestry style)."""

    name = "prefix"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.prefix_match_len(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        mismatch = matrix != target_digits
        any_mismatch = mismatch.any(axis=1)
        first = mismatch.argmax(axis=1).astype(np.int32)
        full = np.int32(matrix.shape[1])
        return np.where(any_mismatch, first, full)


class SuffixLengthMetric:
    """Length of the shared suffix, in digits (Plaxton/early-Tapestry style)."""

    name = "suffix"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.suffix_match_len(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        mismatch = (matrix != target_digits)[:, ::-1]
        any_mismatch = mismatch.any(axis=1)
        first = mismatch.argmax(axis=1).astype(np.int32)
        full = np.int32(matrix.shape[1])
        return np.where(any_mismatch, first, full)


_METRICS = {
    CommonDigitsMetric.name: CommonDigitsMetric,
    PrefixLengthMetric.name: PrefixLengthMetric,
    SuffixLengthMetric.name: SuffixLengthMetric,
}


def metric_by_name(name: str):
    """Instantiate a metric from its configuration name."""
    try:
        return _METRICS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; choose from {sorted(_METRICS)}"
        ) from None


class NeighborMetricTable:
    """Per-node neighbor digit matrices for vectorised metric evaluation.

    Parameters
    ----------
    overlay:
        An :class:`repro.overlay.graph.OverlayGraph` (or anything exposing
        ``n`` and ``neighbors(i)``).
    ids:
        Sequence of :class:`Identifier`, one per overlay node.
    metric:
        A metric object (default :class:`CommonDigitsMetric`).
    """

    #: cap on the per-table (node, target) score memo; one routing decision
    #: list per entry, so this bounds memory at a few hundred MB worst case
    SCORE_CACHE_LIMIT = 200_000

    def __init__(self, overlay, ids: Sequence[Identifier], metric=None):
        if len(ids) != overlay.n:
            raise RoutingError(
                f"identifier list has {len(ids)} entries for {overlay.n} nodes"
            )
        self.overlay = overlay
        self.ids = tuple(ids)
        self.metric = metric if metric is not None else CommonDigitsMetric()
        num_digits = ids[0].space.num_digits if ids else 0
        # One shared (n, M) digit matrix; per-node matrices are fancy-indexed
        # views of it, with the node's own digits prepended as row 0 so one
        # vectorised metric call yields the self score and every neighbor
        # score together.
        if ids:
            all_digits = np.stack([identifier.digits_array for identifier in ids])
        else:  # pragma: no cover - empty overlays are rejected upstream
            all_digits = np.empty((0, num_digits), dtype=np.uint8)
        self._neighbor_ids: list[np.ndarray] = []
        self._neighbor_tuples: list[tuple[int, ...]] = []
        self._matrices: list[np.ndarray] = []
        self._matrices_with_self: list[np.ndarray] = []
        for node in range(overlay.n):
            neighbors = overlay.neighbors(node)
            self._neighbor_ids.append(np.asarray(neighbors, dtype=np.int64))
            self._neighbor_tuples.append(tuple(int(v) for v in neighbors))
            rows = (node,) + self._neighbor_tuples[-1]
            with_self = all_digits[list(rows)]
            self._matrices_with_self.append(with_self)
            self._matrices.append(with_self[1:])
        self._score_cache: dict[tuple[int, int], list[int]] = {}

    def neighbor_array(self, node: int) -> np.ndarray:
        """Neighbor indices of ``node`` aligned with :meth:`scores`."""
        return self._neighbor_ids[node]

    def neighbor_list(self, node: int) -> tuple[int, ...]:
        """Neighbor indices of ``node`` as plain Python ints (the form the
        forwarding decision consumes without per-element numpy casts)."""
        return self._neighbor_tuples[node]

    def scores(self, node: int, target: Identifier) -> np.ndarray:
        """Metric scores of every neighbor of ``node`` against ``target``."""
        return self.metric.scores_matrix(target.digits_array, self._matrices[node])

    def scores_with_self(self, node: int, target: Identifier) -> list[int]:
        """``[self_score, *neighbor_scores]`` as one memoised Python list.

        One vectorised metric evaluation covers the node and all of its
        neighbors; results are cached per ``(node, target)`` because the
        perturbation experiments re-route the same objects across many
        scenario cells and protocol variants.  Callers must treat the
        returned list as read-only.
        """
        key = (node, target.value)
        cached = self._score_cache.get(key)
        if cached is None:
            if len(self._score_cache) >= self.SCORE_CACHE_LIMIT:
                self._score_cache.clear()
            cached = self.metric.scores_matrix(
                target.digits_array, self._matrices_with_self[node]
            ).tolist()
            self._score_cache[key] = cached
        return cached

    def self_score(self, node: int, target: Identifier) -> int:
        """Metric score of ``node`` itself against ``target``."""
        return int(self.metric.score(target, self.ids[node]))
