"""Routing metrics and vectorised neighbor metric tables.

MPIL's metric (Section 4.1) counts the digits two identifiers share at the
same positions.  For the ablation study motivated by Section 4.2 ("The
effectiveness of such redundancy is limited for prefix and suffix routing
due to the lower distinguishability of their routing metrics") we also
implement prefix-length and suffix-length metrics behind the same
interface, so the MPIL drivers can be run with any of the three.

``NeighborMetricTable`` precomputes, per overlay node, the digit matrix of
its neighbors; evaluating the metric against a target is then one NumPy
comparison, which is what makes the 16000-node experiments feasible in
Python.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.identifiers import Identifier
from repro.core.soa import NodeArrays
from repro.errors import ConfigurationError


def common_digits(a: Identifier, b: Identifier) -> int:
    """Module-level convenience alias for ``a.common_digits(b)``."""
    return a.common_digits(b)


class CommonDigitsMetric:
    """The MPIL routing metric: matching digits in matching positions."""

    name = "common-digits"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.common_digits(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        """Vectorised scores of every row of ``matrix`` against the target."""
        return (matrix == target_digits).sum(axis=1, dtype=np.int32)


class PrefixLengthMetric:
    """Length of the shared prefix, in digits (Pastry/Tapestry style)."""

    name = "prefix"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.prefix_match_len(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        mismatch = matrix != target_digits
        any_mismatch = mismatch.any(axis=1)
        first = mismatch.argmax(axis=1).astype(np.int32)
        full = np.int32(matrix.shape[1])
        return np.where(any_mismatch, first, full)


class SuffixLengthMetric:
    """Length of the shared suffix, in digits (Plaxton/early-Tapestry style)."""

    name = "suffix"

    def score(self, target: Identifier, candidate: Identifier) -> int:
        return target.suffix_match_len(candidate)

    def scores_matrix(self, target_digits: np.ndarray, matrix: np.ndarray) -> np.ndarray:
        mismatch = (matrix != target_digits)[:, ::-1]
        any_mismatch = mismatch.any(axis=1)
        first = mismatch.argmax(axis=1).astype(np.int32)
        full = np.int32(matrix.shape[1])
        return np.where(any_mismatch, first, full)


_METRICS = {
    CommonDigitsMetric.name: CommonDigitsMetric,
    PrefixLengthMetric.name: PrefixLengthMetric,
    SuffixLengthMetric.name: SuffixLengthMetric,
}


def metric_by_name(name: str):
    """Instantiate a metric from its configuration name."""
    try:
        return _METRICS[name]()
    except KeyError:
        raise ConfigurationError(
            f"unknown metric {name!r}; choose from {sorted(_METRICS)}"
        ) from None


class NeighborMetricTable:
    """Struct-of-arrays metric table: batched scoring over one shared matrix.

    The table is a thin façade over :class:`repro.core.soa.NodeArrays` — one
    shared ``(n, M)`` digit matrix plus the overlay's CSR adjacency.  There
    are no per-node matrix copies and no per-node construction loop, which
    is what makes 10^5-node populations affordable: building the table is a
    handful of vectorised array operations.

    Scoring is batched per *target*: the first query against a target
    evaluates the metric over the whole population in one vectorised pass
    (:meth:`scores_all`); every node's forwarding decision then gathers its
    ``[self, *neighbors]`` slice from that vector.  Results are integer-exact
    and byte-identical to scoring each node's matrix separately, because all
    three metrics are row-wise independent.

    Parameters
    ----------
    overlay:
        An :class:`repro.overlay.graph.OverlayGraph` (or anything exposing
        ``n`` and ``adjacency_arrays()``).
    ids:
        Sequence of :class:`Identifier`, one per overlay node.
    metric:
        A metric object (default :class:`CommonDigitsMetric`).
    """

    #: cap on the per-table (node, target) score memo; one routing decision
    #: list per entry, so this bounds memory at a few hundred MB worst case
    SCORE_CACHE_LIMIT = 200_000

    def __init__(self, overlay, ids: Sequence[Identifier], metric=None):
        self.arrays = NodeArrays(overlay, ids)
        self.overlay = overlay
        self.ids = self.arrays.ids
        self.metric = metric if metric is not None else CommonDigitsMetric()
        self._neighbor_tuples: dict[int, tuple[int, ...]] = {}
        self._score_cache: dict[tuple[int, int], list[int]] = {}
        # Full-population score vectors, keyed by target value.  Each entry
        # is 4n bytes, so the bound scales inversely with population size to
        # keep the cache's worst case in the same ballpark as the memo above.
        self._target_cache: dict[int, np.ndarray] = {}
        self._max_cached_targets = max(
            4, self.SCORE_CACHE_LIMIT // max(1, self.arrays.n)
        )

    def neighbor_array(self, node: int) -> np.ndarray:
        """Neighbor indices of ``node`` aligned with :meth:`scores`."""
        return self.arrays.neighbors(node)

    def neighbor_list(self, node: int) -> tuple[int, ...]:
        """Neighbor indices of ``node`` as plain Python ints (the form the
        forwarding decision consumes without per-element numpy casts).
        Materialised lazily per node from the CSR slice."""
        cached = self._neighbor_tuples.get(node)
        if cached is None:
            cached = tuple(self.arrays.neighbors(node).tolist())
            self._neighbor_tuples[node] = cached
        return cached

    def scores_all(self, target: Identifier) -> np.ndarray:
        """Metric scores of *every* node against ``target`` (one vectorised
        pass over the shared digit matrix, memoised per target).  Callers
        must treat the returned array as read-only."""
        vector = self._target_cache.get(target.value)
        if vector is None:
            if len(self._target_cache) >= self._max_cached_targets:
                self._target_cache.clear()
            vector = self.metric.scores_matrix(
                target.digits_array, self.arrays.digits
            )
            self._target_cache[target.value] = vector
        return vector

    def scores(self, node: int, target: Identifier) -> np.ndarray:
        """Metric scores of every neighbor of ``node`` against ``target``."""
        return self.scores_all(target)[self.arrays.neighbors(node)]

    def scores_with_self(self, node: int, target: Identifier) -> list[int]:
        """``[self_score, *neighbor_scores]`` as one memoised Python list.

        Gathered from the batched per-target vector (:meth:`scores_all`);
        results are cached per ``(node, target)`` because the perturbation
        experiments re-route the same objects across many scenario cells and
        protocol variants.  Callers must treat the returned list as
        read-only.
        """
        key = (node, target.value)
        cached = self._score_cache.get(key)
        if cached is None:
            if len(self._score_cache) >= self.SCORE_CACHE_LIMIT:
                self._score_cache.clear()
            cached = self.scores_all(target)[self.arrays.rows_ws(node)].tolist()
            self._score_cache[key] = cached
        return cached

    def self_score(self, node: int, target: Identifier) -> int:
        """Metric score of ``node`` itself against ``target``."""
        return int(self.metric.score(target, self.ids[node]))
