"""The deletion protocol of Section 4.4.

"Whenever a replica is placed in a node, the node sends a periodic
heartbeat to the owner of the original object.  When the originator wants
to delete a replica, it sends an explicit delete message to the node."

``HeartbeatService`` runs on the event engine: replica holders emit
heartbeats every ``period`` seconds; the owner accumulates the holder set
from the heartbeats it receives; ``delete`` sends explicit delete messages
to every holder the owner knows about (plus, optionally, holders it has not
heard from yet — the paper discusses "just one of" many possible designs,
and partial knowledge is inherent to it).  Holders whose heartbeats lapse
beyond ``failure_multiplier`` periods are dropped from the owner's view.
"""

from __future__ import annotations

import dataclasses

from repro.core.identifiers import Identifier
from repro.core.network import MPILNetwork
from repro.core.results import InsertResult
from repro.errors import SimulationError
from repro.sim.availability import AlwaysOnline, AvailabilityModel
from repro.sim.counters import TrafficCounters
from repro.sim.engine import EventScheduler


@dataclasses.dataclass
class _Registration:
    owner: int
    object_id: Identifier
    holders: set[int] = dataclasses.field(default_factory=set)
    last_heard: dict[int, float] = dataclasses.field(default_factory=dict)
    active: bool = True


class HeartbeatService:
    """Periodic replica heartbeats plus explicit deletion."""

    def __init__(
        self,
        network: MPILNetwork,
        engine: EventScheduler,
        period: float = 30.0,
        failure_multiplier: float = 3.0,
        availability: AvailabilityModel = AlwaysOnline(),
    ):
        if period <= 0:
            raise SimulationError(f"heartbeat period must be positive, got {period}")
        self.network = network
        self.engine = engine
        self.period = period
        self.failure_multiplier = failure_multiplier
        self.availability = availability
        self.counters = TrafficCounters()
        self._registrations: dict[int, _Registration] = {}

    def register_insert(self, result: InsertResult) -> None:
        """Start heartbeats for every replica created by an insertion."""
        reg = self._registrations.get(result.object_id.value)
        if reg is None:
            reg = _Registration(owner=result.owner, object_id=result.object_id)
            self._registrations[result.object_id.value] = reg
        for holder in result.replicas:
            self._schedule_heartbeat(reg, holder, first=True)

    def _schedule_heartbeat(self, reg: _Registration, holder: int, first: bool) -> None:
        delay = 0.0 if first else self.period

        def beat() -> None:
            if not reg.active:
                return
            if not self.network.directory.has(holder, reg.object_id):
                return  # replica deleted locally; stop beating
            if self.availability.is_online(holder, self.engine.now):
                self.counters.messages_sent += 1
                if self.availability.is_online(reg.owner, self.engine.now):
                    reg.holders.add(holder)
                    reg.last_heard[holder] = self.engine.now
            self._schedule_heartbeat(reg, holder, first=False)

        self.engine.schedule(delay, beat)

    def known_holders(self, object_id: Identifier) -> frozenset[int]:
        """Holders the owner currently believes exist (heartbeat view)."""
        reg = self._registrations.get(object_id.value)
        if reg is None:
            return frozenset()
        horizon = self.period * self.failure_multiplier
        now = self.engine.now
        return frozenset(
            holder
            for holder in reg.holders
            if now - reg.last_heard.get(holder, -float("inf")) <= horizon
        )

    def delete(self, object_id: Identifier, include_unknown: bool = False) -> int:
        """Owner-initiated deletion: explicit delete message per known holder.

        Returns the number of replicas removed.  With ``include_unknown``
        the directory's full holder set is swept as well (models an owner
        that also remembers the insert result).
        """
        reg = self._registrations.get(object_id.value)
        if reg is None:
            return 0
        targets = set(self.known_holders(object_id))
        if include_unknown:
            targets |= set(self.network.directory.holders(object_id))
        removed = 0
        for holder in targets:
            self.counters.messages_sent += 1
            if self.network.directory.remove(holder, object_id):
                removed += 1
        reg.active = False
        return removed
