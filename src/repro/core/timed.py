"""Event-driven MPIL driver for perturbed (dynamic-availability) overlays.

Reproduces the paper's Section 6.2 setting: MPIL running over a structured
overlay's neighbor lists *without any maintenance*.  Messages take real
(simulated) time per hop; a message sent toward a node that is offline at
arrival is silently lost — MPIL has no per-hop ARQ; redundant flows are its
defence.  Because availability changes while a request is in flight,
duplicate copies processed later can take different routes, which is
exactly why "MPIL without DS always gives higher success rates than MPIL
with the duplicate suppression" under perturbation.

Insertions for the perturbation experiments happen in stage 1 on the static
overlay ("1000 insertion requests are generated to the static overlay"), so
this driver reuses the synchronous :class:`~repro.core.network.MPILNetwork`
logic for inserts and adds a timed ``lookup_at``.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.core.config import MPILConfig
from repro.core.identifiers import Identifier, IdSpace
from repro.core.messages import KIND_LOOKUP, MPILMessage
from repro.core.network import MPILNetwork
from repro.core.routing import decide_forwarding
from repro.errors import RoutingError
from repro.overlay.graph import OverlayGraph
from repro.sim.availability import AlwaysOnline, AvailabilityModel
from repro.sim.counters import TrafficCounters
from repro.sim.engine import EventScheduler
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.rng import derive_rng
from repro.telemetry import current as current_telemetry


@dataclasses.dataclass(frozen=True)
class TimedLookupResult:
    """Outcome of one timed MPIL lookup."""

    object_id: Identifier
    origin: int
    start_time: float
    success: bool
    first_reply_time: Optional[float]
    first_reply_hop: Optional[int]
    replies: tuple[tuple[int, int], ...]
    counters: TrafficCounters

    @property
    def latency(self) -> Optional[float]:
        if self.first_reply_time is None:
            return None
        return self.first_reply_time - self.start_time


class PendingLookup:
    """One in-flight timed lookup on a (possibly shared) scheduler.

    :meth:`TimedMPILNetwork.start_lookup` returns the handle immediately;
    the request's message events then run whenever the caller's scheduler
    executes them, interleaved with any other in-flight requests — the
    open-loop service drivers keep hundreds of these live at once.  The
    request is *complete* once every message copy it spawned has been
    delivered, lost, or suppressed (``outstanding`` reaches zero), at which
    point ``done`` flips and the optional completion callback fires.
    """

    __slots__ = (
        "object_id",
        "origin",
        "start_time",
        "counters",
        "replies",
        "first_reply_time",
        "first_reply_hop",
        "outstanding",
        "done",
    )

    def __init__(self, object_id: Identifier, origin: int, start_time: float):
        self.object_id = object_id
        self.origin = origin
        self.start_time = start_time
        self.counters = TrafficCounters()
        self.replies: list[tuple[int, int]] = []
        self.first_reply_time: Optional[float] = None
        self.first_reply_hop: Optional[int] = None
        #: message/reply events posted but not yet executed
        self.outstanding = 0
        self.done = False

    @property
    def success(self) -> bool:
        return bool(self.replies)

    def result(self) -> TimedLookupResult:
        """Snapshot the request as an immutable result (valid any time; the
        drivers call it after completion or a deadline cut-off)."""
        return TimedLookupResult(
            object_id=self.object_id,
            origin=self.origin,
            start_time=self.start_time,
            success=bool(self.replies),
            first_reply_time=self.first_reply_time,
            first_reply_hop=self.first_reply_hop,
            replies=tuple(self.replies),
            counters=self.counters,
        )


class TimedMPILNetwork:
    """MPIL over an arbitrary overlay with per-node availability.

    Parameters
    ----------
    overlay:
        Overlay adjacency (may be directed, e.g. Pastry neighbor lists).
    ids:
        Node identifiers (shared with any co-simulated protocol).
    config:
        MPIL parameters; ``duplicate_suppression`` selects DS / no-DS mode.
    availability:
        Ground-truth availability model (e.g. a flapping schedule).
    latency:
        Per-hop one-way latency model.
    """

    def __init__(
        self,
        overlay: OverlayGraph,
        space: IdSpace = IdSpace(),
        ids: Optional[Sequence[Identifier]] = None,
        config: MPILConfig = MPILConfig(),
        availability: AvailabilityModel = AlwaysOnline(),
        latency: LatencyModel = ConstantLatency(0.05),
        seed: object = 0,
    ):
        self.static = MPILNetwork(
            overlay, space=space, ids=ids, config=config, seed=seed
        )
        self.availability = availability
        self.latency = latency
        self.config = config
        self.seed = seed
        self._request_counter = 0

    @property
    def request_counter(self) -> int:
        """Monotonic request id; each lookup's RNG stream derives from it.

        Service drivers snapshot and restore this around a run so a
        testbed shared across runs replays identical per-request noise.
        """
        return self._request_counter

    @request_counter.setter
    def request_counter(self, value: int) -> None:
        self._request_counter = int(value)

    # Convenience passthroughs ------------------------------------------------

    @property
    def overlay(self) -> OverlayGraph:
        return self.static.overlay

    @property
    def ids(self):
        return self.static.ids

    @property
    def directory(self):
        return self.static.directory

    def random_object_id(self, rng) -> Identifier:
        """Draw a fresh object identifier from the network's id space."""
        return self.static.random_object_id(rng)

    def insert_static(self, origin: int, object_id: Identifier, **kwargs):
        """Stage-1 insertion on the static (fully online) overlay."""
        return self.static.insert(origin, object_id, **kwargs)

    # Timed lookup -------------------------------------------------------------

    def start_lookup(
        self,
        engine: EventScheduler,
        origin: int,
        object_id: Identifier,
        start_time: Optional[float] = None,
        max_flows: Optional[int] = None,
        per_flow_replicas: Optional[int] = None,
        duplicate_suppression: Optional[bool] = None,
        on_complete: Optional[Callable[["PendingLookup"], None]] = None,
    ) -> PendingLookup:
        """Launch a lookup on a caller-owned scheduler and return its handle.

        This is the open-loop entry point: many lookups started on one
        shared ``engine`` stay in flight simultaneously, their message
        events interleaving in timestamp order — the service drivers issue
        arrivals this way while a perturbation timeline runs concurrently.
        ``start_time`` defaults to ``engine.now`` and must not precede it;
        the first message fires when the scheduler reaches that time.
        ``on_complete(pending)`` is invoked (inside the scheduler run) once
        every message copy has been delivered, lost, or suppressed.
        """
        n = self.overlay.n
        if not 0 <= origin < n:
            raise RoutingError(f"origin {origin} out of range (n={n})")
        cfg = self.config
        suppress = (
            cfg.duplicate_suppression
            if duplicate_suppression is None
            else duplicate_suppression
        )
        flows = max_flows if max_flows is not None else cfg.max_flows
        replicas = (
            per_flow_replicas if per_flow_replicas is not None else cfg.per_flow_replicas
        )
        launch_time = engine.now if start_time is None else float(start_time)
        request_id = self._request_counter
        self._request_counter += 1
        rng = derive_rng(self.seed, "timed-request", request_id)
        pending = PendingLookup(object_id, origin, launch_time)
        counters = pending.counters
        processed: set[int] = set()
        received: set[int] = set()
        metric_table = self.static.metric_table
        directory = self.static.directory
        max_hops = cfg.max_hops if cfg.max_hops is not None else 4 * len(
            self.ids[0].digits
        )

        telemetry = current_telemetry()
        spans = telemetry.spans  # None unless the run opted into tracing
        metrics = telemetry.metrics
        # span id of the "send" that will deliver each in-flight message,
        # keyed by message identity (the scheduler keeps the message alive
        # until ``process`` pops the entry); never iterated, so id() keys
        # cannot perturb ordering
        span_parent: dict[int, int] = {}
        trace_id = ""
        root_sid: Optional[int] = None
        if spans is not None:
            trace_id = spans.begin_trace("timed-lookup")
            root_sid = spans.emit(
                trace_id,
                "timed-lookup",
                node=origin,
                start=launch_time,
                request=request_id,
                object=str(object_id),
            )

        def finish_event() -> None:
            """Retire one executed message/reply event; the request is
            complete when none remain outstanding."""
            pending.outstanding -= 1
            if pending.outstanding == 0 and not pending.done:
                pending.done = True
                metrics.inc("timed_lookups_total")
                if pending.replies:
                    metrics.inc("timed_lookups_success_total")
                metrics.inc("timed_messages_total", counters.messages_sent)
                if counters.lost_offline:
                    metrics.inc("timed_lost_offline_total", counters.lost_offline)
                if counters.duplicates:
                    metrics.inc("timed_duplicates_total", counters.duplicates)
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "complete",
                        node=origin,
                        start=launch_time,
                        end=engine.now,
                        parent_id=root_sid,
                        success=pending.success,
                        messages=counters.messages_sent,
                    )
                if on_complete is not None:
                    on_complete(pending)

        def deliver_reply(holder: int, hop: int) -> None:
            arrival = engine.now + self.latency.latency(holder, origin)
            counters.replies_sent += 1
            pending.outstanding += 1
            engine.post(arrival, on_reply, holder, hop)

        def on_reply(holder: int, hop: int) -> None:
            counters.replies_received += 1
            pending.replies.append((holder, hop))
            if pending.first_reply_time is None:
                pending.first_reply_time = engine.now
                pending.first_reply_hop = hop
            finish_event()

        def send(msg: MPILMessage, sender: int) -> None:
            counters.messages_sent += 1
            arrival = engine.now + self.latency.latency(sender, msg.at)
            pending.outstanding += 1
            engine.post(arrival, process, msg)

        def process(msg: MPILMessage) -> None:
            parent_id = span_parent.pop(id(msg), root_sid) if spans is not None else None
            try:
                node = msg.at
                if not self.availability.is_online(node, engine.now):
                    counters.lost_offline += 1
                    if spans is not None:
                        spans.emit(
                            trace_id,
                            "lost-offline",
                            node=node,
                            start=engine.now,
                            parent_id=parent_id,
                            request=request_id,
                        )
                    return
                if node in received:
                    counters.duplicates += 1
                    if spans is not None:
                        spans.emit(
                            trace_id,
                            "dup-drop" if suppress else "dup",
                            node=node,
                            start=engine.now,
                            parent_id=parent_id,
                            request=request_id,
                        )
                    if suppress:
                        return
                received.add(node)
                if suppress and node in processed:
                    return
                processed.add(node)

                if directory.has(node, object_id):
                    if spans is not None:
                        spans.emit(
                            trace_id,
                            "reply",
                            node=node,
                            start=engine.now,
                            parent_id=parent_id,
                            request=request_id,
                            hop=msg.hop,
                        )
                    deliver_reply(node, msg.hop)
                    return
                if msg.hop >= max_hops:
                    counters.drops_hop_limit += 1
                    if spans is not None:
                        spans.emit(
                            trace_id,
                            "drop",
                            node=node,
                            start=engine.now,
                            parent_id=parent_id,
                            request=request_id,
                            reason="hop-limit",
                        )
                    return

                scores = metric_table.scores_with_self(node, object_id)
                excluded = set(msg.route)
                excluded.add(node)
                decision = decide_forwarding(
                    self_score=scores[0],
                    neighbor_ids=metric_table.neighbor_list(node),
                    neighbor_scores=scores[1:],
                    excluded=excluded,
                    max_flows=msg.max_flows,
                    given_flows=msg.given_flows,
                    rng=rng,
                    tie_break=cfg.tie_break,
                    local_max_rule=cfg.local_max_rule,
                )
                replicas_left = msg.replicas_left
                if decision.is_local_max:
                    replicas_left -= 1
                    if replicas_left <= 0:
                        return
                for next_node, budget in zip(decision.next_hops, decision.budgets):
                    child = msg.child(next_node, budget)
                    child.replicas_left = replicas_left
                    if spans is not None:
                        span_parent[id(child)] = spans.emit(
                            trace_id,
                            "send",
                            node=node,
                            start=engine.now,
                            parent_id=parent_id,
                            to=next_node,
                            request=request_id,
                        )
                    send(child, node)
            finally:
                finish_event()

        initial = MPILMessage(
            kind=KIND_LOOKUP,
            request_id=request_id,
            object_id=object_id,
            origin=origin,
            owner=origin,
            at=origin,
            route=(),
            max_flows=flows,
            replicas_left=replicas,
            hop=0,
            given_flows=0,
        )
        pending.outstanding += 1
        if spans is not None and root_sid is not None:
            span_parent[id(initial)] = root_sid
        engine.post(launch_time, process, initial)
        return pending

    def lookup_at(
        self,
        origin: int,
        object_id: Identifier,
        start_time: float,
        max_flows: Optional[int] = None,
        per_flow_replicas: Optional[int] = None,
        deadline: Optional[float] = None,
        duplicate_suppression: Optional[bool] = None,
    ) -> TimedLookupResult:
        """Issue a lookup at simulation time ``start_time``.

        The request runs to quiescence (all message copies delivered, lost,
        or stopped) or until ``deadline``; replies are direct messages back
        to the origin, which is assumed reachable (the experiment harness
        exempts the querying client from flapping, matching the paper's
        single always-querying node).  ``duplicate_suppression`` overrides
        the network config for this call — the Figure 11 experiment runs
        "MPIL with DS" and "MPIL without DS" against one shared insert
        stage.  This is the run-to-completion wrapper over
        :meth:`start_lookup`, which the open-loop service drivers use
        directly to keep many lookups in flight on one shared scheduler.
        """
        engine = EventScheduler(start_time=start_time)
        pending = self.start_lookup(
            engine,
            origin,
            object_id,
            start_time=start_time,
            max_flows=max_flows,
            per_flow_replicas=per_flow_replicas,
            duplicate_suppression=duplicate_suppression,
        )
        engine.run(until=deadline)
        return pending.result()
