"""The MPIL forwarding decision (Figure 5's pseudo-code, as a pure function).

Given the metric scores of a node's neighbors against the message's object
ID, :func:`decide_forwarding` determines:

- whether the current node is a *local maximum* ("an object is inserted at
  a node when none of its neighbor nodes have a higher MPIL routing metric
  value than the node", Section 4.4);
- which neighbors the message is forwarded to (the highest-scoring
  unvisited neighbors, capped by the flow budget);
- the flow budget each child copy carries.

Keeping this a pure function of explicit inputs lets both the synchronous
static driver and the event-driven timed driver share one implementation,
and makes property testing straightforward.
"""

from __future__ import annotations

import dataclasses
import random
from typing import AbstractSet, Optional, Sequence

import numpy as np

from repro.core.flows import allowed_fanout, flows_consumed, split_flow_budget


@dataclasses.dataclass(frozen=True)
class ForwardDecision:
    """Outcome of one node's handling of one message copy."""

    is_local_max: bool
    next_hops: tuple[int, ...]
    budgets: tuple[int, ...]
    self_score: int
    best_candidate_score: Optional[int]
    new_flows: int

    @property
    def fanout(self) -> int:
        return len(self.next_hops)


def decide_forwarding(
    self_score: int,
    neighbor_ids: "np.ndarray | Sequence[int]",
    neighbor_scores: "np.ndarray | Sequence[int]",
    excluded: AbstractSet[int],
    max_flows: int,
    given_flows: int,
    rng: random.Random,
    tie_break: str = "random",
    local_max_rule: str = "all-neighbors",
) -> ForwardDecision:
    """Apply the MPIL routing rule at one node.

    Parameters
    ----------
    self_score:
        Metric value of the current node against the object ID.
    neighbor_ids / neighbor_scores:
        Aligned arrays (or plain sequences) of neighbor indices and their
        metric values.
    excluded:
        Nodes that may not be chosen as next hops: the message's route plus
        the current node ("Choosing next_hop_list is dependent only on peers
        in neighbor_list, excluding the nodes in M.route and N").
    max_flows / given_flows:
        Flow-budget state of the message copy being processed.
    tie_break:
        ``"random"`` samples which equal-metric candidates are used when
        there are more than the budget allows; ``"lowest-id"`` picks
        deterministically.
    local_max_rule:
        ``"all-neighbors"`` tests the local maximum against every neighbor
        (the pseudo-code's "all nodes in neighbor list"); ``"unvisited-only"``
        tests only against the unvisited candidates (ablation).
    """
    # Plain-Python fast path: numpy arrays are converted to lists once, then
    # a single ascending pass finds the best unvisited score and collects the
    # tied positions — same candidate order (and therefore the same RNG
    # consumption) as the original max-then-filter formulation.
    ids_list: Sequence[int] = (
        neighbor_ids if isinstance(neighbor_ids, (list, tuple)) else neighbor_ids.tolist()
    )
    scores_list: Sequence[int] = (
        neighbor_scores
        if isinstance(neighbor_scores, (list, tuple))
        else neighbor_scores.tolist()
    )
    n = len(ids_list)
    best: Optional[int] = None
    best_positions: list[int] = []
    for i, neighbor in enumerate(ids_list):
        if neighbor in excluded:
            continue
        score = scores_list[i]
        if best is None or score > best:
            best = score
            best_positions = [i]
        elif score == best:
            best_positions.append(i)
    best_candidate_score: Optional[int] = best

    if local_max_rule == "all-neighbors":
        reference = max(scores_list) if n else None
    else:
        reference = best_candidate_score
    is_local_max = reference is None or self_score >= reference

    fanout = allowed_fanout(max_flows, given_flows, len(best_positions))
    if fanout == 0:
        return ForwardDecision(
            is_local_max=is_local_max,
            next_hops=(),
            budgets=(),
            self_score=self_score,
            best_candidate_score=best_candidate_score,
            new_flows=0,
        )

    if fanout < len(best_positions):
        if tie_break == "random":
            chosen = rng.sample(best_positions, fanout)
        else:
            by_id = sorted(best_positions, key=ids_list.__getitem__)
            chosen = by_id[:fanout]
    else:
        chosen = best_positions

    next_hops = tuple(ids_list[i] for i in chosen)
    budgets = tuple(split_flow_budget(max_flows, given_flows, fanout))
    return ForwardDecision(
        is_local_max=is_local_max,
        next_hops=next_hops,
        budgets=budgets,
        self_score=self_score,
        best_candidate_score=best_candidate_score,
        new_flows=flows_consumed(given_flows, fanout),
    )


def scores_for_node(
    table, node: int, target
) -> tuple[np.ndarray, np.ndarray, int]:
    """Convenience: (neighbor_ids, neighbor_scores, self_score) for a node."""
    return (
        table.neighbor_array(node),
        table.scores(node, target),
        table.self_score(node, target),
    )


def best_neighbor_scores(
    neighbor_scores: Sequence[int],
) -> Optional[int]:
    """Maximum of a (possibly empty) score sequence."""
    values = list(neighbor_scores)
    return max(values) if values else None
