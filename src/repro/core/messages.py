"""MPIL message types.

A request (insertion or lookup) is carried by :class:`MPILMessage` copies.
Each copy represents one flow segment and carries:

- the object identifier being inserted or queried;
- ``route`` — "a message field called route, which contains the list of
  nodes that the message has visited" (Section 4.3), used to exclude
  already-visited nodes from candidate selection;
- ``max_flows`` — the residual flow budget for this copy;
- ``replicas_left`` — per-flow replicas still to store (insertion) or local
  maxima still allowed before the flow stops (lookup);
- ``given_flows`` — 0 only for the copy being processed at the originator.
"""

from __future__ import annotations

import dataclasses

from repro.core.identifiers import Identifier

KIND_INSERT = "insert"
KIND_LOOKUP = "lookup"


@dataclasses.dataclass(slots=True)
class MPILMessage:
    """One flow segment of an MPIL request."""

    kind: str
    request_id: int
    object_id: Identifier
    origin: int
    owner: int
    at: int
    route: tuple[int, ...]
    max_flows: int
    replicas_left: int
    hop: int = 0
    given_flows: int = 0

    def child(self, next_node: int, budget: int) -> "MPILMessage":
        """The copy forwarded from ``self.at`` to ``next_node``."""
        return MPILMessage(
            kind=self.kind,
            request_id=self.request_id,
            object_id=self.object_id,
            origin=self.origin,
            owner=self.owner,
            at=next_node,
            route=self.route + (self.at,),
            max_flows=budget,
            replicas_left=self.replicas_left,
            hop=self.hop + 1,
            given_flows=1,
        )


@dataclasses.dataclass(slots=True, frozen=True)
class LookupReply:
    """Direct reply from a replica holder to the querying node."""

    request_id: int
    object_id: Identifier
    holder: int
    owner: int
    hop: int
