"""Struct-of-arrays testbed core.

At the scale-ladder rungs (10^5-10^6 nodes) per-object node state — one
Python object, dict entry, and digit-matrix copy per node — dominates both
memory and setup time.  ``NodeArrays`` keeps the whole population in a
handful of NumPy arrays instead:

- ``digits``: one shared ``(n, M)`` uint8 digit matrix (no per-node copies),
- ``indptr``/``indices``: the overlay's CSR adjacency
  (:meth:`repro.overlay.graph.OverlayGraph.adjacency_arrays`),
- ``rows_with_self``/``indptr_ws``: a combined ``[self, *neighbors]`` row
  index per node, so gathering any per-population vector for a node's
  forwarding decision is one slice,
- ``alive``: a liveness bitmap refreshed in bulk from an availability
  process (:meth:`refresh_alive`) instead of per-node ``is_online`` calls.

Everything is built vectorised — there is no per-node Python loop in
construction, which is what lets a 10^5-node testbed come up in well under
a second once the overlay exists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.identifiers import Identifier
from repro.errors import RoutingError


def pack_digit_matrix(ids: Sequence[Identifier]) -> np.ndarray:
    """The shared ``(n, M)`` uint8 digit matrix of an identifier sequence.

    Each :class:`Identifier` already caches its digit string as ``bytes``;
    one join + ``frombuffer`` builds the matrix without stacking ``n``
    per-id arrays.
    """
    if not ids:
        return np.empty((0, 0), dtype=np.uint8)
    num_digits = ids[0].space.num_digits
    buffer = b"".join(identifier.digits for identifier in ids)
    matrix = np.frombuffer(buffer, dtype=np.uint8).reshape(len(ids), num_digits)
    matrix.flags.writeable = False
    return matrix


class NodeArrays:
    """Immutable-shape struct-of-arrays view of one overlay population.

    Parameters
    ----------
    overlay:
        An :class:`repro.overlay.graph.OverlayGraph` (anything exposing
        ``n`` and ``adjacency_arrays()``).
    ids:
        One :class:`Identifier` per overlay node.
    """

    __slots__ = (
        "n", "num_digits", "space", "ids", "digits",
        "indptr", "indices", "indptr_ws", "rows_with_self", "alive",
    )

    def __init__(self, overlay, ids: Sequence[Identifier]):
        if len(ids) != overlay.n:
            raise RoutingError(
                f"identifier list has {len(ids)} entries for {overlay.n} nodes"
            )
        n = overlay.n
        self.n = n
        self.ids = tuple(ids)
        self.space = ids[0].space if ids else None
        self.num_digits = self.space.num_digits if ids else 0
        self.digits = pack_digit_matrix(self.ids)
        indptr, indices = overlay.adjacency_arrays()
        self.indptr = indptr
        self.indices = indices
        # Combined [self, *neighbors] row table: node u's rows live at
        # rows_with_self[indptr_ws[u]:indptr_ws[u+1]], with the self row
        # first.  Built by shifting the CSR offsets by one slot per node and
        # scattering the self indices into the gaps — fully vectorised.
        arange_n = np.arange(n, dtype=np.int64)
        self.indptr_ws = indptr + np.arange(n + 1, dtype=np.int64)
        rows = np.empty(indices.shape[0] + n, dtype=np.int64)
        rows[self.indptr_ws[:-1]] = arange_n
        neighbor_slots = np.ones(rows.shape[0], dtype=bool)
        neighbor_slots[self.indptr_ws[:-1]] = False
        rows[neighbor_slots] = indices
        rows.flags.writeable = False
        self.rows_with_self = rows
        self.alive = np.ones(n, dtype=bool)

    def neighbors(self, node: int) -> np.ndarray:
        """Sorted neighbor indices of ``node`` (a CSR slice, no copy)."""
        return self.indices[self.indptr[node]:self.indptr[node + 1]]

    def rows_ws(self, node: int) -> np.ndarray:
        """``[node, *neighbors]`` row indices (a slice, no copy)."""
        return self.rows_with_self[self.indptr_ws[node]:self.indptr_ws[node + 1]]

    # -- liveness bitmap -----------------------------------------------------

    def refresh_alive(self, process, time: float) -> np.ndarray:
        """Refresh the liveness bitmap from an availability process at
        ``time`` in one bulk ``online_mask`` call and return it."""
        mask = process.online_mask(time)
        self.alive[:] = mask
        return self.alive

    def set_alive(self, mask: np.ndarray) -> None:
        """Overwrite the liveness bitmap (length-``n`` boolean array)."""
        if mask.shape != (self.n,):
            raise RoutingError(
                f"liveness mask has shape {mask.shape}, expected ({self.n},)"
            )
        self.alive[:] = mask

    def online_count(self) -> int:
        return int(self.alive.sum())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"NodeArrays(n={self.n}, digits={self.digits.shape})"
