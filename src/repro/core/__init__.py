"""MPIL (Multi-Path Insertion/Lookup) — the paper's primary contribution.

Public surface:

- :class:`repro.core.identifiers.IdSpace` / ``Identifier`` — the m-bit,
  base-2^b identifier space (paper Section 5's "m-bit ID space with base-2^b
  representation"; the evaluation uses 160-bit IDs with b = 4).
- :class:`repro.core.config.MPILConfig` — algorithm parameters
  (``max_flows``, ``per_flow_replicas``, duplicate suppression, ...).
- :class:`repro.core.network.MPILNetwork` — synchronous message-level driver
  for static overlays (paper Section 6.1).
- :class:`repro.core.timed.TimedMPILNetwork` — event-driven driver for
  perturbed overlays (paper Section 6.2).
- :class:`repro.core.heartbeats.HeartbeatService` — the deletion protocol of
  Section 4.4 (periodic replica heartbeats + explicit delete).
"""

from repro.core.config import MPILConfig
from repro.core.identifiers import Identifier, IdSpace
from repro.core.metric import (
    CommonDigitsMetric,
    NeighborMetricTable,
    PrefixLengthMetric,
    SuffixLengthMetric,
    common_digits,
)
from repro.core.network import MPILNetwork
from repro.core.replicas import ReplicaDirectory
from repro.core.results import InsertResult, LookupResult
from repro.core.timed import TimedLookupResult, TimedMPILNetwork

__all__ = [
    "CommonDigitsMetric",
    "Identifier",
    "IdSpace",
    "InsertResult",
    "LookupResult",
    "MPILConfig",
    "MPILNetwork",
    "NeighborMetricTable",
    "PrefixLengthMetric",
    "ReplicaDirectory",
    "SuffixLengthMetric",
    "TimedLookupResult",
    "TimedMPILNetwork",
    "common_digits",
]
