"""Identifier spaces and identifiers.

The paper assumes "an m-bit ID space with base-2^b representation, where
m = M*b for some constant M.  Thus, each ID is an M-character-wide string
with 2^b possible characters."  The evaluation uses m = 160 and b = 4
(matching Pastry); the worked examples in Figures 3–6 use 4-bit binary IDs.
Both are instances of :class:`IdSpace`.

``Identifier`` is immutable and caches its digit string (most-significant
digit first) both as ``bytes`` (for pure-Python digit loops) and as a NumPy
``uint8`` array (for the vectorised neighbor-metric tables).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Iterable, Sequence

import numpy as np

from repro.errors import IdSpaceError

#: translation tables for the C-speed digit decompositions below: a hex
#: (or binary) rendering of the value *is* the digit string, modulo mapping
#: each ASCII digit character to its numeric value
_HEX_DIGITS = bytes.maketrans(b"0123456789abcdef", bytes(range(16)))
_BIN_DIGITS = bytes.maketrans(b"01", bytes((0, 1)))


@dataclasses.dataclass(frozen=True)
class IdSpace:
    """An m-bit identifier space with base-2^b digits.

    Parameters
    ----------
    bits:
        Total identifier width m in bits (paper default: 160).
    digit_bits:
        Bits per digit b (paper default: 4, i.e. hexadecimal digits).

    >>> space = IdSpace(bits=4, digit_bits=1)
    >>> space.num_digits, space.base
    (4, 2)
    """

    bits: int = 160
    digit_bits: int = 4

    def __post_init__(self) -> None:
        if self.bits <= 0:
            raise IdSpaceError(f"bits must be positive, got {self.bits}")
        if not 1 <= self.digit_bits <= 8:
            raise IdSpaceError(
                f"digit_bits must be in [1, 8] so digits fit in a byte, got {self.digit_bits}"
            )
        if self.bits % self.digit_bits != 0:
            raise IdSpaceError(
                f"bits ({self.bits}) must be a multiple of digit_bits ({self.digit_bits})"
            )

    @property
    def num_digits(self) -> int:
        """M — the number of digits in an identifier."""
        return self.bits // self.digit_bits

    @property
    def base(self) -> int:
        """2^b — the number of possible values per digit."""
        return 1 << self.digit_bits

    @property
    def size(self) -> int:
        """Total number of identifiers: 2^bits."""
        return 1 << self.bits

    @property
    def max_value(self) -> int:
        return self.size - 1

    def identifier(self, value: int) -> "Identifier":
        """Wrap an integer as an :class:`Identifier` in this space."""
        return Identifier(value, self)

    def from_hex(self, text: str) -> "Identifier":
        """Parse a hexadecimal string (with or without ``0x`` prefix)."""
        return self.identifier(int(text, 16))

    def from_digits(self, digits: Sequence[int]) -> "Identifier":
        """Build an identifier from a most-significant-first digit sequence.

        >>> IdSpace(bits=4, digit_bits=1).from_digits([1, 0, 1, 1]).value
        11
        """
        if len(digits) != self.num_digits:
            raise IdSpaceError(
                f"expected {self.num_digits} digits, got {len(digits)}"
            )
        value = 0
        for digit in digits:
            if not 0 <= digit < self.base:
                raise IdSpaceError(f"digit {digit} out of range for base {self.base}")
            value = (value << self.digit_bits) | digit
        return self.identifier(value)

    def random_identifier(self, rng: random.Random) -> "Identifier":
        """Draw an identifier uniformly at random."""
        return self.identifier(rng.getrandbits(self.bits))

    def random_unique_identifiers(self, count: int, rng: random.Random) -> list["Identifier"]:
        """Draw ``count`` distinct identifiers uniformly at random.

        The paper generates node and object IDs as "random numbers picked
        from 160-bit ID space"; collisions there are vanishingly unlikely but
        the worked-example 4-bit spaces need explicit uniqueness.
        """
        if count > self.size:
            raise IdSpaceError(
                f"cannot draw {count} unique identifiers from a space of size {self.size}"
            )
        seen: set[int] = set()
        out: list[Identifier] = []
        while len(out) < count:
            value = rng.getrandbits(self.bits)
            if value in seen:
                continue
            seen.add(value)
            out.append(self.identifier(value))
        return out

    def digit_of(self, value: int, index: int) -> int:
        """The ``index``-th digit (0 = most significant) of a raw value."""
        if not 0 <= index < self.num_digits:
            raise IdSpaceError(f"digit index {index} out of range")
        shift = self.bits - (index + 1) * self.digit_bits
        return (value >> shift) & (self.base - 1)


class Identifier:
    """An immutable identifier within an :class:`IdSpace`.

    Identifiers compare and hash by ``(value, space)``.  Ordering comparisons
    require matching spaces and order by numeric value.
    """

    __slots__ = ("_value", "_space", "_digits", "_digits_array")

    def __init__(self, value: int, space: IdSpace):
        if not 0 <= value <= space.max_value:
            raise IdSpaceError(
                f"value {value} out of range for {space.bits}-bit space"
            )
        self._value = value
        self._space = space
        num_digits = space.num_digits
        digit_bits = space.digit_bits
        # Decompose into digits at C speed where the digit width lines up
        # with a printable base (the scale-ladder rungs mint 10^5-10^6 ids,
        # so the per-id Python digit loop was a measurable setup cost).
        if digit_bits == 4:
            self._digits = format(value, "0%dx" % num_digits).encode("ascii").translate(_HEX_DIGITS)
        elif digit_bits == 8:
            self._digits = value.to_bytes(num_digits, "big")
        elif digit_bits == 1:
            self._digits = format(value, "0%db" % num_digits).encode("ascii").translate(_BIN_DIGITS)
        else:
            digits = bytearray(num_digits)
            v = value
            mask = space.base - 1
            for i in range(num_digits - 1, -1, -1):
                digits[i] = v & mask
                v >>= digit_bits
            self._digits = bytes(digits)
        self._digits_array = np.frombuffer(self._digits, dtype=np.uint8)

    @property
    def value(self) -> int:
        return self._value

    @property
    def space(self) -> IdSpace:
        return self._space

    @property
    def digits(self) -> bytes:
        """Digit string, most-significant digit first, one digit per byte."""
        return self._digits

    @property
    def digits_array(self) -> np.ndarray:
        """Digits as a read-only ``uint8`` NumPy array."""
        return self._digits_array

    def digit(self, index: int) -> int:
        return self._digits[index]

    # -- distances ---------------------------------------------------------

    def _require_same_space(self, other: "Identifier") -> None:
        if self._space != other._space:
            raise IdSpaceError("identifiers belong to different spaces")

    def common_digits(self, other: "Identifier") -> int:
        """MPIL routing metric: number of equal digits at equal positions.

        Paper Section 4.1: "For a given object ID and a neighboring peer's
        ID, the routing metric is simply the number of matching digits
        appearing in same positions."

        >>> sp = IdSpace(bits=4, digit_bits=1)
        >>> sp.from_digits([1,0,0,1]).common_digits(sp.from_digits([1,0,1,1]))
        3
        >>> sp.from_digits([1,0,0,1]).common_digits(sp.from_digits([0,0,1,0]))
        1
        """
        self._require_same_space(other)
        count = 0
        for a, b in zip(self._digits, other._digits):
            if a == b:
                count += 1
        return count

    def common_digits_via_xor(self, other: "Identifier") -> int:
        """Equivalent metric computed as the number of zero digits in the
        XOR of the two values ("the number of 0's in XOR product of the two
        ID's", Section 4.1).  Kept as an independent implementation; a
        property test asserts agreement with :meth:`common_digits`.
        """
        self._require_same_space(other)
        xor = self._value ^ other._value
        mask = self._space.base - 1
        count = 0
        for _ in range(self._space.num_digits):
            if xor & mask == 0:
                count += 1
            xor >>= self._space.digit_bits
        return count

    def prefix_match_len(self, other: "Identifier") -> int:
        """Number of leading digits shared with ``other`` (Pastry's metric)."""
        self._require_same_space(other)
        xor = self._value ^ other._value
        if xor == 0:
            return self._space.num_digits
        shared_bits = self._space.bits - xor.bit_length()
        return shared_bits // self._space.digit_bits

    def suffix_match_len(self, other: "Identifier") -> int:
        """Number of trailing digits shared with ``other`` (suffix routing)."""
        self._require_same_space(other)
        count = 0
        for a, b in zip(reversed(self._digits), reversed(other._digits)):
            if a != b:
                break
            count += 1
        return count

    def distance(self, other: "Identifier") -> int:
        """Absolute numeric distance."""
        self._require_same_space(other)
        return abs(self._value - other._value)

    def circular_distance(self, other: "Identifier") -> int:
        """Distance on the identifier ring (used by the Pastry substrate)."""
        self._require_same_space(other)
        d = abs(self._value - other._value)
        return min(d, self._space.size - d)

    # -- formatting / protocol ---------------------------------------------

    def to_hex(self) -> str:
        width = (self._space.bits + 3) // 4
        return format(self._value, f"0{width}x")

    def to_digit_string(self) -> str:
        """Digits joined with no separator (binary string for b=1 spaces)."""
        if self._space.base <= 10:
            return "".join(str(d) for d in self._digits)
        return ".".join(str(d) for d in self._digits)

    def __repr__(self) -> str:
        if self._space.bits <= 16:
            return f"Identifier({self.to_digit_string()})"
        return f"Identifier(0x{self.to_hex()})"

    def __str__(self) -> str:
        return self.to_digit_string() if self._space.bits <= 16 else self.to_hex()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Identifier):
            return NotImplemented
        return self._value == other._value and self._space == other._space

    def __hash__(self) -> int:
        return hash((self._value, self._space))

    def __lt__(self, other: "Identifier") -> bool:
        self._require_same_space(other)
        return self._value < other._value

    def __le__(self, other: "Identifier") -> bool:
        self._require_same_space(other)
        return self._value <= other._value


def make_node_identifiers(
    count: int, space: IdSpace, rng: random.Random
) -> list[Identifier]:
    """Draw distinct identifiers for ``count`` overlay nodes."""
    return space.random_unique_identifiers(count, rng)


def identifiers_from_values(values: Iterable[int], space: IdSpace) -> list[Identifier]:
    """Wrap raw integer values as identifiers in ``space``."""
    return [space.identifier(v) for v in values]
