"""Replica bookkeeping.

MPIL inserts *pointers* to objects ("An object (or a pointer to its
location) can be inserted using MPIL routing").  ``ReplicaDirectory`` is
the global view of which nodes hold a pointer for which object — drivers
update it as insertions land and consult it as lookups propagate.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional

from repro.core.identifiers import Identifier


@dataclasses.dataclass(frozen=True)
class ReplicaRecord:
    """One stored pointer replica."""

    node: int
    object_id: Identifier
    owner: int
    stored_hop: int
    stored_time: float = 0.0


class ReplicaDirectory:
    """Global map object-id -> replica holders.

    Keyed by the identifier's integer value; the identifier objects are kept
    on the records for reporting.
    """

    def __init__(self) -> None:
        self._by_object: dict[int, dict[int, ReplicaRecord]] = {}
        self._by_node: dict[int, set[int]] = {}

    def store(
        self,
        node: int,
        object_id: Identifier,
        owner: int,
        hop: int = 0,
        time: float = 0.0,
    ) -> bool:
        """Record a replica.  Returns True if this is a new (node, object)
        pair, False if the node already held the pointer (idempotent)."""
        holders = self._by_object.setdefault(object_id.value, {})
        if node in holders:
            return False
        holders[node] = ReplicaRecord(
            node=node, object_id=object_id, owner=owner, stored_hop=hop, stored_time=time
        )
        self._by_node.setdefault(node, set()).add(object_id.value)
        return True

    def remove(self, node: int, object_id: Identifier) -> bool:
        """Remove one replica.  Returns True if it existed."""
        holders = self._by_object.get(object_id.value)
        if not holders or node not in holders:
            return False
        del holders[node]
        if not holders:
            del self._by_object[object_id.value]
        objects = self._by_node.get(node)
        if objects is not None:
            objects.discard(object_id.value)
            if not objects:
                del self._by_node[node]
        return True

    def remove_object(self, object_id: Identifier) -> int:
        """Remove every replica of an object.  Returns how many existed."""
        holders = self._by_object.pop(object_id.value, {})
        for node in holders:
            objects = self._by_node.get(node)
            if objects is not None:
                objects.discard(object_id.value)
                if not objects:
                    del self._by_node[node]
        return len(holders)

    def has(self, node: int, object_id: Identifier) -> bool:
        holders = self._by_object.get(object_id.value)
        return bool(holders) and node in holders

    def holders(self, object_id: Identifier) -> frozenset[int]:
        return frozenset(self._by_object.get(object_id.value, ()))

    def record(self, node: int, object_id: Identifier) -> Optional[ReplicaRecord]:
        return self._by_object.get(object_id.value, {}).get(node)

    def objects_at(self, node: int) -> frozenset[int]:
        """Raw object values stored at a node."""
        return frozenset(self._by_node.get(node, ()))

    def replica_count(self, object_id: Identifier) -> int:
        return len(self._by_object.get(object_id.value, ()))

    def __len__(self) -> int:
        """Total number of (node, object) replica pairs."""
        return sum(len(h) for h in self._by_object.values())

    def iter_records(self) -> Iterator[ReplicaRecord]:
        for holders in self._by_object.values():
            yield from holders.values()
