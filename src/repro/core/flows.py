"""The flow-budget ("paths-limiting") algorithm of Section 4.3.

When a node holding a message with budget ``max_flows`` forwards it to
``m`` equal-metric candidates, the algorithm:

1. computes ``m = min(len(candidates), max_flows + given_flows)``, where
   ``given_flows`` is 0 at the originator and 1 elsewhere (forwarding to
   exactly one node is not an *additional* flow — except at the originator,
   whose first send starts the first flow and therefore consumes budget);
2. decreases the pooled budget by the ``m - given_flows`` flows consumed;
3. divides the remainder among the ``m`` children, distributing any residue
   one by one in round-robin fashion.

These small pure functions are property-tested for the conservation
invariant: the total number of flows a request can ever create is bounded
by the originator's ``max_flows``.
"""

from __future__ import annotations

from repro.errors import RoutingError


def allowed_fanout(max_flows: int, given_flows: int, num_candidates: int) -> int:
    """Number of candidates the message may actually be forwarded to.

    >>> allowed_fanout(2, 0, 5)   # originator with budget 2
    2
    >>> allowed_fanout(0, 1, 5)   # exhausted budget still sustains one flow
    1
    >>> allowed_fanout(3, 1, 2)   # fewer candidates than budget
    2
    """
    if given_flows not in (0, 1):
        raise RoutingError(f"given_flows must be 0 or 1, got {given_flows}")
    if max_flows < 0:
        raise RoutingError(f"max_flows must be non-negative, got {max_flows}")
    if num_candidates < 0:
        raise RoutingError(f"num_candidates must be non-negative, got {num_candidates}")
    return min(num_candidates, max_flows + given_flows)


def split_flow_budget(max_flows: int, given_flows: int, fanout: int) -> list[int]:
    """Budgets carried by each of the ``fanout`` child messages.

    Implements step 5 of Section 4.3: each child receives
    ``(max_flows - m + given_flows) / m``, with the residue distributed one
    by one in round-robin fashion.

    >>> split_flow_budget(2, 0, 1)   # Figure 6: "After node 0001, max_flows becomes 1"
    [1]
    >>> split_flow_budget(1, 1, 2)   # Figure 6: node 1110 splits to two children
    [0, 0]
    >>> split_flow_budget(7, 1, 3)
    [2, 2, 1]
    """
    if fanout <= 0:
        raise RoutingError(f"fanout must be positive, got {fanout}")
    if fanout > max_flows + given_flows:
        raise RoutingError(
            f"fanout {fanout} exceeds allowance max_flows({max_flows}) + "
            f"given_flows({given_flows})"
        )
    remainder = max_flows - fanout + given_flows
    base, residue = divmod(remainder, fanout)
    return [base + 1 if i < residue else base for i in range(fanout)]


def flows_consumed(given_flows: int, fanout: int) -> int:
    """Number of *new* flows created by forwarding to ``fanout`` nodes.

    At the originator (``given_flows == 0``) every send starts a flow; at
    any other node the first send continues the incoming flow and only the
    remaining ``fanout - 1`` are new.
    """
    if fanout <= 0:
        return 0
    return fanout - given_flows if given_flows else fanout
