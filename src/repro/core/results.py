"""Result records returned by the MPIL drivers.

Every metric the paper reports for Figures 9–10 and Tables 1–3 is a field
here: replica counts, traffic ("a counter is increased by one whenever a
node sends a message to a single neighbor"), duplicate messages ("whenever
a node receives the same insertion request from a different neighbor, it is
considered as a duplicate request"), flows actually created, hops of the
first successful reply, and the traffic consumed up to that first reply.
"""

from __future__ import annotations

import dataclasses
from typing import Optional

from repro.core.identifiers import Identifier


@dataclasses.dataclass(frozen=True)
class InsertResult:
    """Outcome of one MPIL insertion."""

    object_id: Identifier
    origin: int
    owner: int
    replicas: tuple[int, ...]
    traffic: int
    duplicates: int
    flows_created: int
    max_hop: int

    @property
    def replica_count(self) -> int:
        return len(self.replicas)


@dataclasses.dataclass(frozen=True)
class LookupResult:
    """Outcome of one MPIL lookup."""

    object_id: Identifier
    origin: int
    success: bool
    first_reply_hop: Optional[int]
    replies: tuple[tuple[int, int], ...]  # (holder node, hop) pairs
    traffic: int
    traffic_at_first_reply: Optional[int]
    duplicates: int
    flows_created: int

    @property
    def reply_count(self) -> int:
        return len(self.replies)
