"""Unified metrics registry: named counters, gauges, and histograms.

One :class:`MetricsRegistry` replaces the ad-hoc accounting scattered
across the stack — the module-global events counter in
:mod:`repro.sim.engine` (now a registry-backed :class:`Counter`, see the
shims there) and the per-run :class:`~repro.sim.counters.TrafficCounters`
totals, which the drivers publish here as labeled series.

Determinism contract
--------------------

Metrics are pure accumulators over simulation work: no RNG, no wall
clock, no iteration over unsorted containers.  :meth:`MetricsRegistry.snapshot`
returns a plain dict with deterministically ordered keys (series sorted
by name then labels), so a snapshot serialised with ``sort_keys=True`` is
byte-identical across reruns and worker counts — the property the
per-task telemetry blobs rely on.

Two registry scopes exist:

- the **runtime registry** (:func:`runtime_registry`) is process-wide and
  backs process counters such as the simulation event total; sweep
  workers reset it at task start so pooled processes never leak counts
  across tasks;
- a **run registry** lives on each :class:`~repro.telemetry.Telemetry`
  handle installed by :meth:`ExperimentSpec.run
  <repro.experiments.spec.ExperimentSpec.run>`, collecting one
  experiment run's driver metrics with per-cell snapshots.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Union

from repro.errors import ConfigurationError

Number = Union[int, float]

#: default histogram bucket upper bounds (values are counted in the first
#: bucket whose bound is >= the observation; one overflow bucket catches
#: the rest).  Chosen for hop counts and sub-minute latencies alike.
DEFAULT_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0)

#: labels are stored as a sorted tuple of (key, value) pairs so a series
#: identity never depends on keyword order at the call site
LabelItems = tuple[tuple[str, object], ...]


def _label_items(labels: dict[str, object]) -> LabelItems:
    return tuple(sorted(labels.items()))


@dataclasses.dataclass
class Counter:
    """A monotonically increasing accumulator (resettable between tasks)."""

    name: str
    labels: LabelItems = ()
    value: Number = 0

    def inc(self, amount: Number = 1) -> None:
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _snapshot_value(self) -> Number:
        return self.value


@dataclasses.dataclass
class Gauge:
    """A point-in-time value (in-flight depth, window percentile, ...)."""

    name: str
    labels: LabelItems = ()
    value: Number = 0

    def set(self, value: Number) -> None:
        self.value = value

    def _reset(self) -> None:
        self.value = 0

    def _snapshot_value(self) -> Number:
        return self.value


@dataclasses.dataclass
class Histogram:
    """Bucketed distribution of observations (hop counts, latencies).

    ``bounds`` are inclusive upper bounds; observations above the last
    bound land in the overflow bucket.  ``count`` and ``sum`` track the
    full stream so means survive bucketing.
    """

    name: str
    labels: LabelItems = ()
    bounds: tuple[float, ...] = DEFAULT_BUCKETS
    buckets: list[int] = dataclasses.field(default_factory=list)
    count: int = 0
    sum: float = 0.0

    def __post_init__(self) -> None:
        if tuple(self.bounds) != tuple(sorted(self.bounds)):
            raise ConfigurationError(
                f"histogram {self.name!r} bounds must be ascending, got {self.bounds!r}"
            )
        if not self.buckets:
            self.buckets = [0] * (len(self.bounds) + 1)

    def observe(self, value: Number) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.buckets[index] += 1
        self.count += 1
        self.sum += value

    def _reset(self) -> None:
        for i in range(len(self.buckets)):
            self.buckets[i] = 0
        self.count = 0
        self.sum = 0.0

    def _snapshot_value(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "buckets": list(self.buckets),
            "count": self.count,
            "sum": round(self.sum, 9),
        }


Series = Union[Counter, Gauge, Histogram]


def _snapshot_order(
    item: tuple[tuple[str, str, LabelItems], "Series"]
) -> tuple[str, tuple[tuple[str, str], ...], str]:
    """Snapshot/series ordering: name, then labels, then kind — matching
    the sorted-key order of a ``sort_keys=True`` JSON dump of the
    snapshot.  Labels compare by their string forms so mixed-type label
    values (node ids, window indices) never raise."""
    (kind, name, labels) = item[0]
    return (name, tuple((key, str(value)) for key, value in labels), kind)


class MetricsRegistry:
    """Named, labeled metric series with deterministic snapshots.

    Series are created on first use and live for the registry's lifetime;
    :meth:`reset` zeroes every series *in place* so handles cached by hot
    paths (e.g. the engine's event counter) stay valid across sweep-task
    resets.
    """

    def __init__(self) -> None:
        self._series: dict[tuple[str, str, LabelItems], Series] = {}

    def _get_or_create(
        self, kind: str, name: str, labels: dict[str, object], factory
    ) -> Series:
        key = (kind, name, _label_items(labels))
        found = self._series.get(key)
        if found is None:
            found = factory(key[2])
            self._series[key] = found
        return found

    def counter(self, name: str, **labels: object) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        series = self._get_or_create(
            "counter", name, labels, lambda items: Counter(name, items)
        )
        assert isinstance(series, Counter)
        return series

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        series = self._get_or_create(
            "gauge", name, labels, lambda items: Gauge(name, items)
        )
        assert isinstance(series, Gauge)
        return series

    def histogram(
        self,
        name: str,
        bounds: tuple[float, ...] = DEFAULT_BUCKETS,
        **labels: object,
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use."""
        series = self._get_or_create(
            "histogram",
            name,
            labels,
            lambda items: Histogram(name, items, bounds=tuple(bounds)),
        )
        assert isinstance(series, Histogram)
        return series

    def inc(self, name: str, amount: Number = 1, **labels: object) -> None:
        """Increment a counter in one call (the driver-side convenience)."""
        self.counter(name, **labels).inc(amount)

    def __len__(self) -> int:
        return len(self._series)

    def series(self, kind: Optional[str] = None, name: Optional[str] = None) -> list[Series]:
        """Existing series in snapshot order, optionally filtered.

        Read-only introspection for presentation surfaces (the ``serve``
        window lines, :func:`repro.api.telemetry`); series identity and
        ordering match :meth:`snapshot`.
        """
        return [
            series
            for (series_kind, series_name, _), series in sorted(
                self._series.items(), key=_snapshot_order
            )
            if (kind is None or series_kind == kind)
            and (name is None or series_name == name)
        ]

    def snapshot(self) -> dict[str, object]:
        """All series as ``{"name{k=v,...}": value}`` with sorted keys.

        The key embeds the sorted labels, so the dict round-trips through
        ``json.dumps(..., sort_keys=True)`` to byte-identical text for
        identical metric states — the telemetry-blob determinism contract.
        """
        out: dict[str, object] = {}
        for (_kind, name, labels), series in sorted(
            self._series.items(), key=_snapshot_order
        ):
            if labels:
                rendered = ",".join(f"{k}={v}" for k, v in labels)
                key = f"{name}{{{rendered}}}"
            else:
                key = name
            out[key] = series._snapshot_value()
        return out

    def reset(self) -> None:
        """Zero every series in place (handles stay valid)."""
        for series in self._series.values():
            series._reset()


#: the process-wide registry backing cross-cutting process counters (the
#: simulation event total); reset per sweep task in whichever worker runs it
_RUNTIME_REGISTRY = MetricsRegistry()


def runtime_registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _RUNTIME_REGISTRY


def reset_runtime_metrics() -> None:
    """Zero the process-wide registry (sweep workers call this per task so
    counts from earlier tasks in a pooled process can never leak)."""
    _RUNTIME_REGISTRY.reset()
