"""Live progress rendering for sweeps and service runs.

Everything here is presentation: lines are *formatted* from metric
snapshots and task counts, never fed back into the simulation, so
nothing in this module can perturb a run.  :class:`ProgressMeter` is the
one telemetry component that reads the wall clock (``time.monotonic``,
for the live events/sec rate on sweep progress lines) — it is therefore
the only telemetry module on the DET003 allowlist, and nothing it
computes is ever persisted into artifacts or telemetry blobs.
"""

from __future__ import annotations

import time
from typing import Optional


class ProgressMeter:
    """Tracks sweep completion and a live events/sec rate for display."""

    def __init__(self, total_tasks: int) -> None:
        self.total_tasks = total_tasks
        self.done = 0
        self.failed = 0
        self.events = 0
        self._started = time.monotonic()

    def task_finished(self, ok: bool, events_processed: int = 0) -> None:
        if ok:
            self.done += 1
        else:
            self.failed += 1
        self.events += events_processed

    def line(self, label: str = "") -> str:
        """One progress line: tasks done, failures, cumulative events/sec."""
        elapsed = time.monotonic() - self._started
        rate = self.events / elapsed if elapsed > 0 else 0.0
        finished = self.done + self.failed
        parts = [f"[{finished}/{self.total_tasks}]"]
        if label:
            parts.append(label)
        parts.append(f"done={self.done}")
        if self.failed:
            parts.append(f"failed={self.failed}")
        if self.events:
            parts.append(f"{format_rate(rate)} events/s")
        return " ".join(parts)


def format_rate(rate: float) -> str:
    """Compact rate rendering: ``532``, ``12.4k``, ``3.1M``."""
    if rate >= 1e6:
        return f"{rate / 1e6:.1f}M"
    if rate >= 1e3:
        return f"{rate / 1e3:.1f}k"
    return f"{rate:.0f}"


def service_window_line(
    variant: str,
    window_index: int,
    arrivals: int,
    success_rate: float,
    p99: float,
    in_flight: int,
    slo_ok: Optional[bool] = None,
) -> str:
    """One live line per service window, rendered from registry gauges."""
    parts = [
        f"window {window_index:>3d}",
        f"{variant:<10s}",
        f"arrivals={arrivals}",
        f"ok={success_rate:.1f}%",
        f"p99={p99:g}",
        f"in-flight={in_flight}",
    ]
    if slo_ok is not None:
        parts.append("slo=ok" if slo_ok else "slo=VIOLATED")
    return "  ".join(parts)
