"""Deterministic causal spans keyed by simulation time.

A :class:`Span` is one observed step of protocol work — a message send, a
forward decision, a duplicate drop, a reply — timestamped in *simulation*
time (hop index for the synchronous BFS driver, scheduler time for the
timed/service drivers), never wall clock.  Spans carry parent links so a
single lookup's full hop tree (send → forward → dup-drop → reply) is
reconstructable from the flat record stream.

Identity is positional, not random: trace and span ids are monotonic
sequence numbers handed out by the :class:`SpanRecorder` as the (single
threaded, deterministic) simulation emits work.  Two runs with the same
seed therefore produce byte-identical span streams — the property the
JSONL exporter (:mod:`repro.telemetry.sinks`) and the on/on determinism
test rely on.

Like :class:`~repro.sim.trace.TraceRecorder`, the recorder is bounded:
past ``max_spans`` new spans are counted in :attr:`SpanRecorder.dropped`
rather than silently discarded, so a truncated trace is never mistaken
for a complete one.
"""

from __future__ import annotations

import dataclasses
from typing import Iterator, Optional


@dataclasses.dataclass(frozen=True)
class Span:
    """One recorded protocol step, parent-linked into a per-request tree.

    ``start``/``end`` are simulation timestamps (equal for instantaneous
    steps).  ``parent_id`` is ``None`` only for a request's root span.
    """

    trace_id: str
    span_id: int
    parent_id: Optional[int]
    name: str
    node: Optional[int]
    start: float
    end: float
    attrs: tuple[tuple[str, object], ...] = ()

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "node": self.node,
            "start": self.start,
            "end": self.end,
            "attrs": {key: value for key, value in self.attrs},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        return cls(
            trace_id=data["trace_id"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            name=data["name"],
            node=data["node"],
            start=data["start"],
            end=data["end"],
            attrs=tuple(sorted(data.get("attrs", {}).items())),
        )

    def __str__(self) -> str:
        parent = "-" if self.parent_id is None else str(self.parent_id)
        at = f"@{self.node}" if self.node is not None else ""
        rendered = " ".join(f"{k}={v}" for k, v in self.attrs)
        suffix = f" {rendered}" if rendered else ""
        return (
            f"[{self.trace_id} #{self.span_id}<-{parent} t={self.start:g}] "
            f"{self.name}{at}{suffix}"
        )


class SpanRecorder:
    """Append-only bounded span sink with monotonic trace/span ids.

    One recorder serves a whole run; each request opens its own trace via
    :meth:`begin_trace` and emits spans under it.  Simulation code never
    reads back from the recorder — observation cannot perturb the run.
    """

    def __init__(self, max_spans: Optional[int] = 200_000) -> None:
        self._spans: list[Span] = []
        self._max_spans = max_spans
        self._dropped = 0
        self._next_trace = 0
        self._next_span = 0

    def begin_trace(self, name: str) -> str:
        """Open a new trace (one per request); returns its id.

        Ids are ``"<seq>:<name>"`` with a recorder-monotonic sequence
        number — deterministic under the single-threaded simulation and
        stable across identically seeded runs.
        """
        trace_id = f"{self._next_trace:06d}:{name}"
        self._next_trace += 1
        return trace_id

    def emit(
        self,
        trace_id: str,
        name: str,
        node: Optional[int] = None,
        start: float = 0.0,
        end: Optional[float] = None,
        parent_id: Optional[int] = None,
        **attrs: object,
    ) -> int:
        """Record one span; returns its id for use as a child's parent.

        Past ``max_spans`` the span is counted in :attr:`dropped` instead
        of stored — but an id is still allocated, so parent links in the
        surviving prefix stay valid and later runs of the same seed give
        identical ids regardless of the cap.
        """
        span_id = self._next_span
        self._next_span += 1
        if self._max_spans is not None and len(self._spans) >= self._max_spans:
            self._dropped += 1
            return span_id
        self._spans.append(
            Span(
                trace_id=trace_id,
                span_id=span_id,
                parent_id=parent_id,
                name=name,
                node=node,
                start=start,
                end=start if end is None else end,
                attrs=tuple(sorted(attrs.items())),
            )
        )
        return span_id

    @property
    def dropped(self) -> int:
        """Spans discarded because the recorder was full."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._spans)

    def __iter__(self) -> Iterator[Span]:
        return iter(self._spans)

    def __str__(self) -> str:
        suffix = f", {self._dropped} dropped" if self._dropped else ""
        return f"SpanRecorder({len(self._spans)} spans{suffix})"

    def spans(
        self,
        trace_id: Optional[str] = None,
        name: Optional[str] = None,
        node: Optional[int] = None,
    ) -> list[Span]:
        """Recorded spans, optionally filtered (order of emission)."""
        out = []
        for span in self._spans:
            if trace_id is not None and span.trace_id != trace_id:
                continue
            if name is not None and span.name != name:
                continue
            if node is not None and span.node != node:
                continue
            out.append(span)
        return out

    def trace_ids(self) -> list[str]:
        """Distinct trace ids in first-seen order."""
        seen: dict[str, None] = {}
        for span in self._spans:
            if span.trace_id not in seen:
                seen[span.trace_id] = None
        return list(seen)

    def clear(self) -> None:
        self._spans.clear()
        self._dropped = 0
        self._next_trace = 0
        self._next_span = 0
