"""Telemetry sinks: deterministic JSONL span export and tree rendering.

The exporter is the bridge from in-memory spans to artifacts: one JSON
object per line, lines ordered by ``(trace_id, span_id)`` and each line
serialised with sorted keys, so identical span streams yield
byte-identical files (DET004-compliant: nothing iterates an unsorted
container on the way out).
"""

from __future__ import annotations

import json
import pathlib
from typing import Iterable, Optional, Sequence, TextIO, Union

from repro.errors import ConfigurationError
from repro.telemetry.spans import Span


def span_sort_key(span: Span) -> tuple[str, int]:
    return (span.trace_id, span.span_id)


def write_jsonl(
    spans: Iterable[Span], destination: Union[str, pathlib.Path, TextIO]
) -> int:
    """Write spans as sorted JSONL; returns the number of lines written."""
    ordered = sorted(spans, key=span_sort_key)
    lines = [json.dumps(span.to_dict(), sort_keys=True) for span in ordered]
    text = "".join(line + "\n" for line in lines)
    if isinstance(destination, (str, pathlib.Path)):
        pathlib.Path(destination).write_text(text, encoding="utf-8")
    else:
        destination.write(text)
    return len(lines)


def read_jsonl(source: Union[str, pathlib.Path, TextIO]) -> list[Span]:
    """Read spans back from a JSONL export (inverse of :func:`write_jsonl`)."""
    if isinstance(source, (str, pathlib.Path)):
        text = pathlib.Path(source).read_text(encoding="utf-8")
    else:
        text = source.read()
    spans = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            spans.append(Span.from_dict(json.loads(line)))
        except (json.JSONDecodeError, KeyError) as exc:
            raise ConfigurationError(
                f"invalid span JSONL at line {lineno}: {exc}"
            ) from exc
    return spans


def render_hop_tree(spans: Sequence[Span], trace_id: Optional[str] = None) -> str:
    """ASCII tree of one trace's spans, children indented under parents.

    ``trace_id=None`` picks the first trace present.  Spans whose parent
    was dropped by the recorder cap render at the root rather than being
    lost.
    """
    if trace_id is None:
        for span in sorted(spans, key=span_sort_key):
            trace_id = span.trace_id
            break
    selected = sorted(
        (span for span in spans if span.trace_id == trace_id), key=span_sort_key
    )
    if not selected:
        return "(no spans)"
    by_id = {span.span_id: span for span in selected}
    children: dict[Optional[int], list[Span]] = {}
    for span in selected:
        parent = span.parent_id if span.parent_id in by_id else None
        children.setdefault(parent, []).append(span)

    lines: list[str] = [f"trace {trace_id}"]

    def walk(span: Span, depth: int) -> None:
        at = f" node={span.node}" if span.node is not None else ""
        rendered = " ".join(f"{k}={v}" for k, v in span.attrs)
        suffix = f" [{rendered}]" if rendered else ""
        window = (
            f"t={span.start:g}"
            if span.end == span.start
            else f"t={span.start:g}..{span.end:g}"
        )
        lines.append(f"{'  ' * (depth + 1)}{span.name}{at} {window}{suffix}")
        for child in children.get(span.span_id, ()):
            walk(child, depth + 1)

    for root in children.get(None, ()):
        walk(root, 0)
    return "\n".join(lines)
