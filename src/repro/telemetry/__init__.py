"""repro.telemetry — deterministic spans, metrics, and run introspection.

The observability layer for the whole stack, in three parts:

- **spans** (:mod:`repro.telemetry.spans`) — parent-linked causal spans
  keyed by *simulation* time, so one lookup's full hop tree
  (send → forward → dup-drop → reply) is reconstructable;
- **metrics** (:mod:`repro.telemetry.metrics`) — one
  :class:`MetricsRegistry` of named counters/gauges/histograms absorbing
  the old module-global events counter and the drivers'
  ``TrafficCounters`` totals as labeled series;
- **sinks** (:mod:`repro.telemetry.sinks`) — deterministic JSONL span
  export and hop-tree rendering behind ``mpil-experiments trace`` and
  ``api.telemetry()``.

Drivers see all of this through one :class:`Telemetry` handle.  The
handle is *ambient*: :meth:`ExperimentSpec.run
<repro.experiments.spec.ExperimentSpec.run>` installs one via
:func:`use` and drivers resolve :func:`current` at request entry.  An
ambient handle (rather than a constructor argument) is deliberate —
networks and testbeds are memoized in bounded construction caches across
runs, so a handle captured at construction time would go stale; the
ambient lookup always observes the run in progress.

Zero-overhead-when-disabled contract: ``current().spans`` is ``None``
unless a caller opted into tracing, and drivers hoist it into a local
and guard every emission with ``if spans is not None`` (the same idiom
as the existing ``TraceRecorder`` hooks).  Metrics are always-on but
O(1) integer bumps at request granularity, outside the per-event hot
paths.  Determinism contract: telemetry draws no RNG and reads no wall
clock outside the DET003 allowlist (see
:mod:`repro.telemetry.progress`), so every experiment artifact is
byte-identical with telemetry off *and* on.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Iterator, Optional

from repro.telemetry.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    reset_runtime_metrics,
    runtime_registry,
)
from repro.telemetry.spans import Span, SpanRecorder

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanRecorder",
    "Telemetry",
    "current",
    "reset_runtime_metrics",
    "runtime_registry",
    "use",
]


@dataclasses.dataclass
class Telemetry:
    """One run's observability handle: a metrics registry + optional spans.

    ``spans is None`` means tracing is disabled (the default); drivers
    skip all span work in that case.  ``metrics`` is always present so
    driver-side counter bumps never need a guard.
    """

    metrics: MetricsRegistry = dataclasses.field(default_factory=MetricsRegistry)
    spans: Optional[SpanRecorder] = None

    @classmethod
    def with_spans(cls, max_spans: Optional[int] = 200_000) -> "Telemetry":
        """A handle with tracing enabled."""
        return cls(spans=SpanRecorder(max_spans=max_spans))

    def snapshot(self) -> dict:
        """Metrics snapshot plus span accounting (for blobs and display)."""
        out = {"metrics": self.metrics.snapshot()}
        if self.spans is not None:
            out["spans"] = {
                "recorded": len(self.spans),
                "dropped": self.spans.dropped,
            }
        return out


#: the ambient handle drivers observe; the default drops no counter bumps
#: (they land in a throwaway registry) and records no spans
_DEFAULT = Telemetry()
_CURRENT = _DEFAULT


def current() -> Telemetry:
    """The ambient :class:`Telemetry` handle for the run in progress."""
    return _CURRENT


@contextlib.contextmanager
def use(telemetry: Telemetry) -> Iterator[Telemetry]:
    """Install ``telemetry`` as the ambient handle for the ``with`` body.

    Installed by :meth:`ExperimentSpec.run
    <repro.experiments.spec.ExperimentSpec.run>` around every experiment
    run; nests correctly (the previous handle is restored on exit) so a
    spec invoked from inside another run observes only its own scope.
    """
    global _CURRENT
    previous = _CURRENT
    _CURRENT = telemetry
    try:
        yield telemetry
    finally:
        _CURRENT = previous
