"""Optional structured event tracing.

Drivers accept an optional :class:`TraceRecorder`; when supplied, they emit
one :class:`TraceRecord` per interesting event (send, receive, store, reply,
drop...).  Tests use traces to assert on fine-grained protocol behaviour
without instrumenting the drivers themselves.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterator, Optional


@dataclasses.dataclass(frozen=True)
class TraceRecord:
    """A single traced event."""

    time: float
    kind: str
    node: int
    detail: dict[str, Any]

    def __str__(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[t={self.time:.6g}] {self.kind} @node{self.node} ({parts})"


class TraceRecorder:
    """Append-only trace sink with simple filtering helpers.

    Bounded recorders (``max_records``) count overflow instead of losing
    it silently: :attr:`dropped` says how many records were discarded, so
    a truncated trace is never mistaken for a complete one.
    """

    def __init__(self, max_records: Optional[int] = None):
        self._records: list[TraceRecord] = []
        self._max_records = max_records
        self._dropped = 0

    def emit(self, time: float, kind: str, node: int, **detail: Any) -> None:
        if self._max_records is not None and len(self._records) >= self._max_records:
            self._dropped += 1
            return
        self._records.append(TraceRecord(time=time, kind=kind, node=node, detail=detail))

    @property
    def dropped(self) -> int:
        """Records discarded because the recorder was full."""
        return self._dropped

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self._records)

    def __str__(self) -> str:
        suffix = f", {self._dropped} dropped" if self._dropped else ""
        return f"TraceRecorder({len(self._records)} records{suffix})"

    def of_kind(self, kind: str) -> list[TraceRecord]:
        """All records with the given kind, in emission order."""
        return [r for r in self._records if r.kind == kind]

    def at_node(self, node: int) -> list[TraceRecord]:
        """All records emitted at the given node, in emission order."""
        return [r for r in self._records if r.node == node]

    def clear(self) -> None:
        self._records.clear()
        self._dropped = 0
