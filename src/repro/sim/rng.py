"""Deterministic named random streams.

Every source of randomness in the library flows through :func:`derive_rng`,
which maps a root seed plus a tuple of string/int labels to an independent
``random.Random`` instance.  Two properties matter:

- *determinism*: the same ``(seed, labels)`` always yields the same stream,
  regardless of call order or what other streams were created;
- *independence*: distinct label tuples yield streams that do not overlap in
  practice (labels are hashed with BLAKE2b before seeding).

This is what makes experiment tables byte-for-byte reproducible.
"""

from __future__ import annotations

import hashlib
import random

from repro.errors import ConfigurationError


def validate_seed(seed: object) -> object:
    """Reject seeds whose ``repr`` silently forks random trajectories.

    Streams are derived from ``repr(seed)``, so ``0``, ``"0"``, ``0.0``, and
    ``True`` are four *different* seeds — a classic way to corrupt a
    replicate set.  Valid seeds are a real int (bools are rejected) or a
    composite tuple whose root (first element, recursively) is a real int;
    the remaining tuple elements are stream labels and may be anything.
    Returns the seed unchanged so call sites can validate inline.

    >>> validate_seed(7)
    7
    >>> validate_seed((0, "flap", "30:30", 0.5))[0]
    0
    """
    root = seed
    while isinstance(root, tuple):
        if not root:
            raise ConfigurationError("composite seed tuple must be non-empty")
        root = root[0]
    if isinstance(root, bool) or not isinstance(root, int):
        raise ConfigurationError(
            f"seed root must be an int, got {type(root).__name__} {root!r} "
            f"(streams hash repr(seed), so e.g. '0' and 0 would silently diverge)"
        )
    return seed


def derive_seed(seed: object, *labels: object) -> int:
    """Derive a 64-bit integer seed from a root seed and a label path.

    >>> derive_seed(0, "flap", 3) == derive_seed(0, "flap", 3)
    True
    >>> derive_seed(0, "flap", 3) != derive_seed(0, "flap", 4)
    True
    """
    digest = hashlib.blake2b(digest_size=8)
    digest.update(repr(seed).encode("utf-8"))
    for label in labels:
        digest.update(b"/")
        digest.update(repr(label).encode("utf-8"))
    return int.from_bytes(digest.digest(), "big")


def derive_rng(seed: object, *labels: object) -> random.Random:
    """Return a ``random.Random`` seeded from ``derive_seed(seed, *labels)``."""
    return random.Random(derive_seed(seed, *labels))
