"""A minimal heap-based discrete-event scheduler.

The engine is intentionally small: events are ``(time, sequence, callback)``
triples on a binary heap.  Ties in time are broken by insertion order, which
makes runs deterministic.  Cancellation is lazy (events are flagged and
skipped when popped), which keeps :meth:`EventScheduler.cancel` O(1).
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

from repro.errors import SimulationError

#: process-wide count of events executed by *all* scheduler instances.
#: Experiments create many short-lived schedulers (one per timed lookup),
#: so per-instance ``processed`` undercounts a whole run; the sweep runner
#: snapshots this total around each task to record event counts in the
#: result-store manifest.
_TOTAL_PROCESSED = 0


def events_processed_total() -> int:
    """Events executed in this process, summed over every scheduler."""
    return _TOTAL_PROCESSED


class Event:
    """A scheduled callback.  Returned by :meth:`EventScheduler.schedule`.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    cancelled:
        True once :meth:`EventScheduler.cancel` has been called; cancelled
        events are skipped when their time arrives.
    """

    __slots__ = ("time", "seq", "callback", "args", "cancelled")

    def __init__(self, time: float, seq: int, callback: Callable[..., None], args: tuple):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, seq={self.seq}, {state})"


class EventScheduler:
    """Discrete-event scheduler with deterministic tie-breaking.

    >>> eng = EventScheduler()
    >>> fired = []
    >>> _ = eng.schedule(2.0, fired.append, "b")
    >>> _ = eng.schedule(1.0, fired.append, "a")
    >>> eng.run()
    2
    >>> fired
    ['a', 'b']
    >>> eng.now
    2.0
    """

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        event = Event(float(time), next(self._seq), callback, args)
        heapq.heappush(self._heap, event)
        return event

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        event.cancelled = True

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if drained."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        global _TOTAL_PROCESSED
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self._processed += 1
            _TOTAL_PROCESSED += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until`` is given, the clock is advanced to ``until`` even if
        the queue drains earlier, so repeated ``run(until=...)`` calls form a
        monotonic timeline.
        """
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return executed
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = float(until)
        return executed
