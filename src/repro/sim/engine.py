"""A minimal heap-based discrete-event scheduler.

The engine is array-backed: the heap itself holds ``(time, seq, slot)``
triples (compared in C, never through a Python ``__lt__``), while callback
and argument references live in parallel slot arrays recycled through a
freelist — so steady-state event churn allocates no per-event objects
beyond the heap entry.  Ties in time are broken by insertion order, which
makes runs deterministic.  Cancellation is lazy (cancelled sequence numbers
are skipped when popped), which keeps :meth:`EventScheduler.cancel` O(1).

:meth:`EventScheduler.post` is the hot-path entry: it schedules a callback
without materialising an :class:`Event` handle.  :meth:`EventScheduler.run_until`
drains every event up to a time bound in one tight loop (the batched form
the timed drivers use), updating the process-wide event counter once per
batch instead of once per event.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.telemetry.metrics import runtime_registry

#: process-wide count of events executed by *all* scheduler instances and
#: synchronous drivers (see :func:`add_events_processed`).  Experiments
#: create many short-lived schedulers (one per timed lookup), so
#: per-instance ``processed`` undercounts a whole run; the sweep runner and
#: the perf profiler reset/snapshot this total around each task to record
#: event counts and events/sec in manifests and BENCH files.  The count
#: lives on the process-wide :class:`~repro.telemetry.metrics.MetricsRegistry`
#: (series ``sim_events_processed_total``); the functions below are shims
#: kept for their many call sites.  Registry resets zero the counter in
#: place, so holding the handle here stays correct across sweep tasks.
_EVENTS = runtime_registry().counter("sim_events_processed_total")


def events_processed_total() -> int:
    """Events executed in this process, summed over every scheduler and
    synchronous driver, since start or the last :func:`reset_events_processed`."""
    return int(_EVENTS.value)


def reset_events_processed() -> int:
    """Zero the process-wide event counter and return its previous value.

    The sweep runner calls this at the start of every task (in the worker
    process that executes it) so event counts and events/sec are never
    polluted by earlier tasks that ran in the same pooled process.
    """
    previous = int(_EVENTS.value)
    _EVENTS.value = 0
    return previous


def add_events_processed(count: int) -> None:
    """Credit ``count`` simulation events to the process-wide counter.

    The synchronous drivers (static MPIL message propagation, per-hop
    Pastry routing) do discrete-event work without an
    :class:`EventScheduler`; they tally locally and credit the total once
    per request so ``events_processed_total`` reflects *all* simulation
    work, not only scheduler callbacks.
    """
    _EVENTS.inc(count)


class Event:
    """A scheduled callback handle.  Returned by :meth:`EventScheduler.schedule`.

    Attributes
    ----------
    time:
        Absolute simulation time at which the callback fires.
    seq:
        Insertion sequence number (the deterministic tie-breaker).
    cancelled:
        True once :meth:`EventScheduler.cancel` has been called; cancelled
        events are skipped when their time arrives.
    """

    __slots__ = ("time", "seq", "cancelled")

    def __init__(self, time: float, seq: int):
        self.time = time
        self.seq = seq
        self.cancelled = False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        return f"Event(t={self.time:.6g}, seq={self.seq}, {state})"


class EventScheduler:
    """Discrete-event scheduler with deterministic tie-breaking.

    >>> eng = EventScheduler()
    >>> fired = []
    >>> _ = eng.schedule(2.0, fired.append, "b")
    >>> _ = eng.schedule(1.0, fired.append, "a")
    >>> eng.run()
    2
    >>> fired
    ['a', 'b']
    >>> eng.now
    2.0
    """

    __slots__ = (
        "_now",
        "_heap",
        "_callbacks",
        "_args",
        "_free",
        "_pending_seqs",
        "_cancelled",
        "_seq",
        "_processed",
    )

    def __init__(self, start_time: float = 0.0):
        self._now = float(start_time)
        #: heap of (time, seq, slot) — compared left-to-right in C; seq is
        #: unique, so slot never participates in a comparison
        self._heap: List[Tuple[float, int, int]] = []
        #: slot arrays recycled through the freelist
        self._callbacks: List[Optional[Callable[..., None]]] = []
        self._args: List[Optional[tuple]] = []
        self._free: List[int] = []
        #: sequence numbers still on the heap — what makes cancel() after
        #: fire a true no-op instead of a leaked _cancelled entry
        self._pending_seqs: set[int] = set()
        #: sequence numbers cancelled before firing (discarded on pop)
        self._cancelled: set[int] = set()
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of events still on the heap (including cancelled ones)."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Total number of events executed so far."""
        return self._processed

    def _push(self, time: float, callback: Callable[..., None], args: tuple) -> int:
        """Allocate a slot (reusing the freelist) and push a heap entry."""
        free = self._free
        if free:
            slot = free.pop()
            self._callbacks[slot] = callback
            self._args[slot] = args
        else:
            slot = len(self._callbacks)
            self._callbacks.append(callback)
            self._args.append(args)
        seq = self._seq
        self._seq = seq + 1
        self._pending_seqs.add(seq)
        heappush(self._heap, (time, seq, slot))
        return seq

    def post(self, time: float, callback: Callable[..., None], *args: Any) -> None:
        """Schedule ``callback(*args)`` at absolute time ``time`` without
        creating an :class:`Event` handle (the hot path for fire-and-forget
        events, which is every message in the timed drivers)."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        self._push(float(time), callback, args)

    def schedule_at(self, time: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at t={time} before current time t={self._now}"
            )
        time = float(time)
        seq = self._push(time, callback, args)
        return Event(time, seq)

    def schedule(self, delay: float, callback: Callable[..., None], *args: Any) -> Event:
        """Schedule ``callback(*args)`` after ``delay`` time units."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule_at(self._now + delay, callback, *args)

    def cancel(self, event: Event) -> None:
        """Cancel a scheduled event (no-op if it already fired)."""
        event.cancelled = True
        if event.seq in self._pending_seqs:
            self._cancelled.add(event.seq)

    def _discard(self, slot: int) -> None:
        """Release a slot back to the freelist, dropping its references."""
        self._callbacks[slot] = None
        self._args[slot] = None
        self._free.append(slot)

    def peek_time(self) -> Optional[float]:
        """Time of the next non-cancelled event, or None if drained."""
        heap = self._heap
        cancelled = self._cancelled
        while heap and heap[0][1] in cancelled:
            _time, seq, slot = heappop(heap)
            cancelled.discard(seq)
            self._pending_seqs.discard(seq)
            self._discard(slot)
        return heap[0][0] if heap else None

    def step(self) -> bool:
        """Execute the next event.  Returns False if the queue is empty."""
        heap = self._heap
        cancelled = self._cancelled
        while heap:
            time, seq, slot = heappop(heap)
            self._pending_seqs.discard(seq)
            if seq in cancelled:
                cancelled.discard(seq)
                self._discard(slot)
                continue
            callback = self._callbacks[slot]
            args = self._args[slot]
            self._discard(slot)
            self._now = time
            self._processed += 1
            add_events_processed(1)
            assert callback is not None and args is not None
            callback(*args)
            return True
        return False

    def _drain(self) -> int:
        """Execute every remaining event (no time bound, clock follows the
        events).  Returns the number executed."""
        heap = self._heap
        cancelled = self._cancelled
        pending = self._pending_seqs
        callbacks = self._callbacks
        args_list = self._args
        free = self._free
        executed = 0
        while heap:
            time, seq, slot = heappop(heap)
            pending.discard(seq)
            callback = callbacks[slot]
            args = args_list[slot]
            callbacks[slot] = None
            args_list[slot] = None
            free.append(slot)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            executed += 1
            assert callback is not None and args is not None
            callback(*args)
        self._processed += executed
        add_events_processed(executed)
        return executed

    def run_until(self, until: float) -> int:
        """Execute every event with time ``<= until`` in one batched loop,
        then advance the clock to ``until``.  Returns the number executed.

        ``until`` must not precede the current time: a long-lived windowed
        driver calling ``run_until`` with out-of-order bounds would
        otherwise silently corrupt its timeline, so a backwards bound
        raises :class:`~repro.errors.SimulationError` (the clock never
        moves backwards).

        This is the fast path behind :meth:`run`: one tight loop with the
        heap and slot arrays in locals, and a single process-counter update
        per batch rather than per event.
        """
        if until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before current time t={self._now}; "
                f"the simulation clock never moves backwards"
            )
        heap = self._heap
        cancelled = self._cancelled
        pending = self._pending_seqs
        callbacks = self._callbacks
        args_list = self._args
        free = self._free
        executed = 0
        while heap and heap[0][0] <= until:
            time, seq, slot = heappop(heap)
            pending.discard(seq)
            callback = callbacks[slot]
            args = args_list[slot]
            callbacks[slot] = None
            args_list[slot] = None
            free.append(slot)
            if seq in cancelled:
                cancelled.discard(seq)
                continue
            self._now = time
            executed += 1
            assert callback is not None and args is not None
            callback(*args)
        if until > self._now:
            self._now = float(until)
        self._processed += executed
        add_events_processed(executed)
        return executed

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run events until the queue drains, ``until`` is reached, or
        ``max_events`` have executed.  Returns the number executed.

        When ``until`` is given, the clock is advanced to ``until`` even if
        the queue drains earlier, so repeated ``run(until=...)`` calls form a
        monotonic timeline.  A bound earlier than the current time raises
        :class:`~repro.errors.SimulationError` (see :meth:`run_until`).
        """
        if until is not None and until < self._now:
            raise SimulationError(
                f"cannot run until t={until} before current time t={self._now}; "
                f"the simulation clock never moves backwards"
            )
        if max_events is None:
            return self._drain() if until is None else self.run_until(until)
        executed = 0
        while executed < max_events:
            next_time = self.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                break
            self.step()
            executed += 1
        if until is not None and until > self._now:
            self._now = float(until)
        return executed
