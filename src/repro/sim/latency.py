"""Message latency models.

The static MPIL experiments are message-level and hop-counted, so latency is
irrelevant there.  The perturbation experiments (paper Sections 3 and 6.2)
run over a GT-ITM-style transit-stub underlay; overlay hops inherit the
underlay's shortest-path delay between the endpoints' attachment points.
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

from repro.errors import ConfigurationError
from repro.sim.rng import derive_rng


@runtime_checkable
class LatencyModel(Protocol):
    """Protocol for pairwise one-way message latency in seconds."""

    def latency(self, src: int, dst: int) -> float:
        ...  # pragma: no cover - protocol


class ConstantLatency:
    """Every message takes exactly ``value`` seconds."""

    def __init__(self, value: float = 0.05):
        if value < 0:
            raise ConfigurationError(f"latency must be non-negative, got {value}")
        self.value = float(value)

    def latency(self, src: int, dst: int) -> float:  # noqa: ARG002
        return self.value


class UniformRandomLatency:
    """Latency drawn once per ordered pair, uniform in [lo, hi].

    Pair latencies are symmetric and memoised, so repeated sends between the
    same endpoints see a stable delay (as they would on a real path).
    """

    def __init__(self, lo: float, hi: float, seed: object = 0):
        if not 0 <= lo <= hi:
            raise ConfigurationError(f"invalid latency range [{lo}, {hi}]")
        self.lo = float(lo)
        self.hi = float(hi)
        self._seed = seed
        self._cache: dict[tuple[int, int], float] = {}

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        key = (min(src, dst), max(src, dst))
        value = self._cache.get(key)
        if value is None:
            rng = derive_rng(self._seed, "latency", key)
            value = rng.uniform(self.lo, self.hi)
            self._cache[key] = value
        return value


class UnderlayLatency:
    """Overlay latency derived from an underlay's all-pairs delays.

    Parameters
    ----------
    underlay:
        Object exposing ``pairwise_latency(u, v) -> float`` (see
        :class:`repro.overlay.transit_stub.TransitStubUnderlay`).
    attachment:
        Sequence mapping overlay node index -> underlay node index.
    """

    def __init__(self, underlay, attachment: Sequence[int]):
        self.underlay = underlay
        self.attachment = tuple(int(a) for a in attachment)
        n_under = underlay.num_nodes
        for a in self.attachment:
            if not 0 <= a < n_under:
                raise ConfigurationError(
                    f"attachment point {a} outside underlay of size {n_under}"
                )
        #: lazily materialised per-source rows of the overlay-level latency
        #: matrix, as plain float lists (dict/list indexing beats a numpy
        #: scalar read per message by an order of magnitude)
        self._rows: dict[int, list[float]] = {}

    def latency_row(self, src: int, n: int) -> list[float]:
        """Latencies from overlay node ``src`` to overlay nodes ``0..n-1``.

        ``n`` must not exceed the attachment size; rows are cached, so the
        routing-table builder and the per-message hot path share them.
        """
        if n > len(self.attachment):
            raise ConfigurationError(
                f"latency row for {n} overlay nodes requested, but only "
                f"{len(self.attachment)} nodes are attached to the underlay"
            )
        row = self._rows.get(src)
        if row is None:
            matrix = getattr(self.underlay, "latency_matrix", None)
            if matrix is not None:
                attached = list(self.attachment)
                row = matrix()[self.attachment[src], attached].tolist()
            else:
                pairwise = self.underlay.pairwise_latency
                source = self.attachment[src]
                row = [pairwise(source, a) for a in self.attachment]
            self._rows[src] = row
        return row[:n] if n < len(row) else row

    def latency(self, src: int, dst: int) -> float:
        if src == dst:
            return 0.0
        row = self._rows.get(src)
        if row is None:
            row = self.latency_row(src, len(self.attachment))
        return row[dst]
