"""Traffic and bookkeeping counters shared by all simulation drivers.

The paper reports several message-count metrics (insertion traffic, lookup
traffic, duplicate messages, maintenance traffic).  ``TrafficCounters``
gives them one home with explicit names so experiment code never invents
ad-hoc dictionaries.
"""

from __future__ import annotations

import dataclasses


@dataclasses.dataclass
class TrafficCounters:
    """Mutable counter block.

    ``messages_sent`` follows the paper's convention: "a counter is increased
    by one whenever a node sends a message to a single neighbor", so a node
    that forwards one logical message to three neighbors adds three.
    """

    messages_sent: int = 0
    duplicates: int = 0
    lost_offline: int = 0
    replies_sent: int = 0
    replies_received: int = 0
    retransmissions: int = 0
    probes_sent: int = 0
    drops_hop_limit: int = 0

    def merge(self, other: "TrafficCounters") -> None:
        """Add every field of ``other`` into this counter block."""
        for field in dataclasses.fields(self):
            setattr(self, field.name, getattr(self, field.name) + getattr(other, field.name))

    def copy(self) -> "TrafficCounters":
        return dataclasses.replace(self)

    def as_dict(self) -> dict[str, int]:
        return dataclasses.asdict(self)

    @property
    def total(self) -> int:
        """Sum of all message-like counters (excludes duplicates, which are
        a classification of received messages, not extra sends)."""
        return (
            self.messages_sent
            + self.replies_sent
            + self.retransmissions
            + self.probes_sent
        )
