"""Node availability interfaces.

An availability model answers one question: is node ``i`` online at time
``t``?  The perturbation experiments plug in the scenario engine's
processes (:class:`repro.perturbation.flapping.FlappingSchedule`, churn,
outages, storms, removals — or any :class:`ScenarioTimeline` composition
of them; see :mod:`repro.perturbation.base`); static experiments use
:class:`AlwaysOnline`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable


@runtime_checkable
class AvailabilityModel(Protocol):
    """Protocol for availability oracles used by timed simulations."""

    def is_online(self, node: int, time: float) -> bool:
        """Return True when ``node`` is responsive at simulation time ``time``."""
        ...  # pragma: no cover - protocol


class AlwaysOnline:
    """Trivial availability model: every node is always online."""

    def is_online(self, node: int, time: float) -> bool:  # noqa: ARG002
        return True
