"""Discrete-event simulation substrate.

This package provides the small, dependency-free pieces every simulation in
the library is built on:

- :mod:`repro.sim.rng` — deterministic named random streams;
- :mod:`repro.sim.engine` — a heap-based discrete-event scheduler;
- :mod:`repro.sim.counters` — traffic/bookkeeping counters;
- :mod:`repro.sim.latency` — message latency models;
- :mod:`repro.sim.availability` — node availability interfaces;
- :mod:`repro.sim.trace` — optional structured event tracing.

The paper's first simulator ("a simulator written in Python that simulates
overlay-level routing ... a message-level simulator, not a packet-level
simulator") corresponds to the synchronous drivers in :mod:`repro.core`;
the MSPastry-style timed simulations are driven by the event engine here.
"""

from repro.sim.availability import AlwaysOnline, AvailabilityModel
from repro.sim.counters import TrafficCounters
from repro.sim.engine import (
    Event,
    EventScheduler,
    add_events_processed,
    events_processed_total,
    reset_events_processed,
)
from repro.sim.latency import ConstantLatency, LatencyModel, UnderlayLatency
from repro.sim.rng import derive_rng, derive_seed

__all__ = [
    "AlwaysOnline",
    "AvailabilityModel",
    "ConstantLatency",
    "Event",
    "EventScheduler",
    "LatencyModel",
    "TrafficCounters",
    "UnderlayLatency",
    "add_events_processed",
    "derive_rng",
    "derive_seed",
    "events_processed_total",
    "reset_events_processed",
]
