"""Pastry ring state: sorted identifier ring, leaf sets, routing tables.

Node identifiers live on a circular identifier space.  The *root* of a key
is the node whose identifier is numerically closest on the ring (ties break
toward the lower identifier, deterministically).  A node's leaf set holds
the l/2 closest nodes clockwise and counter-clockwise; its routing table
holds, per (prefix-length, next-digit) cell, one node whose identifier
shares exactly that prefix with the owner — chosen by lowest latency when a
latency model is available (Pastry's proximity neighbor selection),
otherwise pseudo-randomly.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

import numpy as np

from repro.core.identifiers import Identifier
from repro.errors import ConfigurationError
from repro.sim.rng import derive_rng


class PastryRing:
    """Sorted ring over node identifiers with root/leaf-set queries.

    Besides the sorted order, the ring caches each node's raw identifier
    value (``values``) and memoises shared-prefix lengths per
    ``(node, key)`` — the digit decomposition at the core of every routing
    step — so repeated lookups of the same objects never recompute them.
    """

    #: cap on the shared-prefix memo (ints in, ints out — tiny entries, but
    #: unbounded key streams exist in principle)
    PREFIX_CACHE_LIMIT = 1_000_000

    def __init__(self, ids: Sequence[Identifier]):
        if not ids:
            raise ConfigurationError("ring needs at least one node")
        self.ids = tuple(ids)
        self.space = ids[0].space
        n = len(ids)
        values = [identifier.value for identifier in ids]
        if len(set(values)) != n:
            raise ConfigurationError("node identifiers must be unique")
        self.ring_order = sorted(range(n), key=lambda i: values[i])
        self.position_of = {node: pos for pos, node in enumerate(self.ring_order)}
        self.sorted_values = [values[node] for node in self.ring_order]
        #: raw identifier value per node index (hot-path view; avoids an
        #: attribute hop through ``ids[node].value`` per routing step)
        self.values: tuple[int, ...] = tuple(values)
        self._prefix_cache: dict[tuple[int, int], int] = {}

    def prefix_len(self, node: int, key: Identifier) -> int:
        """Memoised ``ids[node].prefix_match_len(key)`` (the per-hop digit
        decomposition of the Pastry routing rule)."""
        cache_key = (node, key.value)
        cached = self._prefix_cache.get(cache_key)
        if cached is None:
            if len(self._prefix_cache) >= self.PREFIX_CACHE_LIMIT:
                self._prefix_cache.clear()
            cached = self.ids[node].prefix_match_len(key)
            self._prefix_cache[cache_key] = cached
        return cached

    @property
    def n(self) -> int:
        return len(self.ids)

    def circular_distance(self, a_value: int, b_value: int) -> int:
        d = abs(a_value - b_value)
        return min(d, self.space.size - d)

    def root_of(self, key: Identifier) -> int:
        """Node numerically closest to ``key`` on the ring."""
        n = self.n
        idx = bisect.bisect_left(self.sorted_values, key.value)
        best_node: Optional[int] = None
        best = (0, 0)
        for candidate_pos in (idx % n, (idx - 1) % n):
            node = self.ring_order[candidate_pos]
            dist = self.circular_distance(self.ids[node].value, key.value)
            rank = (dist, self.ids[node].value)
            if best_node is None or rank < best:
                best_node = node
                best = rank
        assert best_node is not None
        return best_node

    def leaf_set(self, node: int, size: int) -> tuple[int, ...]:
        """The l/2 successors and l/2 predecessors of ``node`` on the ring.

        For rings smaller than ``size + 1`` the leaf set is simply every
        other node.
        """
        n = self.n
        if n - 1 <= size:
            return tuple(v for v in self.ring_order if v != node)
        half = size // 2
        pos = self.position_of[node]
        members: list[int] = []
        for offset in range(1, half + 1):
            members.append(self.ring_order[(pos + offset) % n])
        for offset in range(1, size - half + 1):
            members.append(self.ring_order[(pos - offset) % n])
        return tuple(dict.fromkeys(members))

    def signed_offset(self, from_value: int, to_value: int) -> int:
        """Ring offset of ``to`` relative to ``from`` mapped to
        (-size/2, size/2]; positive = clockwise."""
        size = self.space.size
        offset = (to_value - from_value) % size
        if offset > size // 2:
            offset -= size
        return offset


def build_leaf_sets(ring: PastryRing, leaf_set_size: int) -> list[tuple[int, ...]]:
    """Leaf sets for every node."""
    return [ring.leaf_set(node, leaf_set_size) for node in range(ring.n)]


def build_routing_tables(
    ring: PastryRing,
    latency=None,
    seed: object = 0,
) -> list[dict[tuple[int, int], int]]:
    """Routing tables for every node.

    Cell ``(r, c)`` of node ``i``'s table holds a node sharing exactly an
    ``r``-digit prefix with ``i`` and whose digit ``r`` is ``c``.  Among the
    candidates we keep the lowest-latency one when a latency model is given
    (proximity neighbor selection); otherwise the scan order is shuffled
    per node so the pick is pseudo-random but deterministic.

    Vectorised: per owner, one numpy pass over the shared digit matrix
    yields every candidate's (prefix length, next digit) cell, and a single
    stable sort realises the selection rule — first hit per cell in scan
    order, which for the latency path (ascending scan, strict-``<``
    replacement) is exactly "lowest latency, earliest index on ties".
    """
    ids = ring.ids
    n = ring.n
    rng = derive_rng(seed, "pastry-tables", n)
    base_order = list(range(n))
    base = ring.space.base
    digit_matrix = np.stack([identifier.digits_array for identifier in ids])
    all_rows = np.arange(n)
    tables: list[dict[tuple[int, int], int]] = []
    for i in range(n):
        mismatch = digit_matrix != digit_matrix[i]
        prefix = mismatch.argmax(axis=1)  # identifiers are unique, so every
        # j != i has a mismatch; row i itself is all-False (prefix 0) and is
        # dropped from the scan order below
        cells = prefix * base + digit_matrix[all_rows, prefix]
        if latency is None:
            order = base_order.copy()
            rng.shuffle(order)
            order_arr = np.asarray(order)
        else:
            row = getattr(latency, "latency_row", None)
            latencies = (
                row(i, n) if row is not None
                else [latency.latency(i, j) for j in range(n)]
            )
            order_arr = np.argsort(np.asarray(latencies), kind="stable")
        order_arr = order_arr[order_arr != i]
        _cells, first = np.unique(cells[order_arr], return_index=True)
        table: dict[tuple[int, int], int] = {}
        for position in first.tolist():
            j = int(order_arr[position])
            table[(int(prefix[j]), int(digit_matrix[j, prefix[j]]))] = j
        tables.append(table)
    return tables


def table_entry_count(tables: list[dict[tuple[int, int], int]]) -> float:
    """Average number of populated routing-table cells per node."""
    if not tables:
        return 0.0
    return sum(len(t) for t in tables) / len(tables)
