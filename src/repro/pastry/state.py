"""Pastry ring state: sorted identifier ring, leaf sets, routing tables.

Node identifiers live on a circular identifier space.  The *root* of a key
is the node whose identifier is numerically closest on the ring (ties break
toward the lower identifier, deterministically).  A node's leaf set holds
the l/2 closest nodes clockwise and counter-clockwise; its routing table
holds, per (prefix-length, next-digit) cell, one node whose identifier
shares exactly that prefix with the owner — chosen by lowest latency when a
latency model is available (Pastry's proximity neighbor selection),
otherwise pseudo-randomly.
"""

from __future__ import annotations

import bisect
from typing import Optional, Sequence

import numpy as np

from repro.core.identifiers import Identifier
from repro.core.soa import pack_digit_matrix
from repro.errors import ConfigurationError
from repro.sim.rng import derive_rng

#: memory ceiling for one vectorised table-build pass; results are
#: identical for any value >= 1 (tests shrink it to force multi-block runs)
_BUILD_BLOCK_BYTES = 48 << 20


class PastryRing:
    """Sorted ring over node identifiers with root/leaf-set queries.

    Besides the sorted order, the ring caches each node's raw identifier
    value (``values``) and memoises shared-prefix lengths per
    ``(node, key)`` — the digit decomposition at the core of every routing
    step — so repeated lookups of the same objects never recompute them.
    """

    #: cap on the shared-prefix memo (ints in, ints out — tiny entries, but
    #: unbounded key streams exist in principle)
    PREFIX_CACHE_LIMIT = 1_000_000

    def __init__(self, ids: Sequence[Identifier]):
        if not ids:
            raise ConfigurationError("ring needs at least one node")
        self.ids = tuple(ids)
        self.space = ids[0].space
        n = len(ids)
        values = [identifier.value for identifier in ids]
        if len(set(values)) != n:
            raise ConfigurationError("node identifiers must be unique")
        self.ring_order = sorted(range(n), key=lambda i: values[i])
        self.position_of = {node: pos for pos, node in enumerate(self.ring_order)}
        self.sorted_values = [values[node] for node in self.ring_order]
        #: raw identifier value per node index (hot-path view; avoids an
        #: attribute hop through ``ids[node].value`` per routing step)
        self.values: tuple[int, ...] = tuple(values)
        self._prefix_cache: dict[tuple[int, int], int] = {}
        self._digit_matrix: np.ndarray | None = None

    @property
    def digit_matrix(self) -> np.ndarray:
        """The shared ``(n, M)`` uint8 digit matrix of the ring's ids,
        built once (struct-of-arrays view shared by table construction)."""
        if self._digit_matrix is None:
            self._digit_matrix = pack_digit_matrix(self.ids)
        return self._digit_matrix

    def prefix_len(self, node: int, key: Identifier) -> int:
        """Memoised ``ids[node].prefix_match_len(key)`` (the per-hop digit
        decomposition of the Pastry routing rule)."""
        cache_key = (node, key.value)
        cached = self._prefix_cache.get(cache_key)
        if cached is None:
            if len(self._prefix_cache) >= self.PREFIX_CACHE_LIMIT:
                self._prefix_cache.clear()
            cached = self.ids[node].prefix_match_len(key)
            self._prefix_cache[cache_key] = cached
        return cached

    @property
    def n(self) -> int:
        return len(self.ids)

    def circular_distance(self, a_value: int, b_value: int) -> int:
        d = abs(a_value - b_value)
        return min(d, self.space.size - d)

    def root_of(self, key: Identifier) -> int:
        """Node numerically closest to ``key`` on the ring."""
        n = self.n
        idx = bisect.bisect_left(self.sorted_values, key.value)
        best_node: Optional[int] = None
        best = (0, 0)
        for candidate_pos in (idx % n, (idx - 1) % n):
            node = self.ring_order[candidate_pos]
            dist = self.circular_distance(self.ids[node].value, key.value)
            rank = (dist, self.ids[node].value)
            if best_node is None or rank < best:
                best_node = node
                best = rank
        assert best_node is not None
        return best_node

    def leaf_set(self, node: int, size: int) -> tuple[int, ...]:
        """The l/2 successors and l/2 predecessors of ``node`` on the ring.

        For rings smaller than ``size + 1`` the leaf set is simply every
        other node.
        """
        n = self.n
        if n - 1 <= size:
            return tuple(v for v in self.ring_order if v != node)
        half = size // 2
        pos = self.position_of[node]
        members: list[int] = []
        for offset in range(1, half + 1):
            members.append(self.ring_order[(pos + offset) % n])
        for offset in range(1, size - half + 1):
            members.append(self.ring_order[(pos - offset) % n])
        return tuple(dict.fromkeys(members))

    def signed_offset(self, from_value: int, to_value: int) -> int:
        """Ring offset of ``to`` relative to ``from`` mapped to
        (-size/2, size/2]; positive = clockwise."""
        size = self.space.size
        offset = (to_value - from_value) % size
        if offset > size // 2:
            offset -= size
        return offset


def build_leaf_sets(ring: PastryRing, leaf_set_size: int) -> list[tuple[int, ...]]:
    """Leaf sets for every node."""
    return [ring.leaf_set(node, leaf_set_size) for node in range(ring.n)]


def build_routing_tables(
    ring: PastryRing,
    latency=None,
    seed: object = 0,
) -> list[dict[tuple[int, int], int]]:
    """Routing tables for every node.

    Cell ``(r, c)`` of node ``i``'s table holds a node sharing exactly an
    ``r``-digit prefix with ``i`` and whose digit ``r`` is ``c``.  Among the
    candidates we keep the lowest-latency one when a latency model is given
    (proximity neighbor selection); otherwise the scan order is shuffled
    per node so the pick is pseudo-random but deterministic.

    Fully vectorised and blocked: owners are processed in blocks sized to a
    fixed broadcast budget.  One ``(B, n, M)`` comparison against the shared
    digit matrix yields every candidate's (prefix length, next digit) cell
    for the whole block, and a single cross-owner ``lexsort`` realises the
    selection rule — first hit per (owner, cell) in scan order, which for
    the latency path (ascending stable scan, strict-``<`` replacement) is
    exactly "lowest latency, earliest index on ties".  The per-owner
    ``rng.shuffle`` draws happen in owner order before each block's
    broadcast pass, so the RNG stream — and therefore every table — is
    byte-identical to the per-owner implementation.
    """
    n = ring.n
    rng = derive_rng(seed, "pastry-tables", n)
    base = ring.space.base
    digit_matrix = ring.digit_matrix
    num_digits = digit_matrix.shape[1] if n else 0
    # owners per broadcast pass, sized so the (B, n, M) mismatch tensor
    # stays around _BUILD_BLOCK_BYTES however large the ring is
    block = max(1, min(n, _BUILD_BLOCK_BYTES // max(1, n * num_digits)))
    arange_n = np.arange(n, dtype=np.int64)
    sentinel = num_digits * base  # parks each owner's self row off-table
    latency_row = getattr(latency, "latency_row", None) if latency is not None else None
    tables: list[dict[tuple[int, int], int]] = []
    for start in range(0, n, block):
        stop = min(n, start + block)
        width = stop - start
        if latency is None:
            orders = np.empty((width, n), dtype=np.int64)
            for k in range(width):
                order = list(range(n))
                rng.shuffle(order)
                orders[k] = order
        else:
            latencies = np.asarray([
                latency_row(i, n) if latency_row is not None
                else [latency.latency(i, j) for j in range(n)]
                for i in range(start, stop)
            ])
            orders = np.argsort(latencies, axis=1, kind="stable")
        # rank[k, j] = position of candidate j in owner (start+k)'s scan
        ranks = np.empty((width, n), dtype=np.int64)
        ranks[np.arange(width)[:, None], orders] = arange_n[None, :]
        mismatch = digit_matrix[None, :, :] != digit_matrix[start:stop, None, :]
        prefix = mismatch.argmax(axis=2)  # identifiers are unique, so every
        # j != owner has a mismatch; each owner's own row is all-False
        # (prefix 0) and is parked on the sentinel cell below
        cells = prefix * np.int64(base) + digit_matrix[arange_n[None, :], prefix]
        cells[np.arange(width), np.arange(start, stop)] = sentinel
        # first hit per (owner, cell): sort by cell then rank, keep the
        # first row of every run — min rank == earliest in scan order
        keys = (cells + np.int64(sentinel + 1) * np.arange(width)[:, None]).ravel()
        flat_ranks = ranks.ravel()
        by_cell = np.lexsort((flat_ranks, keys))
        sorted_keys = keys[by_cell]
        is_first = np.empty(sorted_keys.shape[0], dtype=bool)
        if sorted_keys.shape[0]:
            is_first[0] = True
            is_first[1:] = sorted_keys[1:] != sorted_keys[:-1]
        winners = by_cell[is_first]
        winner_cells = (keys[winners] % np.int64(sentinel + 1)).tolist()
        block_tables = [
            {} for _ in range(width)
        ]  # type: list[dict[tuple[int, int], int]]
        for flat, cell in zip(winners.tolist(), winner_cells):
            if cell == sentinel:
                continue
            block_tables[flat // n][divmod(cell, base)] = flat % n
        tables.extend(block_tables)
    return tables


def table_entry_count(tables: list[dict[tuple[int, int], int]]) -> float:
    """Average number of populated routing-table cells per node."""
    if not tables:
        return 0.0
    return sum(len(t) for t in tables) / len(tables)
