"""The probed-view oracle: each node's liveness beliefs under flapping.

MSPastry nodes learn about failures by probing: leaf-set members every 30 s
and routing-table entries every 90 s, with a 3 s probe timeout and 2
retries.  Simulating every probe message over the 600 000-second 300:300
runs is infeasible per-message in Python, so the oracle computes, on
demand, the *outcome* of the most recent probe interaction between an
observer and a target — which is exactly the observer's current belief.
DESIGN.md §2 documents this substitution; an event-driven replay
(:mod:`repro.pastry.maintenance`) validates the oracle on small cases.

Belief rules (per observer ``y``, target ``x``, time ``t``):

- ``y`` probes ``x`` at epochs ``phase(y) + k*P`` while online; a probe
  attempt succeeds if ``x`` responds to the initial send or either retry
  (spaced ``probe_timeout`` apart).  A successful attempt sets belief
  *alive* at the response time; a failed attempt sets belief *dead* once
  the last retry times out.
- For leaf sets, probing is symmetric: ``x`` probing ``y`` announces ``x``
  alive whenever both endpoints are online at one of the attempt times
  (this is how recovered nodes are re-added).  Routing-table entries get no
  such announcement (``x`` does not generally know it is in ``y``'s table).
- With no decisive interaction in the scan window, the initial belief
  (alive — the overlay was built on a static, fully-online stage) stands.

The most recent decisive event before ``t`` wins.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import ConfigurationError
from repro.pastry.config import PastryConfig
from repro.perturbation.flapping import FlappingSchedule
from repro.sim.rng import derive_rng

LEAFSET = "leafset"
TABLE = "table"


class ProbedViewOracle:
    """Analytic per-(observer, target, time) liveness beliefs."""

    def __init__(
        self,
        schedule: FlappingSchedule,
        config: PastryConfig = PastryConfig(),
        seed: object = 0,
        scan_limit: int = 120,
    ):
        if scan_limit < 1:
            raise ConfigurationError(f"scan_limit must be >= 1, got {scan_limit}")
        self.schedule = schedule
        self.config = config
        self.scan_limit = scan_limit
        n = schedule.num_nodes
        leafset_rng = derive_rng(seed, "probe-phase-leafset", n)
        table_rng = derive_rng(seed, "probe-phase-table", n)
        self._leafset_phase = [
            leafset_rng.uniform(0.0, config.leafset_probe_period) for _ in range(n)
        ]
        self._table_phase = [
            table_rng.uniform(0.0, config.routing_table_probe_period) for _ in range(n)
        ]

    def probe_phase(self, node: int, kind: str) -> float:
        return (
            self._leafset_phase[node] if kind == LEAFSET else self._table_phase[node]
        )

    def probe_period(self, kind: str) -> float:
        if kind == LEAFSET:
            return self.config.leafset_probe_period
        if kind == TABLE:
            return self.config.routing_table_probe_period
        raise ConfigurationError(f"unknown probe kind {kind!r}")

    # -- probe attempt outcomes ---------------------------------------------

    def attempt_times(self, start: float) -> list[float]:
        """Initial send plus retries, spaced by the probe timeout."""
        timeout = self.config.probe_timeout
        return [start + k * timeout for k in range(self.config.probe_retries + 1)]

    def _own_probe_event(
        self, observer: int, target: int, start: float, now: float
    ) -> Optional[tuple[float, bool]]:
        """Decisive (time, verdict) of an observer-initiated probe attempt
        starting at ``start``, as known at ``now``; None if skipped or still
        undecided."""
        online = self.schedule.is_online
        if not online(observer, start):
            return None  # observer offline: probe skipped
        for attempt in self.attempt_times(start):
            if online(target, attempt):
                if attempt <= now:
                    return (attempt, True)
                return None  # success lies in the future; undecided at `now`
        conclusion = start + (self.config.probe_retries + 1) * self.config.probe_timeout
        if conclusion <= now:
            return (conclusion, False)
        return None

    def _incoming_probe_event(
        self, observer: int, target: int, start: float, now: float
    ) -> Optional[tuple[float, bool]]:
        """Decisive (time, alive) of a target-initiated probe of the
        observer: the observer learns the target is alive iff both are
        online at one of the attempt times."""
        online = self.schedule.is_online
        if not online(target, start):
            return None
        for attempt in self.attempt_times(start):
            if attempt > now:
                return None
            if online(target, attempt) and online(observer, attempt):
                return (attempt, True)
        return None

    def _latest_event(
        self,
        observer: int,
        target: int,
        now: float,
        kind: str,
        incoming: bool,
    ) -> Optional[tuple[float, bool]]:
        period = self.probe_period(kind)
        prober = target if incoming else observer
        phase = self.probe_phase(prober, kind)
        if now < phase:
            return None
        max_epoch = int((now - phase) // period)
        min_epoch = max(0, max_epoch - self.scan_limit + 1)
        for epoch in range(max_epoch, min_epoch - 1, -1):
            start = phase + epoch * period
            if incoming:
                event = self._incoming_probe_event(observer, target, start, now)
            else:
                event = self._own_probe_event(observer, target, start, now)
            if event is not None:
                return event
        return None

    # -- public API -----------------------------------------------------------

    def believes_alive(
        self, observer: int, target: int, now: float, kind: str = LEAFSET
    ) -> bool:
        """Does ``observer`` currently believe ``target`` is alive?"""
        if observer == target:
            return True
        events = []
        own = self._latest_event(observer, target, now, kind, incoming=False)
        if own is not None:
            events.append(own)
        if kind == LEAFSET:
            incoming = self._latest_event(observer, target, now, kind, incoming=True)
            if incoming is not None:
                events.append(incoming)
        if not events:
            return True  # initial belief: the overlay was built fully online
        events.sort()
        return events[-1][1]

    # -- maintenance traffic accounting ---------------------------------------

    def expected_maintenance_messages(
        self,
        duration: float,
        avg_leafset_size: float,
        avg_table_entries: float,
    ) -> float:
        """Analytic estimate of maintenance messages over ``duration``.

        Each online node sends one probe per monitored peer per period;
        failed first attempts add retries.  Used for Figure 12's
        total-traffic comparison (magnitudes, not exact counts).
        """
        cfg = self.schedule.config
        online_fraction = 1.0 - cfg.expected_offline_fraction
        offline_fraction = cfg.expected_offline_fraction
        retry_factor = 1.0 + offline_fraction * self.config.probe_retries
        n = self.schedule.num_nodes
        leafset_rounds = duration / self.config.leafset_probe_period
        table_rounds = duration / self.config.routing_table_probe_period
        return n * online_fraction * retry_factor * (
            leafset_rounds * avg_leafset_size + table_rounds * avg_table_entries
        )
