"""Pastry insert/lookup protocol over static and perturbed overlays.

Stage 1 of every perturbation experiment inserts objects on the *static*
overlay ("1000 insertion requests are generated to the static overlay of
MSPastry"): the insert routes to the key's root, which stores the object —
or, in the "MSPastry with RR" (Replication on Route) variant, every node on
the route stores a replica ("every node on the route of an insertion
message stores a replica whether it's the target node or not").

Stage 2 issues lookups while nodes flap.  A lookup is simulated hop by hop
against ground-truth availability (the flapping schedule) and believed
availability (the probed-view oracle): each forward is acknowledged; an
unacknowledged send is retransmitted ``app_retransmissions`` times at RTT
scale, after which the hop is marked suspect for the remainder of this
lookup and the message re-routes around it.  The lookup succeeds iff the
delivery node holds the object (and can therefore reply directly to the
querying client).
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

from repro.core.identifiers import Identifier, IdSpace
from repro.core.replicas import ReplicaDirectory
from repro.errors import ConfigurationError, RoutingError
from repro.pastry.config import PastryConfig
from repro.pastry.routing import DELIVER, pastry_next_hop, static_route
from repro.pastry.state import (
    PastryRing,
    build_leaf_sets,
    build_routing_tables,
    table_entry_count,
)
from repro.pastry.views import ProbedViewOracle
from repro.sim.availability import AlwaysOnline, AvailabilityModel
from repro.sim.counters import TrafficCounters
from repro.sim.engine import add_events_processed
from repro.sim.latency import ConstantLatency, LatencyModel
from repro.sim.rng import derive_rng
from repro.telemetry import current as current_telemetry
from repro.util.cache import BoundedCache

#: ring + leaf sets + routing tables are a pure function of
#: (seed, n, space, config, latency); scenario experiments rebuild the
#: same structure for every run at one scale, so memoise it per process.
#: Entries hold the latency model so the id()-based key component stays
#: valid while the entry lives.
_STRUCTURE_CACHE: BoundedCache[tuple] = BoundedCache(maxsize=8)


@dataclasses.dataclass(frozen=True)
class PastryInsertResult:
    """Outcome of a static-stage insertion."""

    key: Identifier
    origin: int
    root: int
    path: tuple[int, ...]
    replicas: tuple[int, ...]
    messages: int


@dataclasses.dataclass(frozen=True)
class PastryLookupOutcome:
    """Outcome of one perturbed lookup."""

    key: Identifier
    origin: int
    start_time: float
    success: bool
    delivered_node: Optional[int]
    root: int
    hops: int
    messages: int
    retransmissions: int
    misdelivered: bool
    dropped: bool
    elapsed: float


class PastryNetwork:
    """A Pastry overlay with ideal initial state (built fully online).

    Parameters
    ----------
    n:
        Number of nodes (ignored when ``ids`` is given).
    space:
        Identifier space; its ``digit_bits`` must match the config's ``b``.
    ids:
        Optional explicit node identifiers.
    config:
        :class:`PastryConfig`.
    latency:
        Latency model used both for proximity neighbor selection and for
        timing perturbed lookups.
    """

    def __init__(
        self,
        n: Optional[int] = None,
        space: IdSpace = IdSpace(),
        ids: Optional[Sequence[Identifier]] = None,
        config: PastryConfig = PastryConfig(),
        latency: LatencyModel = ConstantLatency(0.05),
        seed: object = 0,
    ):
        if space.digit_bits != config.digit_bits:
            raise ConfigurationError(
                f"id space digit_bits ({space.digit_bits}) must equal the Pastry "
                f"b parameter ({config.digit_bits})"
            )
        self.space = space
        self.config = config
        self.latency = latency
        self.seed = seed
        if ids is None:
            if n is None:
                raise ConfigurationError("provide either n or explicit ids")
            structure = _STRUCTURE_CACHE.get_or_build(
                (repr(seed), n, space, config, id(latency)),
                lambda: self._build_structure(n),
            )
            _latency, self.ids, self.ring, self.leaf_sets, self.tables = structure
        else:
            _latency, self.ids, self.ring, self.leaf_sets, self.tables = (
                self._build_structure(None, tuple(ids))
            )
        self.directory = ReplicaDirectory()

    def _build_structure(
        self, n: Optional[int], ids: Optional[tuple[Identifier, ...]] = None
    ) -> tuple:
        """(latency, ids, ring, leaf sets, routing tables) — the immutable,
        purely seed-determined part of the network (the cache entry; it
        carries the latency model so the id()-keyed entry pins it)."""
        if ids is None:
            assert n is not None
            rng = derive_rng(self.seed, "pastry-node-ids", n)
            ids = tuple(self.space.random_unique_identifiers(n, rng))
        ring = PastryRing(ids)
        leaf_sets = build_leaf_sets(ring, self.config.leaf_set_size)
        tables = build_routing_tables(ring, latency=self.latency, seed=self.seed)
        return (self.latency, ids, ring, leaf_sets, tables)

    @property
    def n(self) -> int:
        return len(self.ids)

    def root(self, key: Identifier) -> int:
        return self.ring.root_of(key)

    def average_table_entries(self) -> float:
        return table_entry_count(self.tables)

    def average_leafset_size(self) -> float:
        if not self.leaf_sets:
            return 0.0
        return sum(len(ls) for ls in self.leaf_sets) / len(self.leaf_sets)

    # -- static-stage operations ----------------------------------------------

    def route_static(self, origin: int, key: Identifier) -> list[int]:
        """The static route from ``origin`` to the delivery node."""
        self._check_node(origin)
        return static_route(
            origin,
            key,
            self.ring,
            self.leaf_sets,
            self.tables,
            max_hops=self.config.max_route_hops,
        )

    def insert_static(
        self, origin: int, key: Identifier, replicate_on_route: bool = False
    ) -> PastryInsertResult:
        """Insert on the fully-online overlay (stage 1)."""
        path = self.route_static(origin, key)
        add_events_processed(len(path))
        delivery = path[-1]
        if replicate_on_route:
            replicas = tuple(dict.fromkeys(path))
        else:
            replicas = (delivery,)
        for node in replicas:
            self.directory.store(node, key, owner=origin)
        telemetry = current_telemetry()
        spans = telemetry.spans
        if spans is not None:
            trace_id = spans.begin_trace("pastry-insert")
            parent = spans.emit(
                trace_id, "pastry-insert", node=origin, start=0.0, key=str(key)
            )
            for hop, next_node in enumerate(path[1:]):
                parent = spans.emit(
                    trace_id,
                    "forward",
                    node=path[hop],
                    start=float(hop),
                    end=float(hop + 1),
                    parent_id=parent,
                    to=next_node,
                )
            spans.emit(
                trace_id,
                "store",
                node=delivery,
                start=float(len(path) - 1),
                parent_id=parent,
                replicas=len(replicas),
            )
        telemetry.metrics.inc("pastry_inserts_total")
        return PastryInsertResult(
            key=key,
            origin=origin,
            root=delivery,
            path=tuple(path),
            replicas=replicas,
            messages=max(0, len(path) - 1),
        )

    # -- perturbed lookup -------------------------------------------------------

    def lookup(
        self,
        origin: int,
        key: Identifier,
        start_time: float = 0.0,
        availability: AvailabilityModel = AlwaysOnline(),
        views: Optional[ProbedViewOracle] = None,
        counters: Optional[TrafficCounters] = None,
    ) -> PastryLookupOutcome:
        """Route a lookup issued at ``start_time`` under perturbation.

        ``availability`` is ground truth; ``views`` supplies each hop's
        beliefs (None = perfect knowledge of the static membership, i.e.
        every node believed alive).
        """
        self._check_node(origin)
        cfg = self.config
        node = origin
        time = float(start_time)
        hops = 0
        messages = 0
        retransmissions = 0
        events = 0
        learned_dead: set[int] = set()
        root = self.ring.root_of(key)

        telemetry = current_telemetry()
        spans = telemetry.spans  # None unless the run opted into tracing
        trace_id = ""
        parent_sid: Optional[int] = None
        if spans is not None:
            trace_id = spans.begin_trace("pastry-lookup")
            parent_sid = spans.emit(
                trace_id, "pastry-lookup", node=origin, start=time, key=str(key)
            )

        while True:
            events += 1
            if hops >= cfg.max_route_hops:
                outcome = PastryLookupOutcome(
                    key=key,
                    origin=origin,
                    start_time=start_time,
                    success=False,
                    delivered_node=None,
                    root=root,
                    hops=hops,
                    messages=messages,
                    retransmissions=retransmissions,
                    misdelivered=False,
                    dropped=True,
                    elapsed=time - start_time,
                )
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "drop",
                        node=node,
                        start=time,
                        parent_id=parent_sid,
                        reason="hop-limit",
                    )
                break

            current = node
            now = time

            def believes(candidate: int, kind: str) -> bool:
                if candidate in learned_dead:
                    return False
                if views is None:
                    return True
                return views.believes_alive(current, candidate, now, kind)

            decision = pastry_next_hop(
                node,
                key,
                self.ring,
                self.leaf_sets[node],
                self.tables[node],
                believes,
            )
            if decision.action == DELIVER:
                has_object = self.directory.has(node, key)
                if has_object:
                    messages += 1  # direct reply to the querying client
                outcome = PastryLookupOutcome(
                    key=key,
                    origin=origin,
                    start_time=start_time,
                    success=has_object,
                    delivered_node=node,
                    root=root,
                    hops=hops,
                    messages=messages,
                    retransmissions=retransmissions,
                    misdelivered=not has_object,
                    dropped=False,
                    elapsed=time - start_time,
                )
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "reply" if has_object else "misdeliver",
                        node=node,
                        start=time,
                        parent_id=parent_sid,
                        hop=hops,
                    )
                break

            next_node = decision.node
            hop_latency = self.latency.latency(node, next_node)
            delivered = False
            for attempt in range(cfg.app_retransmissions + 1):
                send_time = time + attempt * cfg.app_retx_interval
                if attempt == 0:
                    messages += 1
                else:
                    retransmissions += 1
                arrival = send_time + hop_latency
                sid: Optional[int] = None
                if spans is not None:
                    sid = spans.emit(
                        trace_id,
                        "send" if attempt == 0 else "retransmit",
                        node=current,
                        start=send_time,
                        end=arrival,
                        parent_id=parent_sid,
                        to=next_node,
                    )
                if availability.is_online(next_node, arrival):
                    node = next_node
                    time = arrival
                    hops += 1
                    delivered = True
                    if sid is not None:
                        parent_sid = sid
                    break
            if not delivered:
                learned_dead.add(next_node)
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "declare-dead",
                        node=current,
                        start=time,
                        parent_id=parent_sid,
                        target=next_node,
                    )
                time += (cfg.app_retransmissions + 1) * cfg.app_retx_interval

        # every routing-rule evaluation plus every (re)transmission attempt
        # is one discrete simulation event
        add_events_processed(events + messages + retransmissions)
        metrics = telemetry.metrics
        metrics.inc("pastry_lookups_total")
        if outcome.success:
            metrics.inc("pastry_lookups_success_total")
        metrics.inc("pastry_messages_total", messages)
        if retransmissions:
            metrics.inc("pastry_retransmissions_total", retransmissions)
        if counters is not None:
            counters.messages_sent += messages
            counters.retransmissions += retransmissions
            if outcome.dropped:
                counters.drops_hop_limit += 1
            if outcome.success:
                counters.replies_received += 1
        return outcome

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.n:
            raise RoutingError(f"node index {node} out of range (n={self.n})")
