"""Event-driven replay of the probing process (oracle validation).

:class:`repro.pastry.views.ProbedViewOracle` computes beliefs by scanning
*backward* from a query time.  This module replays the same probe schedule
*forward* with explicit events and records belief transitions, giving an
independent implementation to validate the oracle against (the unit tests
assert exact agreement on small networks, within the oracle's scan window).
It is also usable directly for small event-faithful simulations.
"""

from __future__ import annotations

import bisect
from typing import Iterable

from repro.pastry.views import LEAFSET, ProbedViewOracle


class MaintenanceReplay:
    """Forward replay of probe interactions for a set of (observer, target)
    pairs, producing belief timelines."""

    def __init__(
        self,
        oracle: ProbedViewOracle,
        pairs: Iterable[tuple[int, int]],
        kind: str = LEAFSET,
        until: float = 0.0,
    ):
        self.oracle = oracle
        self.kind = kind
        self.until = until
        self.pairs = sorted(set(pairs))
        # timeline per pair: sorted list of (event_time, verdict)
        self._timeline: dict[tuple[int, int], list[tuple[float, bool]]] = {}
        for observer, target in self.pairs:
            self._timeline[(observer, target)] = self._build_timeline(observer, target)

    def _build_timeline(self, observer: int, target: int) -> list[tuple[float, bool]]:
        oracle = self.oracle
        period = oracle.probe_period(self.kind)
        events: list[tuple[float, bool]] = []

        # Observer-initiated probes.
        phase = oracle.probe_phase(observer, self.kind)
        epoch = 0
        while True:
            start = phase + epoch * period
            if start > self.until:
                break
            event = oracle._own_probe_event(observer, target, start, float("inf"))
            if event is not None and event[0] <= self.until:
                events.append(event)
            epoch += 1

        # Target-initiated probes (leafset symmetry).
        if self.kind == LEAFSET:
            phase = oracle.probe_phase(target, self.kind)
            epoch = 0
            while True:
                start = phase + epoch * period
                if start > self.until:
                    break
                event = oracle._incoming_probe_event(
                    observer, target, start, float("inf")
                )
                if event is not None and event[0] <= self.until:
                    events.append(event)
                epoch += 1

        events.sort()
        return events

    def believes_alive(self, observer: int, target: int, now: float) -> bool:
        """Belief of ``observer`` about ``target`` at ``now`` per the replay."""
        if observer == target:
            return True
        timeline = self._timeline[(observer, target)]
        index = bisect.bisect_right(timeline, (now, True)) - 1
        # bisect with (now, True) may land on an event at exactly `now`
        # with verdict False ordered after (now, False); walk back if needed.
        while index >= 0 and timeline[index][0] > now:
            index -= 1
        if index < 0:
            return True
        return timeline[index][1]

    def transitions(self, observer: int, target: int) -> list[tuple[float, bool]]:
        """Full decisive-event timeline for a pair (diagnostics/tests)."""
        return list(self._timeline[(observer, target)])
