"""Pastry/MSPastry configuration.

Defaults mirror the paper's "MSPastry Configuration" list verbatim:

1. b : 4
2. l : 8
3. Leafset probing period : 30 seconds
4. Routing table maintenance period : 12000 seconds
5. Routing table probing period : 90 seconds
6. Probe timeout : 3
7. Probe retries : 2

The application-level retransmission parameters model MSPastry's per-hop
acknowledgment/retransmission for *routing* messages, which operates at
network-RTT scale (unlike the 3-second probe timeout used by failure
detection).  After ``app_retransmissions`` unacknowledged sends the hop is
declared suspect and the message is re-routed around it.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError


@dataclasses.dataclass(frozen=True)
class PastryConfig:
    digit_bits: int = 4  # b
    leaf_set_size: int = 8  # l (split half/half around the node)
    leafset_probe_period: float = 30.0
    routing_table_probe_period: float = 90.0
    routing_table_maintenance_period: float = 12000.0
    probe_timeout: float = 3.0
    probe_retries: int = 2
    # application-level per-hop retransmission (RTT-scale; short enough that
    # retransmissions do not bridge second-scale offline windows)
    app_retransmissions: int = 2
    app_retx_interval: float = 0.10
    max_route_hops: int = 64
    # consecutive missed leafset probe rounds before a node is declared
    # failed, evicted, and forced to rejoin on recovery
    failure_eviction_rounds: int = 2

    def __post_init__(self) -> None:
        if self.digit_bits < 1:
            raise ConfigurationError(f"digit_bits must be >= 1, got {self.digit_bits}")
        if self.leaf_set_size < 2 or self.leaf_set_size % 2 != 0:
            raise ConfigurationError(
                f"leaf_set_size must be a positive even number, got {self.leaf_set_size}"
            )
        if self.probe_timeout <= 0:
            raise ConfigurationError(
                f"probe_timeout must be positive, got {self.probe_timeout}"
            )
        if self.probe_retries < 0:
            raise ConfigurationError(
                f"probe_retries must be >= 0, got {self.probe_retries}"
            )
        if min(
            self.leafset_probe_period,
            self.routing_table_probe_period,
            self.routing_table_maintenance_period,
        ) <= 0:
            raise ConfigurationError("maintenance periods must be positive")
        if self.app_retransmissions < 0:
            raise ConfigurationError(
                f"app_retransmissions must be >= 0, got {self.app_retransmissions}"
            )
        if self.app_retx_interval <= 0:
            raise ConfigurationError(
                f"app_retx_interval must be positive, got {self.app_retx_interval}"
            )
        if self.max_route_hops < 1:
            raise ConfigurationError(
                f"max_route_hops must be >= 1, got {self.max_route_hops}"
            )
        if self.failure_eviction_rounds < 1:
            raise ConfigurationError(
                f"failure_eviction_rounds must be >= 1, got {self.failure_eviction_rounds}"
            )

    def replace(self, **changes) -> "PastryConfig":
        return dataclasses.replace(self, **changes)
