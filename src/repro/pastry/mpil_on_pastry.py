"""MPIL over the Pastry overlay (paper Section 6.2).

"We run MPIL over the overlay of MSPastry by implementing the MPIL
algorithm in MSPastry ... we use the structured overlay of MSPastry, but
none of the overlay maintenance techniques."

A Pastry node's neighbor list, from MPIL's point of view, is its leaf set
plus its routing-table entries.  These links are directed (the union is
not symmetric), which the MPIL drivers handle natively.  No views/oracle
are involved: with maintenance disabled, neighbor lists never change, and
a message forwarded toward an offline node is simply lost.
"""

from __future__ import annotations

from repro.core.config import MPILConfig
from repro.core.timed import TimedMPILNetwork
from repro.overlay.graph import OverlayGraph
from repro.pastry.protocol import PastryNetwork
from repro.sim.availability import AlwaysOnline, AvailabilityModel
from repro.sim.latency import LatencyModel
from repro.util.cache import BoundedCache

#: the neighbor overlay is a pure function of the Pastry structure; keyed
#: by identity of the (cached, entry-pinned) leaf sets and tables so every
#: run over one structure shares a single OverlayGraph
_NEIGHBOR_OVERLAY_CACHE: BoundedCache[tuple] = BoundedCache(maxsize=8)


def pastry_neighbor_overlay(pastry: PastryNetwork) -> OverlayGraph:
    """The directed overlay of Pastry neighbor lists (leaf set ∪ table)."""

    def build():
        adjacency = []
        for node in range(pastry.n):
            neighbors = set(pastry.leaf_sets[node])
            neighbors.update(pastry.tables[node].values())
            neighbors.discard(node)
            adjacency.append(sorted(neighbors))
        overlay = OverlayGraph(adjacency, name="pastry-neighbors", directed=True)
        return (pastry.leaf_sets, pastry.tables, overlay)

    return _NEIGHBOR_OVERLAY_CACHE.get_or_build(
        (id(pastry.leaf_sets), id(pastry.tables)), build
    )[2]


def make_mpil_over_pastry(
    pastry: PastryNetwork,
    config: MPILConfig = MPILConfig(),
    availability: AvailabilityModel = AlwaysOnline(),
    latency: LatencyModel | None = None,
    seed: object = 0,
) -> TimedMPILNetwork:
    """A :class:`TimedMPILNetwork` sharing the Pastry overlay's node IDs.

    The returned network has its own replica directory (MPIL replicas are
    placed by MPIL insertion, not at Pastry roots).
    """
    overlay = pastry_neighbor_overlay(pastry)
    return TimedMPILNetwork(
        overlay,
        space=pastry.space,
        ids=pastry.ids,
        config=config,
        availability=availability,
        latency=latency if latency is not None else pastry.latency,
        seed=seed,
    )
