"""Declared-failure eviction and rejoin (MSPastry recovery semantics).

MSPastry declares a node failed once it misses consecutive probe rounds,
removes it from routing state, and requires a *rejoin* when it recovers —
the rejoin routes a join message through live contacts to rebuild leaf sets
(Castro et al., DSN 2004).  Under flapping this matters only when the
offline period exceeds the failure-detection horizon: a node that vanishes
for several probe rounds is evicted, and on recovery it is effectively
absent until its rejoin completes.  Rejoin attempts are retried each probe
period and succeed only when the (hash-chosen) bootstrap contacts are all
online — through a heavily perturbed network, rejoins thrash, which is what
collapses the paper's 300:300 curve at high flapping probability while
leaving 1:1 / 30:30 / 45:15 (whose offline windows are shorter than the
detection horizon) untouched.

``RejoinAdjustedAvailability`` wraps the ground-truth flapping schedule and
is a drop-in :class:`~repro.sim.availability.AvailabilityModel` for the
*Pastry-layer* protocol and its probed views.  MPIL-over-Pastry runs no
maintenance, never declares failures, and therefore keeps using the raw
schedule (a returning node simply answers again).

``IntervalRejoinAvailability`` generalizes the same eviction + rejoin
semantics to *any* :class:`~repro.perturbation.base.AvailabilityProcess`
that reports its offline windows — join storms, regional outages, and
composed :class:`~repro.perturbation.timeline.ScenarioTimeline` scenarios —
by reading completed offline episodes from ``offline_intervals`` instead of
flapping cycle indices.
"""

from __future__ import annotations

import bisect
import math

from repro.pastry.config import PastryConfig
from repro.perturbation.flapping import FlappingSchedule
from repro.sim.rng import derive_rng, validate_seed


def detection_horizon(config: PastryConfig) -> float:
    """Offline time after which a node is declared failed and evicted:
    ``failure_eviction_rounds`` missed leafset probe rounds plus the
    timeout tail of the last probe attempt."""
    return (
        config.failure_eviction_rounds * config.leafset_probe_period
        + (config.probe_retries + 1) * config.probe_timeout
    )


def _attempt_rejoins(
    is_online,
    num_nodes: int,
    seed: object,
    stream: str,
    node: int,
    episode_key: object,
    recovery: float,
    period: float,
    join_contacts: int,
    max_attempts: int,
) -> float:
    """Completion time of a rejoin starting at ``recovery``.

    Attempts run every ``period`` from recovery; each draws
    ``join_contacts`` hash-chosen bootstrap contacts from the named stream
    and succeeds when all are online under ``is_online``.  Shared by both
    rejoin models; ``stream``/``episode_key`` keep their RNG label paths
    distinct and stable.
    """
    for attempt in range(max_attempts):
        at = recovery + attempt * period
        rng = derive_rng(seed, stream, node, episode_key, attempt)
        contacts: list[int] = []
        while len(contacts) < min(join_contacts, num_nodes - 1):
            candidate = rng.randrange(num_nodes)
            if candidate != node and candidate not in contacts:
                contacts.append(candidate)
        if all(is_online(c, at) for c in contacts):
            return at
    return recovery + max_attempts * period  # pessimistic cap


class RejoinAdjustedAvailability:
    """Flapping availability adjusted for eviction + rejoin delays."""

    def __init__(
        self,
        schedule: FlappingSchedule,
        config: PastryConfig = PastryConfig(),
        seed: object = 0,
        join_contacts: int = 3,
        max_attempts: int = 64,
        scan_cycles: int = 64,
    ):
        self.schedule = schedule
        self.pastry_config = config
        self.seed = seed
        self.join_contacts = join_contacts
        self.max_attempts = max_attempts
        self.scan_cycles = scan_cycles
        self.eviction_threshold = detection_horizon(config)
        flap = schedule.config
        self._evictions_possible = (
            flap.probability > 0 and flap.offline_period >= self.eviction_threshold
        )
        self._rejoin_cache: dict[tuple[int, int], float] = {}

    # passthroughs so the probed-view oracle can wrap this object
    @property
    def num_nodes(self) -> int:
        return self.schedule.num_nodes

    @property
    def config(self):
        return self.schedule.config

    def is_online(self, node: int, time: float) -> bool:
        """Pastry-layer availability: genuinely online *and* joined."""
        if not self.schedule.is_online(node, time):
            return False
        if not self._evictions_possible or node in self.schedule.always_online:
            return True
        episode = self._last_completed_offline_episode(node, time)
        if episode is None:
            return True
        rejoin_time = self._rejoin_completion(node, episode)
        return time >= rejoin_time

    # -- internals -------------------------------------------------------------

    def _last_completed_offline_episode(self, node: int, time: float):
        """Index of the most recent cycle whose offline part the node took
        and which ended at or before ``time`` (None if none in the scan
        window)."""
        flap = self.schedule.config
        cycle = flap.cycle
        phase = self.schedule.phase(node)
        if time < phase:
            return None
        current = int(math.floor((time - phase) / cycle))
        # An episode in cycle k ends at phase + (k+1)*cycle.  The latest
        # cycle that can have *ended* by `time` is current - 1 (or current
        # if we are exactly at/after its end, handled by the loop bound).
        for k in range(current, max(-1, current - self.scan_cycles), -1):
            episode_end = phase + (k + 1) * cycle
            if episode_end > time:
                continue
            if self.schedule.goes_offline(node, k):
                return k
        return None

    def _rejoin_completion(self, node: int, episode: int) -> float:
        """Time at which the node's rejoin after the given offline episode
        completes.  Attempts run every leafset probe period from recovery;
        an attempt succeeds when all bootstrap contacts are online."""
        key = (node, episode)
        cached = self._rejoin_cache.get(key)
        if cached is not None:
            return cached
        flap = self.schedule.config
        recovery = self.schedule.phase(node) + (episode + 1) * flap.cycle
        completion = _attempt_rejoins(
            self.schedule.is_online,
            self.schedule.num_nodes,
            self.seed,
            "rejoin",
            node,
            episode,
            recovery,
            self.pastry_config.leafset_probe_period,
            self.join_contacts,
            self.max_attempts,
        )
        self._rejoin_cache[key] = completion
        return completion


class IntervalRejoinAvailability:
    """Eviction + rejoin semantics over any interval-reporting process.

    A node whose offline window lasted at least the failure-detection
    horizon is declared failed and evicted; when the window ends, the node
    is effectively absent from the Pastry layer until a rejoin attempt —
    retried every leafset probe period through hash-chosen bootstrap
    contacts — finds all contacts online.  This is
    :class:`RejoinAdjustedAvailability` with the flapping-specific episode
    arithmetic replaced by the process's own
    ``offline_intervals(node, until)`` report, so join storms, regional
    outages, and composed timelines all get MSPastry's recovery cost.
    """

    def __init__(
        self,
        process,
        config: PastryConfig = PastryConfig(),
        seed: int | tuple = 0,
        join_contacts: int = 3,
        max_attempts: int = 64,
    ):
        validate_seed(seed)
        self.process = process
        self.pastry_config = config
        self.seed = seed
        self.join_contacts = join_contacts
        self.max_attempts = max_attempts
        self.eviction_threshold = detection_horizon(config)
        #: node -> (horizon, sorted finite end times of eviction-length
        #: windows with start < horizon); see _recoveries_until
        self._recovery_cache: dict[int, tuple[float, list[float]]] = {}
        self._rejoin_cache: dict[tuple[int, float], float] = {}

    @property
    def num_nodes(self) -> int:
        return self.process.num_nodes

    @property
    def always_online(self) -> frozenset[int]:
        return frozenset(self.process.always_online)

    def _recoveries_until(self, node: int, time: float) -> list[float]:
        """Sorted end times of eviction-length offline windows, memoized
        with a geometrically grown horizon.

        Rebuilding the process's window list from t=0 per availability
        query would be quadratic in simulation time; window lists are
        append-only as the horizon grows (only the tail window's end can
        move, and any query at or past a moved end sees the node offline
        via the point view first), so a cached horizon stays consistent.
        """
        cached = self._recovery_cache.get(node)
        if cached is not None and time <= cached[0]:
            return cached[1]
        horizon = max(time, 2.0 * (cached[0] if cached else 0.0), 1.0)
        recoveries = [
            end
            for start, end in self.process.offline_intervals(node, horizon)
            if end - start >= self.eviction_threshold and not math.isinf(end)
        ]
        self._recovery_cache[node] = (horizon, recoveries)
        return recoveries

    def is_online(self, node: int, time: float) -> bool:
        """Pastry-layer availability: genuinely online *and* joined."""
        if not self.process.is_online(node, time):
            return False
        if node in self.process.always_online:
            return True
        # Most recent completed eviction-length window decides; later,
        # shorter windows never re-trigger eviction.
        recoveries = self._recoveries_until(node, time)
        index = bisect.bisect_right(recoveries, time) - 1
        if index < 0:
            return True
        return time >= self._rejoin_completion(node, recoveries[index])

    def _rejoin_completion(self, node: int, recovery: float) -> float:
        """Time the node's rejoin after the offline window ending at
        ``recovery`` completes.  Attempts run every leafset probe period
        from recovery; an attempt succeeds when all bootstrap contacts are
        online."""
        key = (node, recovery)
        cached = self._rejoin_cache.get(key)
        if cached is not None:
            return cached
        completion = _attempt_rejoins(
            self.process.is_online,
            self.process.num_nodes,
            self.seed,
            "interval-rejoin",
            node,
            recovery,
            recovery,
            self.pastry_config.leafset_probe_period,
            self.join_contacts,
            self.max_attempts,
        )
        self._rejoin_cache[key] = completion
        return completion
