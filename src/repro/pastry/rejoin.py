"""Declared-failure eviction and rejoin (MSPastry recovery semantics).

MSPastry declares a node failed once it misses consecutive probe rounds,
removes it from routing state, and requires a *rejoin* when it recovers —
the rejoin routes a join message through live contacts to rebuild leaf sets
(Castro et al., DSN 2004).  Under flapping this matters only when the
offline period exceeds the failure-detection horizon: a node that vanishes
for several probe rounds is evicted, and on recovery it is effectively
absent until its rejoin completes.  Rejoin attempts are retried each probe
period and succeed only when the (hash-chosen) bootstrap contacts are all
online — through a heavily perturbed network, rejoins thrash, which is what
collapses the paper's 300:300 curve at high flapping probability while
leaving 1:1 / 30:30 / 45:15 (whose offline windows are shorter than the
detection horizon) untouched.

``RejoinAdjustedAvailability`` wraps the ground-truth flapping schedule and
is a drop-in :class:`~repro.sim.availability.AvailabilityModel` for the
*Pastry-layer* protocol and its probed views.  MPIL-over-Pastry runs no
maintenance, never declares failures, and therefore keeps using the raw
schedule (a returning node simply answers again).
"""

from __future__ import annotations

import math

from repro.pastry.config import PastryConfig
from repro.perturbation.flapping import FlappingSchedule
from repro.sim.rng import derive_rng


class RejoinAdjustedAvailability:
    """Flapping availability adjusted for eviction + rejoin delays."""

    def __init__(
        self,
        schedule: FlappingSchedule,
        config: PastryConfig = PastryConfig(),
        seed: object = 0,
        join_contacts: int = 3,
        max_attempts: int = 64,
        scan_cycles: int = 64,
    ):
        self.schedule = schedule
        self.pastry_config = config
        self.seed = seed
        self.join_contacts = join_contacts
        self.max_attempts = max_attempts
        self.scan_cycles = scan_cycles
        # Detection horizon: missing `failure_eviction_rounds` consecutive
        # leafset probe rounds (plus the timeout tail) gets a node declared
        # failed and evicted.
        self.eviction_threshold = (
            config.failure_eviction_rounds * config.leafset_probe_period
            + (config.probe_retries + 1) * config.probe_timeout
        )
        flap = schedule.config
        self._evictions_possible = (
            flap.probability > 0 and flap.offline_period >= self.eviction_threshold
        )
        self._rejoin_cache: dict[tuple[int, int], float] = {}

    # passthroughs so the probed-view oracle can wrap this object
    @property
    def num_nodes(self) -> int:
        return self.schedule.num_nodes

    @property
    def config(self):
        return self.schedule.config

    def is_online(self, node: int, time: float) -> bool:
        """Pastry-layer availability: genuinely online *and* joined."""
        if not self.schedule.is_online(node, time):
            return False
        if not self._evictions_possible or node in self.schedule.always_online:
            return True
        episode = self._last_completed_offline_episode(node, time)
        if episode is None:
            return True
        rejoin_time = self._rejoin_completion(node, episode)
        return time >= rejoin_time

    # -- internals -------------------------------------------------------------

    def _last_completed_offline_episode(self, node: int, time: float):
        """Index of the most recent cycle whose offline part the node took
        and which ended at or before ``time`` (None if none in the scan
        window)."""
        flap = self.schedule.config
        cycle = flap.cycle
        phase = self.schedule.phase(node)
        if time < phase:
            return None
        current = int(math.floor((time - phase) / cycle))
        # An episode in cycle k ends at phase + (k+1)*cycle.  The latest
        # cycle that can have *ended* by `time` is current - 1 (or current
        # if we are exactly at/after its end, handled by the loop bound).
        for k in range(current, max(-1, current - self.scan_cycles), -1):
            episode_end = phase + (k + 1) * cycle
            if episode_end > time:
                continue
            if self.schedule.goes_offline(node, k):
                return k
        return None

    def _rejoin_completion(self, node: int, episode: int) -> float:
        """Time at which the node's rejoin after the given offline episode
        completes.  Attempts run every leafset probe period from recovery;
        an attempt succeeds when all bootstrap contacts are online."""
        key = (node, episode)
        cached = self._rejoin_cache.get(key)
        if cached is not None:
            return cached
        flap = self.schedule.config
        recovery = self.schedule.phase(node) + (episode + 1) * flap.cycle
        period = self.pastry_config.leafset_probe_period
        n = self.schedule.num_nodes
        completion = recovery + self.max_attempts * period  # pessimistic cap
        for attempt in range(self.max_attempts):
            at = recovery + attempt * period
            rng = derive_rng(self.seed, "rejoin", node, episode, attempt)
            contacts = []
            while len(contacts) < min(self.join_contacts, n - 1):
                candidate = rng.randrange(n)
                if candidate != node and candidate not in contacts:
                    contacts.append(candidate)
            if all(self.schedule.is_online(c, at) for c in contacts):
                completion = at
                break
        self._rejoin_cache[key] = completion
        return completion
