"""Pastry substrate (MSPastry-style baseline).

The paper compares MPIL against MSPastry, "the original implementation of
Pastry ... obtained under a limited license from Microsoft Research", with
the dependability techniques of Castro et al. (DSN 2004) enabled and the
configuration b=4, l=8, leafset probing 30 s, routing-table maintenance
12000 s, routing-table probing 90 s, probe timeout 3 s, probe retries 2.

MSPastry is closed source, so this package implements Pastry from the
published algorithm plus those mechanisms (see DESIGN.md §2 for the
substitution notes):

- :mod:`repro.pastry.state` — identifier ring, leaf sets, routing tables;
- :mod:`repro.pastry.routing` — the per-hop routing rule;
- :mod:`repro.pastry.views` — the probed-view oracle deriving each node's
  liveness beliefs from its probe schedule under flapping;
- :mod:`repro.pastry.maintenance` — an event-driven replay of the probing
  process used to validate the oracle at small scale;
- :mod:`repro.pastry.protocol` — insert (root storage or Replication on
  Route) and perturbed lookup with per-hop retransmission and re-routing;
- :mod:`repro.pastry.mpil_on_pastry` — MPIL running over the Pastry
  overlay's neighbor lists with maintenance disabled (paper Section 6.2).
"""

from repro.pastry.config import PastryConfig
from repro.pastry.mpil_on_pastry import make_mpil_over_pastry, pastry_neighbor_overlay
from repro.pastry.protocol import PastryInsertResult, PastryLookupOutcome, PastryNetwork
from repro.pastry.views import ProbedViewOracle

__all__ = [
    "PastryConfig",
    "PastryInsertResult",
    "PastryLookupOutcome",
    "PastryNetwork",
    "ProbedViewOracle",
    "make_mpil_over_pastry",
    "pastry_neighbor_overlay",
]
