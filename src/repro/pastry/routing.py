"""The Pastry per-hop routing rule.

Given a node's leaf set and routing table filtered through a liveness
predicate, :func:`pastry_next_hop` decides whether the node delivers the
message locally, forwards it, or (having no usable candidate) delivers to
itself as the presumed root.  The three branches mirror the published
algorithm:

1. if the key lies within the span of the (believed-alive) leaf set, the
   message goes to the numerically closest leaf (possibly the node itself);
2. otherwise the routing-table cell for (shared-prefix-length, next digit
   of the key) is used if populated and believed alive;
3. otherwise the "rare case": any known node that shares at least as long
   a prefix with the key and is numerically closer than the current node.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.core.identifiers import Identifier
from repro.pastry.state import PastryRing

DELIVER = "deliver"
FORWARD = "forward"


@dataclasses.dataclass(frozen=True)
class HopDecision:
    """Outcome of the routing rule at one node."""

    action: str  # DELIVER or FORWARD
    node: int  # delivery node or next hop
    source: str  # "self" | "leafset" | "table" | "fallback"


def pastry_next_hop(
    node: int,
    key: Identifier,
    ring: PastryRing,
    leaf_set: Sequence[int],
    table: dict[tuple[int, int], int],
    alive: Callable[[int, str], bool],
) -> HopDecision:
    """Apply the Pastry routing rule at ``node`` for ``key``.

    ``alive(candidate, kind)`` reports whether this node currently believes
    ``candidate`` (known via structure ``kind`` in {"leafset", "table"}) to
    be responsive.
    """
    ids = ring.ids
    node_value = ids[node].value
    key_value = key.value

    alive_leaves = [m for m in leaf_set if alive(m, "leafset")]

    # 1. leaf-set range check
    if alive_leaves:
        offsets = [ring.signed_offset(node_value, ids[m].value) for m in alive_leaves]
        lo = min(min(offsets), 0)
        hi = max(max(offsets), 0)
        key_offset = ring.signed_offset(node_value, key_value)
        if lo <= key_offset <= hi:
            best_node = node
            best = (ring.circular_distance(node_value, key_value), node_value)
            for m in alive_leaves:
                rank = (
                    ring.circular_distance(ids[m].value, key_value),
                    ids[m].value,
                )
                if rank < best:
                    best = rank
                    best_node = m
            if best_node == node:
                return HopDecision(DELIVER, node, "self")
            return HopDecision(FORWARD, best_node, "leafset")
    elif not leaf_set:
        # Singleton ring: the node is trivially the root.
        return HopDecision(DELIVER, node, "self")

    # 2. routing-table cell
    shared = ids[node].prefix_match_len(key)
    if shared < key.space.num_digits:
        entry = table.get((shared, key.digit(shared)))
        if entry is not None and alive(entry, "table"):
            return HopDecision(FORWARD, entry, "table")

    # 3. rare case: any known closer node with at least as long a prefix
    own_distance = ring.circular_distance(node_value, key_value)
    best_candidate: Optional[int] = None
    best_rank: tuple[int, int, int] | None = None
    seen: set[int] = set()
    for kind, candidates in (("leafset", leaf_set), ("table", table.values())):
        for candidate in candidates:
            if candidate == node or candidate in seen:
                continue
            seen.add(candidate)
            if not alive(candidate, kind):
                continue
            prefix = ids[candidate].prefix_match_len(key)
            if prefix < shared:
                continue
            distance = ring.circular_distance(ids[candidate].value, key_value)
            if distance >= own_distance:
                continue
            rank = (-prefix, distance, ids[candidate].value)
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_candidate = candidate
    if best_candidate is not None:
        return HopDecision(FORWARD, best_candidate, "fallback")

    # Nothing usable: this node believes it is the closest — deliver here.
    return HopDecision(DELIVER, node, "self")


def static_route(
    origin: int,
    key: Identifier,
    ring: PastryRing,
    leaf_sets: Sequence[Sequence[int]],
    tables: Sequence[dict[tuple[int, int], int]],
    max_hops: int = 128,
) -> list[int]:
    """Route on a fully-online overlay; returns the node path including the
    origin and the delivery node."""

    def always_alive(_candidate: int, _kind: str) -> bool:
        return True

    path = [origin]
    node = origin
    for _ in range(max_hops):
        decision = pastry_next_hop(
            node, key, ring, leaf_sets[node], tables[node], always_alive
        )
        if decision.action == DELIVER:
            return path
        node = decision.node
        path.append(node)
    return path  # hop cap reached; caller treats as anomalous
