"""The Pastry per-hop routing rule.

Given a node's leaf set and routing table filtered through a liveness
predicate, :func:`pastry_next_hop` decides whether the node delivers the
message locally, forwards it, or (having no usable candidate) delivers to
itself as the presumed root.  The three branches mirror the published
algorithm:

1. if the key lies within the span of the (believed-alive) leaf set, the
   message goes to the numerically closest leaf (possibly the node itself);
2. otherwise the routing-table cell for (shared-prefix-length, next digit
   of the key) is used if populated and believed alive;
3. otherwise the "rare case": any known node that shares at least as long
   a prefix with the key and is numerically closer than the current node.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Optional, Sequence

from repro.core.identifiers import Identifier
from repro.pastry.state import PastryRing

DELIVER = "deliver"
FORWARD = "forward"


@dataclasses.dataclass(frozen=True)
class HopDecision:
    """Outcome of the routing rule at one node."""

    action: str  # DELIVER or FORWARD
    node: int  # delivery node or next hop
    source: str  # "self" | "leafset" | "table" | "fallback"


def pastry_next_hop(
    node: int,
    key: Identifier,
    ring: PastryRing,
    leaf_set: Sequence[int],
    table: dict[tuple[int, int], int],
    alive: Optional[Callable[[int, str], bool]],
) -> HopDecision:
    """Apply the Pastry routing rule at ``node`` for ``key``.

    ``alive(candidate, kind)`` reports whether this node currently believes
    ``candidate`` (known via structure ``kind`` in {"leafset", "table"}) to
    be responsive; ``alive=None`` means every candidate is believed alive
    (the static-stage fast path — no per-candidate predicate calls).

    This is the inner loop of every lookup: ring offsets and circular
    distances are computed inline on the ring's cached raw values, and the
    shared-prefix digit decomposition goes through the ring's memo
    (:meth:`~repro.pastry.state.PastryRing.prefix_len`).
    """
    values = ring.values
    node_value = values[node]
    key_value = key.value
    size = ring.space.size
    half = size >> 1

    if alive is None:
        alive_leaves: Sequence[int] = leaf_set
    else:
        alive_leaves = [m for m in leaf_set if alive(m, "leafset")]

    # 1. leaf-set range check
    if alive_leaves:
        # signed ring offsets mapped to (-size/2, size/2], with 0 (the node
        # itself) always inside the span
        lo = 0
        hi = 0
        for m in alive_leaves:
            offset = (values[m] - node_value) % size
            if offset > half:
                offset -= size
            if offset < lo:
                lo = offset
            elif offset > hi:
                hi = offset
        key_offset = (key_value - node_value) % size
        if key_offset > half:
            key_offset -= size
        if lo <= key_offset <= hi:
            best_node = node
            distance = node_value - key_value if node_value >= key_value else key_value - node_value
            if distance > size - distance:
                distance = size - distance
            best = (distance, node_value)
            for m in alive_leaves:
                m_value = values[m]
                distance = m_value - key_value if m_value >= key_value else key_value - m_value
                if distance > size - distance:
                    distance = size - distance
                rank = (distance, m_value)
                if rank < best:
                    best = rank
                    best_node = m
            if best_node == node:
                return HopDecision(DELIVER, node, "self")
            return HopDecision(FORWARD, best_node, "leafset")
    elif not leaf_set:
        # Singleton ring: the node is trivially the root.
        return HopDecision(DELIVER, node, "self")

    # 2. routing-table cell
    shared = ring.prefix_len(node, key)
    if shared < key.space.num_digits:
        entry = table.get((shared, key.digit(shared)))
        if entry is not None and (alive is None or alive(entry, "table")):
            return HopDecision(FORWARD, entry, "table")

    # 3. rare case: any known closer node with at least as long a prefix
    own_distance = ring.circular_distance(node_value, key_value)
    best_candidate: Optional[int] = None
    best_rank: tuple[int, int, int] | None = None
    seen: set[int] = set()
    for kind, candidates in (("leafset", leaf_set), ("table", table.values())):
        for candidate in candidates:
            if candidate == node or candidate in seen:
                continue
            seen.add(candidate)
            if alive is not None and not alive(candidate, kind):
                continue
            prefix = ring.prefix_len(candidate, key)
            if prefix < shared:
                continue
            distance = ring.circular_distance(values[candidate], key_value)
            if distance >= own_distance:
                continue
            rank = (-prefix, distance, values[candidate])
            if best_rank is None or rank < best_rank:
                best_rank = rank
                best_candidate = candidate
    if best_candidate is not None:
        return HopDecision(FORWARD, best_candidate, "fallback")

    # Nothing usable: this node believes it is the closest — deliver here.
    return HopDecision(DELIVER, node, "self")


def static_route(
    origin: int,
    key: Identifier,
    ring: PastryRing,
    leaf_sets: Sequence[Sequence[int]],
    tables: Sequence[dict[tuple[int, int], int]],
    max_hops: int = 128,
) -> list[int]:
    """Route on a fully-online overlay; returns the node path including the
    origin and the delivery node."""
    path = [origin]
    node = origin
    for _ in range(max_hops):
        decision = pastry_next_hop(
            node, key, ring, leaf_sets[node], tables[node], None
        )
        if decision.action == DELIVER:
            return path
        node = decision.node
        path.append(node)
    return path  # hop cap reached; caller treats as anomalous
