"""Join storms: mass simultaneous arrivals.

Flash crowds and post-outage restarts produce the inverse of an outage: a
large fraction of the population *arrives at once*.  For a maintained
overlay this is the expensive direction — every arrival must re-join
through live contacts (see :mod:`repro.pastry.rejoin`), so a storm of
simultaneous rejoins through an already-perturbed network thrashes; for
MPIL the arrivals simply start answering.  For replica placement the storm
stresses insertion: objects inserted before the storm may have replicas
parked on not-yet-arrived nodes, unreachable until the wave lands.

:class:`JoinStormSchedule` models a ``late_fraction`` of the population as
absent (offline) from time 0 until the storm hits at ``arrival_time``,
optionally staggered uniformly over ``[arrival_time, arrival_time +
stagger)``.  Compose it with a background flapping or churn process via
:class:`~repro.perturbation.timeline.ScenarioTimeline` to measure recovery
under adverse conditions.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from repro.errors import ConfigurationError
from repro.perturbation.base import ProcessBase
from repro.sim.rng import derive_rng, validate_seed


@dataclasses.dataclass(frozen=True)
class JoinStormConfig:
    """One mass-arrival event.

    Parameters
    ----------
    arrival_time:
        When the storm lands (seconds; must be positive so there *is* a
        pre-storm regime).
    late_fraction:
        Fraction of eligible nodes that are absent until the storm.
    stagger:
        Width of the arrival window; 0 means strictly simultaneous.
    """

    arrival_time: float
    late_fraction: float
    stagger: float = 0.0

    def __post_init__(self) -> None:
        if self.arrival_time <= 0:
            raise ConfigurationError(
                f"storm arrival_time must be positive, got {self.arrival_time}"
            )
        if not 0.0 <= self.late_fraction <= 1.0:
            raise ConfigurationError(
                f"storm late_fraction must be in [0, 1], got {self.late_fraction}"
            )
        if self.stagger < 0:
            raise ConfigurationError(f"storm stagger must be >= 0, got {self.stagger}")

    @property
    def label(self) -> str:
        return (
            f"join-storm({self.late_fraction:.0%} arrive @ {self.arrival_time:g}s"
            + (f" +{self.stagger:g}s stagger)" if self.stagger else ")")
        )


class JoinStormSchedule(ProcessBase):
    """Availability process: late joiners are absent until the storm."""

    def __init__(
        self,
        config: JoinStormConfig,
        num_nodes: int,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ):
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        validate_seed(seed)
        self.config = config
        self.num_nodes = num_nodes
        self.seed = seed
        self.always_online = frozenset(always_online)
        eligible = [n for n in range(num_nodes) if n not in self.always_online]
        count = round(config.late_fraction * len(eligible))
        pick_rng = derive_rng(seed, "join-storm-members", num_nodes, config.label)
        late = sorted(pick_rng.sample(eligible, count)) if count else []
        stagger_rng = derive_rng(seed, "join-storm-stagger", num_nodes, config.label)
        self._arrival: dict[int, float] = {
            node: config.arrival_time
            + (stagger_rng.uniform(0.0, config.stagger) if config.stagger else 0.0)
            for node in late
        }
        self._late_array = np.fromiter(
            self._arrival, dtype=np.int64, count=len(self._arrival)
        )
        self._arrival_array = np.fromiter(
            self._arrival.values(), dtype=np.float64, count=len(self._arrival)
        )

    @property
    def late_joiners(self) -> frozenset[int]:
        """Nodes absent before the storm."""
        return frozenset(self._arrival)

    def arrival(self, node: int) -> float:
        """When ``node`` becomes available (0.0 for early nodes)."""
        return self._arrival.get(node, 0.0)

    def is_online(self, node: int, time: float) -> bool:
        """Early nodes are always up; late joiners appear at their arrival."""
        arrival = self._arrival.get(node)
        if arrival is None or time < 0:
            return True
        return time >= arrival

    def online_mask(self, time: float) -> np.ndarray:
        """Bulk bitmap: one scatter of the not-yet-arrived late joiners."""
        mask = np.ones(self.num_nodes, dtype=bool)
        if time >= 0:
            mask[self._late_array[self._arrival_array > time]] = False
        return mask

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """One absence window ``[0, arrival)`` for each late joiner."""
        arrival = self._arrival.get(node)
        if arrival is None or until <= 0:
            return []
        return [(0.0, arrival)]
