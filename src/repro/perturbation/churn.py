"""Continuous-time churn availability (extension beyond the paper's model).

The paper models perturbation as synchronized flapping cycles and notes
that "longer-term perturbation ... can be caused by user churn, i.e. rapid
node departures and arrivals of users".  The availability studies it cites
(Bhagwan et al. on Overnet; Saroiu et al. on Napster/Gnutella) measure
*renewal-process* behaviour: sessions and downtimes of random, per-node
durations.  ``ChurnSchedule`` models exactly that — each node alternates
online sessions and offline periods with independent exponential durations
— behind the same :class:`~repro.sim.availability.AvailabilityModel`
interface, so every driver in the library runs unmodified under churn.

Determinism: per-node interval boundaries are generated lazily from named
RNG streams, so ``is_online(node, t)`` is a pure function of
``(seed, node, t)`` regardless of query order.
"""

from __future__ import annotations

import bisect
import dataclasses

from repro.errors import ConfigurationError
from repro.perturbation.base import ProcessBase
from repro.sim.rng import derive_rng, validate_seed


@dataclasses.dataclass(frozen=True)
class ChurnConfig:
    """Exponential session/downtime churn parameters (seconds)."""

    mean_session: float
    mean_downtime: float

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_downtime <= 0:
            raise ConfigurationError(
                f"mean_session and mean_downtime must be positive, got "
                f"{self.mean_session}/{self.mean_downtime}"
            )

    @property
    def expected_offline_fraction(self) -> float:
        """Long-run fraction of time a node is offline."""
        return self.mean_downtime / (self.mean_session + self.mean_downtime)

    @property
    def label(self) -> str:
        return f"churn({self.mean_session:g}s up / {self.mean_downtime:g}s down)"


class ChurnSchedule(ProcessBase):
    """Per-node alternating exponential on/off renewal process.

    Subclasses may override :meth:`_interval_mean` to make the rates
    time-varying (see :class:`repro.perturbation.waves.ChurnWaveSchedule`);
    the boundary/interval machinery is shared.
    """

    def __init__(
        self,
        config: ChurnConfig,
        num_nodes: int,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ):
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        validate_seed(seed)
        self.config = config
        self.num_nodes = num_nodes
        self.seed = seed
        self.always_online = frozenset(always_online)
        self._rngs = [
            derive_rng(seed, "churn", node, config.mean_session, config.mean_downtime)
            for node in range(num_nodes)
        ]
        # boundaries[node][i] is the time of the i-th state flip; nodes start
        # online at t=0 (even interval index = online).
        self._boundaries: list[list[float]] = [[] for _ in range(num_nodes)]

    def _interval_mean(self, online: bool, start: float) -> float:
        """Mean duration of the interval beginning at ``start`` (``online``
        says which state the node is in during it).  Hook for time-varying
        subclasses; the base process is stationary."""
        return self.config.mean_session if online else self.config.mean_downtime

    def _extend(self, node: int, until: float) -> None:
        boundaries = self._boundaries[node]
        rng = self._rngs[node]
        while not boundaries or boundaries[-1] <= until:
            last = boundaries[-1] if boundaries else 0.0
            online = len(boundaries) % 2 == 0  # state during the next interval
            mean = self._interval_mean(online, last)
            boundaries.append(last + rng.expovariate(1.0 / mean))

    def is_online(self, node: int, time: float) -> bool:
        """Ground-truth availability under churn."""
        if node in self.always_online:
            return True
        if time < 0:
            return True
        self._extend(node, time)
        index = bisect.bisect_right(self._boundaries[node], time)
        return index % 2 == 0

    def session_boundaries(self, node: int, until: float) -> list[float]:
        """State-flip times of ``node`` up to ``until`` (diagnostics)."""
        self._extend(node, until)
        return [b for b in self._boundaries[node] if b <= until]

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """Maximal offline windows ``[start, end)`` with ``start < until``.

        The node starts online, so windows are the odd-numbered intervals
        between state flips: ``[b[0], b[1])``, ``[b[2], b[3])``, ...  See
        :mod:`repro.perturbation.base` for the interval contract.
        """
        if node in self.always_online:
            return []
        self._extend(node, until)
        boundaries = self._boundaries[node]
        intervals: list[tuple[float, float]] = []
        for i in range(0, len(boundaries) - 1, 2):
            if boundaries[i] >= until:
                break
            intervals.append((boundaries[i], boundaries[i + 1]))
        return intervals
