"""Scenario composition: several availability processes, one schedule.

Real perturbation is rarely a single clean process — the interesting
question is what a regional outage does to a network that was *already*
flapping, or how a join storm lands during a churn wave.
:class:`ScenarioTimeline` composes any number of
:class:`~repro.perturbation.base.AvailabilityProcess` components into one:
a node is online iff it is online under **every** component (each
component models one reason to be *offline*, so composition intersects the
online sets and unions the offline windows).

The timeline is itself an ``AvailabilityProcess``, so it plugs into every
timed driver, view oracle, and rejoin model unchanged — and timelines nest.

Example::

    flapping = FlappingSchedule(FlappingConfig(30, 30, 0.5), n, seed=s)
    outage = RegionalOutage(regions, RegionalOutageConfig(600, 300, 0.5), seed=s)
    schedule = ScenarioTimeline([flapping, outage])
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.perturbation.base import AvailabilityProcess, ProcessBase, merge_intervals


class ScenarioTimeline(ProcessBase):
    """Conjunction of availability processes over one node population."""

    def __init__(self, processes: Sequence[AvailabilityProcess]):
        self.processes = tuple(processes)
        if not self.processes:
            raise ConfigurationError("ScenarioTimeline needs at least one process")
        sizes = {p.num_nodes for p in self.processes}
        if len(sizes) != 1:
            raise ConfigurationError(
                f"composed processes disagree on num_nodes: {sorted(sizes)}"
            )
        self.num_nodes = self.processes[0].num_nodes
        # Online under the timeline requires online under every component,
        # so only nodes exempt in ALL components are unconditionally online.
        self.always_online = frozenset.intersection(
            *(frozenset(p.always_online) for p in self.processes)
        )
        self._mask_memo: tuple[float, np.ndarray] | None = None

    def online_mask(self, time: float) -> np.ndarray:
        """Bulk bitmap: AND of the component bitmaps, computed once per
        distinct query time.

        Windowed consumers (the :class:`repro.core.soa.NodeArrays` liveness
        refresh, per-window diagnostics) query the same instant for the
        whole population, so the timeline memoises the last window's bitmap
        instead of running ``num_nodes * num_processes`` point queries per
        refresh.  Callers must treat the returned array as read-only.
        """
        memo = self._mask_memo
        if memo is not None and memo[0] == time:
            return memo[1]
        mask = _component_mask(self.processes[0], time, self.num_nodes)
        for process in self.processes[1:]:
            mask &= _component_mask(process, time, self.num_nodes)
        self._mask_memo = (time, mask)
        return mask

    def is_online(self, node: int, time: float) -> bool:
        """Online iff online under every composed process."""
        for process in self.processes:
            if not process.is_online(node, time):
                return False
        return True

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """Union of the components' offline windows, merged maximal."""
        windows: list[tuple[float, float]] = []
        for process in self.processes:
            windows.extend(process.offline_intervals(node, until))
        return merge_intervals(windows)

    def __repr__(self) -> str:
        inner = ", ".join(type(p).__name__ for p in self.processes)
        return f"ScenarioTimeline([{inner}], n={self.num_nodes})"


def _component_mask(process, time: float, num_nodes: int) -> np.ndarray:
    """A component's bulk bitmap; point-query fallback for processes that
    implement only the :class:`AvailabilityProcess` protocol."""
    bulk = getattr(process, "online_mask", None)
    if bulk is not None:
        return np.array(bulk(time), dtype=bool, copy=True)
    return np.fromiter(
        (process.is_online(node, time) for node in range(num_nodes)),
        dtype=bool,
        count=num_nodes,
    )
