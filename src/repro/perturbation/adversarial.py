"""Adversarial removal: knock out the overlay's most valuable nodes.

Independent flapping is the *kindest* failure model; the one that breaks
overlays is an adversary deleting the nodes that carry the most routing
state (Aspnes et al., "Fault-tolerant routing in peer-to-peer systems":
adversarial deletion of high-degree nodes disconnects naive overlays far
faster than random faults).  :class:`AdversarialRemoval` removes a fraction
of nodes *permanently* from ``start`` onward, targeting either the
highest-degree nodes of the overlay graph (``targeting="degree"``) or a
uniform sample (``targeting="random"``, the control arm) — sweeping the
fraction under both yields the targeted-vs-random resilience gap.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.perturbation.base import ProcessBase
from repro.sim.rng import derive_rng, validate_seed

TARGETING_MODES = ("degree", "random")


@dataclasses.dataclass(frozen=True)
class AdversarialRemovalConfig:
    """One permanent-removal attack.

    Parameters
    ----------
    fraction:
        Fraction of eligible nodes removed, in ``[0, 1]``.
    start:
        Time at which the removed nodes go (and stay) dark.
    targeting:
        ``"degree"`` removes the highest-degree nodes (ties broken by node
        id, so the attack is deterministic); ``"random"`` removes a
        seed-deterministic uniform sample of the same size.
    """

    fraction: float
    start: float = 0.0
    targeting: str = "degree"

    def __post_init__(self) -> None:
        if not 0.0 <= self.fraction <= 1.0:
            raise ConfigurationError(
                f"removal fraction must be in [0, 1], got {self.fraction}"
            )
        if self.start < 0:
            raise ConfigurationError(f"removal start must be >= 0, got {self.start}")
        if self.targeting not in TARGETING_MODES:
            raise ConfigurationError(
                f"unknown targeting {self.targeting!r}; choose from {TARGETING_MODES}"
            )

    @property
    def label(self) -> str:
        return f"removal({self.fraction:.0%} by {self.targeting} @ {self.start:g}s)"


class AdversarialRemoval(ProcessBase):
    """Availability process: a chosen node set offline forever from ``start``.

    Parameters
    ----------
    degrees:
        Per-node coverage scores the adversary ranks by — typically total
        (in + out) degree in the overlay graph; length defines
        ``num_nodes``.  Ignored (but still sized) under random targeting.
    """

    def __init__(
        self,
        degrees: Sequence[int],
        config: AdversarialRemovalConfig,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ):
        validate_seed(seed)
        self.degrees = tuple(int(d) for d in degrees)
        if not self.degrees:
            raise ConfigurationError("adversarial removal needs at least one node")
        self.num_nodes = len(self.degrees)
        self.config = config
        self.seed = seed
        self.always_online = frozenset(always_online)
        eligible = [n for n in range(self.num_nodes) if n not in self.always_online]
        count = round(config.fraction * len(eligible))
        if config.targeting == "degree":
            # highest coverage first; node id breaks ties deterministically
            ranked = sorted(eligible, key=lambda n: (-self.degrees[n], n))
            removed = ranked[:count]
        else:
            rng = derive_rng(seed, "adversarial-random", self.num_nodes, config.label)
            removed = rng.sample(eligible, count) if count else []
        self.removed = frozenset(removed)
        self._removed_array = np.fromiter(
            sorted(self.removed), dtype=np.int64, count=len(self.removed)
        )

    @classmethod
    def from_overlay(
        cls,
        overlay,
        config: AdversarialRemovalConfig,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ) -> "AdversarialRemoval":
        """Rank by total degree (out + in) of an
        :class:`~repro.overlay.graph.OverlayGraph` — for directed overlays
        (Pastry neighbor lists) in-edges measure how much routing state
        *points at* a node, which is the coverage an adversary wants gone.
        """
        return cls(
            overlay.total_degrees, config, seed=seed, always_online=always_online
        )

    def is_online(self, node: int, time: float) -> bool:
        """Removed nodes are gone for good once the attack starts."""
        if node not in self.removed:
            return True
        return time < self.config.start

    def online_mask(self, time: float) -> np.ndarray:
        """Bulk bitmap: one scatter over the removed-node index array."""
        mask = np.ones(self.num_nodes, dtype=bool)
        if time >= self.config.start:
            mask[self._removed_array] = False
        return mask

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """One unbounded window ``[start, inf)`` per removed node."""
        if node not in self.removed or self.config.start >= until:
            return []
        return [(self.config.start, math.inf)]
