"""The availability-process interface behind every perturbation scenario.

The paper's flapping model, the churn extension, and the scenario families
added on top of them (correlated regional outages, churn waves, join
storms, adversarial removal) all answer the same two questions:

- *point query*: is node ``i`` online at time ``t``?  This is the
  :class:`repro.sim.availability.AvailabilityModel` contract every timed
  driver consumes.
- *interval query*: during which maximal windows is node ``i`` offline?
  This is what makes processes **composable** (a
  :class:`~repro.perturbation.timeline.ScenarioTimeline` merges component
  windows) and **testable** (the property suite cross-checks every
  ``is_online`` answer against the reported intervals).

:class:`AvailabilityProcess` names that joint contract.  Implementations
must keep the two views consistent: for ``0 <= t < until``,
``is_online(node, t)`` is False iff ``t`` falls inside one of
``offline_intervals(node, until)``.

Interval semantics
------------------

``offline_intervals(node, until)`` returns every maximal half-open window
``[start, end)`` with ``start < until`` during which the node is offline,
in increasing order.  ``end`` may exceed ``until`` (the window is reported
whole) and may be ``math.inf`` for permanent removal.  Nodes listed in
``always_online`` report no windows.  Times before 0 are online by
convention (simulations start at 0).
"""

from __future__ import annotations

from typing import Protocol, Sequence, runtime_checkable

import numpy as np

Interval = tuple[float, float]


@runtime_checkable
class AvailabilityProcess(Protocol):
    """Protocol for composable, interval-reporting availability models."""

    num_nodes: int
    always_online: frozenset[int]

    def is_online(self, node: int, time: float) -> bool:
        """Ground-truth availability of ``node`` at ``time``."""
        ...  # pragma: no cover - protocol

    def offline_intervals(self, node: int, until: float) -> list[Interval]:
        """Maximal offline windows ``[start, end)`` with ``start < until``."""
        ...  # pragma: no cover - protocol


class ProcessBase:
    """Shared diagnostics for availability processes.

    Subclasses provide ``num_nodes`` and ``is_online``; this base adds the
    bulk availability bitmap (:meth:`online_mask`) and the fraction-online
    diagnostic every scenario exposes.
    """

    num_nodes: int

    def is_online(self, node: int, time: float) -> bool:  # pragma: no cover
        raise NotImplementedError

    def online_mask(self, time: float) -> np.ndarray:
        """Availability of *every* node at ``time`` as one boolean bitmap.

        The bulk view :class:`repro.core.soa.NodeArrays` liveness refreshes
        and whole-population diagnostics consume.  This default evaluates
        the point query per node; subclasses override it with vectorised
        implementations that are exactly equivalent (same floats, same lazy
        RNG draws).  Callers must treat the returned array as read-only.
        """
        return np.fromiter(
            (self.is_online(node, time) for node in range(self.num_nodes)),
            dtype=bool,
            count=self.num_nodes,
        )

    def online_fraction(self, time: float) -> float:
        """Fraction of nodes online at ``time`` (diagnostics)."""
        return int(self.online_mask(time).sum()) / self.num_nodes


def merge_intervals(intervals: Sequence[Interval]) -> list[Interval]:
    """Merge overlapping or touching half-open intervals into maximal ones.

    >>> merge_intervals([(3.0, 5.0), (0.0, 1.0), (1.0, 2.0), (4.0, 6.0)])
    [(0.0, 2.0), (3.0, 6.0)]
    """
    merged: list[list[float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return [(start, end) for start, end in merged]
