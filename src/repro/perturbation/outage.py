"""Correlated regional outages keyed off transit-stub domains.

The flapping and churn models perturb nodes *independently*; the failures
that actually partition deployed overlays are correlated — a transit
domain's power or uplink goes, and every stub customer behind it vanishes
at once (cf. Caron et al. on self-stabilizing recovery after large-scale
events).  :class:`RegionalOutage` models exactly that over the GT-ITM-style
underlay of :mod:`repro.overlay.transit_stub`: each overlay node belongs to
the *region* (transit domain) its stub attachment hangs off, and an outage
takes whole regions offline for one window ``[start, start + duration)``.

``severity`` is the fraction of regions hit; the affected set is a prefix
of one seed-deterministic permutation of the regions, so sweeps over
severity are reproducible and **nested** — raising the severity only adds
regions, which makes success-vs-severity curves monotone by construction
(the experiment harness sweeps severity 0..1 to get exactly those curves).
An overlay with no domain structure (a single region) cannot express a
*regional* outage and is rejected with
:class:`~repro.errors.ConfigurationError`.
"""

from __future__ import annotations

import dataclasses
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.perturbation.base import ProcessBase
from repro.sim.rng import derive_rng, validate_seed


@dataclasses.dataclass(frozen=True)
class RegionalOutageConfig:
    """One correlated outage window.

    Parameters
    ----------
    start:
        Simulation time at which the affected regions go dark.
    duration:
        Length of the outage window (seconds).
    severity:
        Fraction of regions affected, in ``[0, 1]``; the number of regions
        hit is ``round(severity * num_regions)``.
    """

    start: float
    duration: float
    severity: float

    def __post_init__(self) -> None:
        if self.start < 0:
            raise ConfigurationError(f"outage start must be >= 0, got {self.start}")
        if self.duration <= 0:
            raise ConfigurationError(
                f"outage duration must be positive, got {self.duration}"
            )
        if not 0.0 <= self.severity <= 1.0:
            raise ConfigurationError(
                f"outage severity must be in [0, 1], got {self.severity}"
            )

    @property
    def end(self) -> float:
        return self.start + self.duration

    @property
    def label(self) -> str:
        return f"outage(severity={self.severity:g} @ {self.start:g}s for {self.duration:g}s)"


class RegionalOutage(ProcessBase):
    """Availability process: whole regions offline during one window.

    Parameters
    ----------
    regions:
        Region id per overlay node (e.g. the transit domain of each node's
        stub attachment); length defines ``num_nodes``.  At least two
        distinct regions are required — "regional" is meaningless on an
        overlay without domain structure.
    config:
        The outage window and severity.
    seed:
        Root of the deterministic affected-region draw.
    always_online:
        Node indices exempt from the outage (e.g. the measurement client).
    regions_down:
        Explicit affected-region set, overriding the severity-based draw.
    """

    def __init__(
        self,
        regions: Sequence[int],
        config: RegionalOutageConfig,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
        regions_down: Optional[frozenset[int] | set[int]] = None,
    ):
        validate_seed(seed)
        self.regions = tuple(int(r) for r in regions)
        if not self.regions:
            raise ConfigurationError("regional outage needs at least one node")
        self.num_nodes = len(self.regions)
        self.config = config
        self.seed = seed
        self.always_online = frozenset(always_online)
        distinct = sorted(set(self.regions))
        if len(distinct) < 2:
            raise ConfigurationError(
                f"regional outages need an overlay with domain structure; "
                f"this one has {len(distinct)} region(s) — attach nodes to a "
                f"transit-stub underlay with >= 2 transit domains"
            )
        if regions_down is not None:
            unknown = set(regions_down) - set(distinct)
            if unknown:
                raise ConfigurationError(
                    f"regions_down contains unknown regions {sorted(unknown)}"
                )
            self.regions_down = frozenset(regions_down)
        else:
            # One severity-independent permutation per (seed, start); the
            # affected set is its prefix, so higher severity strictly adds
            # regions and severity sweeps stay nested.
            count = round(config.severity * len(distinct))
            rng = derive_rng(seed, "outage-regions", config.start)
            order = rng.sample(distinct, len(distinct))
            self.regions_down = frozenset(order[:count])

        #: hot-path view: exactly the nodes the window can take offline
        #: (affected region, not exempt), plus the window bounds as floats
        self._affected = frozenset(
            node
            for node, region in enumerate(self.regions)
            if region in self.regions_down and node not in self.always_online
        )
        self._start = config.start
        self._end = config.end
        self._affected_array = np.fromiter(
            sorted(self._affected), dtype=np.int64, count=len(self._affected)
        )

    @property
    def num_regions(self) -> int:
        return len(set(self.regions))

    def affects(self, node: int) -> bool:
        """Whether ``node`` sits in an affected region (exemptions aside)."""
        return self.regions[node] in self.regions_down

    def is_online(self, node: int, time: float) -> bool:
        """Ground-truth availability: offline iff in a dark region during
        the outage window."""
        if node in self._affected:
            return not (self._start <= time < self._end)
        return True

    def online_mask(self, time: float) -> np.ndarray:
        """Bulk bitmap: one scatter over the affected-node index array."""
        mask = np.ones(self.num_nodes, dtype=bool)
        if self._start <= time < self._end:
            mask[self._affected_array] = False
        return mask

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """The single outage window, for affected nodes that see it."""
        if node in self.always_online or not self.affects(node):
            return []
        if self.config.start >= until:
            return []
        return [(self.config.start, self.config.end)]


def regions_from_attachment(underlay, attachment: Sequence[int]) -> list[int]:
    """Region id per overlay node from its transit-stub attachment.

    ``underlay`` must expose ``transit_domain_of`` (see
    :class:`repro.overlay.transit_stub.TransitStubUnderlay`); overlays built
    without an underlay have no domain structure and cannot host regional
    outages.
    """
    domain_of = getattr(underlay, "transit_domain_of", None)
    if domain_of is None:
        raise ConfigurationError(
            f"underlay {type(underlay).__name__} has no domain structure; "
            f"regional outages need a transit-stub underlay"
        )
    return [domain_of(stub) for stub in attachment]
