"""Perturbation (flapping) models.

The paper models perturbation as periodic flapping: "A perturbed node
periodically flaps between being offline and being idle (online).  At the
beginning of each idle period, every node comes back online and stays
online during the period.  At the beginning of the offline period, however,
each node decides whether to go offline or to stay online based on the
flapping probability.  Each node randomly picks its very first beginning of
the flapping period."
"""

from repro.perturbation.churn import ChurnConfig, ChurnSchedule
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.scenario import PERIOD_CONFIGS, PerturbationScenario

__all__ = [
    "ChurnConfig",
    "ChurnSchedule",
    "FlappingConfig",
    "FlappingSchedule",
    "PERIOD_CONFIGS",
    "PerturbationScenario",
]
