"""Perturbation models and the composable scenario engine.

The paper models perturbation as periodic flapping: "A perturbed node
periodically flaps between being offline and being idle (online).  At the
beginning of each idle period, every node comes back online and stays
online during the period.  At the beginning of the offline period, however,
each node decides whether to go offline or to stay online based on the
flapping probability.  Each node randomly picks its very first beginning of
the flapping period."

Beyond flapping, this package implements the broader perturbation families
that break discovery overlays in practice — continuous-time churn, churn
waves, correlated regional outages, join storms, and adversarial removal —
all behind one :class:`~repro.perturbation.base.AvailabilityProcess`
contract, composable via
:class:`~repro.perturbation.timeline.ScenarioTimeline`.
"""

from repro.perturbation.adversarial import (
    AdversarialRemoval,
    AdversarialRemovalConfig,
)
from repro.perturbation.base import AvailabilityProcess, merge_intervals
from repro.perturbation.churn import ChurnConfig, ChurnSchedule
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.outage import (
    RegionalOutage,
    RegionalOutageConfig,
    regions_from_attachment,
)
from repro.perturbation.scenario import (
    PERIOD_CONFIGS,
    SCENARIO_FAMILIES,
    PerturbationScenario,
    ScenarioFamily,
    get_family,
    scenario_families,
    scenarios_for,
)
from repro.perturbation.storms import JoinStormConfig, JoinStormSchedule
from repro.perturbation.timeline import ScenarioTimeline
from repro.perturbation.waves import ChurnWaveConfig, ChurnWaveSchedule

__all__ = [
    "AdversarialRemoval",
    "AdversarialRemovalConfig",
    "AvailabilityProcess",
    "ChurnConfig",
    "ChurnSchedule",
    "ChurnWaveConfig",
    "ChurnWaveSchedule",
    "FlappingConfig",
    "FlappingSchedule",
    "JoinStormConfig",
    "JoinStormSchedule",
    "PERIOD_CONFIGS",
    "PerturbationScenario",
    "RegionalOutage",
    "RegionalOutageConfig",
    "SCENARIO_FAMILIES",
    "ScenarioFamily",
    "ScenarioTimeline",
    "get_family",
    "merge_intervals",
    "regions_from_attachment",
    "scenario_families",
    "scenarios_for",
]
