"""Churn waves: time-varying join/leave rates.

Measured churn is not stationary — diurnal cycles, releases, and incidents
produce *waves* where departure and arrival rates spike together.
:class:`ChurnWaveSchedule` extends the renewal-process churn model of
:mod:`repro.perturbation.churn` with a periodic intensity profile: during
each wave window both the hazard of leaving and the hazard of returning are
multiplied by ``intensity``, so long-run availability stays at the base
ratio while churn *speed* surges.  ``intensity = 1`` degenerates to plain
exponential churn.

Determinism matches the other schedules: per-node interval boundaries are
generated lazily from named RNG streams, so ``is_online(node, t)`` is a
pure function of ``(seed, node, t)`` regardless of query order.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.perturbation.churn import ChurnSchedule


@dataclasses.dataclass(frozen=True)
class ChurnWaveConfig:
    """Base churn rates plus a periodic wave profile (seconds).

    During windows ``[k * wave_period, k * wave_period + wave_duration)``
    both hazards are multiplied by ``intensity``; outside them the base
    rates apply.
    """

    mean_session: float
    mean_downtime: float
    wave_period: float
    wave_duration: float
    intensity: float

    def __post_init__(self) -> None:
        if self.mean_session <= 0 or self.mean_downtime <= 0:
            raise ConfigurationError(
                f"mean_session and mean_downtime must be positive, got "
                f"{self.mean_session}/{self.mean_downtime}"
            )
        if self.wave_period <= 0:
            raise ConfigurationError(
                f"wave_period must be positive, got {self.wave_period}"
            )
        if not 0 < self.wave_duration <= self.wave_period:
            raise ConfigurationError(
                f"wave_duration must be in (0, wave_period], got "
                f"{self.wave_duration} for period {self.wave_period}"
            )
        if self.intensity < 1.0:
            raise ConfigurationError(
                f"wave intensity must be >= 1 (a rate multiplier), got {self.intensity}"
            )

    def rate_multiplier(self, time: float) -> float:
        """The hazard multiplier in effect at ``time``."""
        if time < 0:
            return 1.0
        return (
            self.intensity
            if time % self.wave_period < self.wave_duration
            else 1.0
        )

    @property
    def expected_offline_fraction(self) -> float:
        """Long-run offline fraction (intensity scales both hazards, so the
        ratio — and hence availability — matches the base process)."""
        return self.mean_downtime / (self.mean_session + self.mean_downtime)

    @property
    def label(self) -> str:
        return (
            f"churn-wave({self.mean_session:g}s up / {self.mean_downtime:g}s down, "
            f"x{self.intensity:g} for {self.wave_duration:g}s every {self.wave_period:g}s)"
        )


class ChurnWaveSchedule(ChurnSchedule):
    """Per-node on/off renewal process with periodically surging rates.

    A :class:`~repro.perturbation.churn.ChurnSchedule` whose interval
    durations are drawn with the mean scaled by the wave multiplier *at the
    interval's start* — a piecewise-thinned renewal process, cheap and
    deterministic, that concentrates flips inside wave windows.  All
    boundary/interval machinery is inherited, and the RNG streams match the
    base process, so ``intensity = 1`` reproduces plain churn exactly
    (identical trajectories for the same seed).
    """

    config: ChurnWaveConfig

    def __init__(
        self,
        config: ChurnWaveConfig,
        num_nodes: int,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ):
        super().__init__(config, num_nodes, seed=seed, always_online=always_online)

    def _interval_mean(self, online: bool, start: float) -> float:
        return super()._interval_mean(online, start) / self.config.rate_multiplier(
            start
        )
