"""The flapping availability schedule.

Semantics (paper Section 3):

- each node picks a random phase — "its very first beginning of the
  flapping period (i.e. idle period + offline period)" — uniform in
  ``[0, cycle)``; before its phase the node is online;
- each cycle consists of an idle (online) part of ``idle_period`` seconds
  followed by an offline part of ``offline_period`` seconds;
- at the beginning of the offline part of each cycle, the node goes offline
  with probability ``probability`` (a fresh Bernoulli draw per cycle),
  otherwise it stays online through that cycle's offline part.

The schedule is *deterministic given the seed*: per-cycle decisions are
generated lazily from a per-node stream, so ``is_online(node, t)`` can be
queried in any order and still agree with an event-driven replay.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import ConfigurationError
from repro.perturbation.base import ProcessBase
from repro.sim.rng import derive_rng, validate_seed


@dataclasses.dataclass(frozen=True)
class FlappingConfig:
    """Idle/offline periods (seconds) and the flapping probability."""

    idle_period: float
    offline_period: float
    probability: float

    def __post_init__(self) -> None:
        if self.idle_period <= 0 or self.offline_period <= 0:
            raise ConfigurationError(
                f"idle and offline periods must be positive, got "
                f"{self.idle_period}:{self.offline_period}"
            )
        if not 0.0 <= self.probability <= 1.0:
            raise ConfigurationError(
                f"flapping probability must be in [0, 1], got {self.probability}"
            )

    @property
    def cycle(self) -> float:
        """One flapping period: idle + offline."""
        return self.idle_period + self.offline_period

    @property
    def label(self) -> str:
        """The paper's idle:offline notation, e.g. ``"30:30"``."""

        def fmt(x: float) -> str:
            return str(int(x)) if float(x).is_integer() else str(x)

        return f"{fmt(self.idle_period)}:{fmt(self.offline_period)}"

    @classmethod
    def from_label(cls, label: str, probability: float) -> "FlappingConfig":
        """Parse the paper's ``"idle:offline"`` notation.

        >>> FlappingConfig.from_label("45:15", 0.5).cycle
        60.0
        """
        try:
            idle_text, offline_text = label.split(":")
            idle, offline = float(idle_text), float(offline_text)
        except ValueError:
            raise ConfigurationError(
                f"flapping label must look like '30:30', got {label!r}"
            ) from None
        return cls(idle_period=idle, offline_period=offline, probability=probability)

    @property
    def expected_offline_fraction(self) -> float:
        """Long-run fraction of time a node spends offline."""
        return self.probability * self.offline_period / self.cycle


class FlappingSchedule(ProcessBase):
    """Deterministic per-node availability under the flapping model.

    Parameters
    ----------
    config:
        The flapping parameters.
    num_nodes:
        Number of nodes covered by the schedule.
    seed:
        Root seed; phases and per-cycle decisions derive from it.
    always_online:
        Node indices exempted from flapping (e.g. the querying client in the
        paper's lookup experiments).
    """

    def __init__(
        self,
        config: FlappingConfig,
        num_nodes: int,
        seed: int | tuple = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ):
        if num_nodes < 1:
            raise ConfigurationError(f"num_nodes must be >= 1, got {num_nodes}")
        validate_seed(seed)
        self.config = config
        self.num_nodes = num_nodes
        self.seed = seed
        self.always_online = frozenset(always_online)
        phase_rng = derive_rng(seed, "flap-phases", num_nodes, config.label)
        self._phases = [phase_rng.uniform(0.0, config.cycle) for _ in range(num_nodes)]
        self._decision_rngs = [
            derive_rng(seed, "flap-decisions", node, config.label)
            for node in range(num_nodes)
        ]
        self._decisions: list[list[bool]] = [[] for _ in range(num_nodes)]
        # hot-path copies of the config scalars: ``is_online`` is called for
        # every hop of every perturbed lookup, where the attribute hops
        # through the frozen dataclass add up
        self._cycle = config.cycle
        self._idle = config.idle_period
        self._probability = config.probability
        self._phases_array = np.asarray(self._phases, dtype=np.float64)

    def phase(self, node: int) -> float:
        """Time at which ``node`` first enters its flapping period."""
        return self._phases[node]

    def goes_offline(self, node: int, cycle_index: int) -> bool:
        """The Bernoulli decision for a node's given cycle (lazily drawn)."""
        if cycle_index < 0:
            return False
        decisions = self._decisions[node]
        rng = self._decision_rngs[node]
        p = self.config.probability
        while len(decisions) <= cycle_index:
            decisions.append(rng.random() < p)
        return decisions[cycle_index]

    def is_online(self, node: int, time: float) -> bool:
        """Ground-truth availability of ``node`` at ``time``."""
        if node in self.always_online:
            return True
        if self._probability == 0.0:
            return True
        offset = time - self._phases[node]
        if offset < 0:
            return True  # before the node's first flapping period
        cycle = self._cycle
        cycle_index = int(offset / cycle)  # floor: offset is non-negative
        if offset - cycle_index * cycle < self._idle:
            return True
        decisions = self._decisions[node]
        if cycle_index < len(decisions):
            return not decisions[cycle_index]
        return not self.goes_offline(node, cycle_index)

    def online_mask(self, time: float) -> np.ndarray:
        """Bulk bitmap: the cycle arithmetic runs vectorised over all
        phases; only nodes inside an offline part need their (lazily drawn,
        per-node-stream) Bernoulli decision, so the Python work per refresh
        is proportional to the flapping fraction, not the population."""
        mask = np.ones(self.num_nodes, dtype=bool)
        if self._probability != 0.0:
            offset = time - self._phases_array
            cycle_indices = (offset / self._cycle).astype(np.int64)
            in_offline_part = (offset >= 0) & (
                offset - cycle_indices * self._cycle >= self._idle
            )
            for node in np.nonzero(in_offline_part)[0].tolist():
                mask[node] = not self.goes_offline(node, int(cycle_indices[node]))
        if self.always_online:
            mask[list(self.always_online)] = True
        return mask

    def next_transition_after(self, node: int, time: float) -> float:
        """The next time at which the node's online state *may* change
        (cycle boundary or idle/offline boundary).  Diagnostics helper."""
        offset = time - self._phases[node]
        cycle = self.config.cycle
        if offset < 0:
            return self._phases[node]
        cycle_index = int(math.floor(offset / cycle))
        position = offset - cycle_index * cycle
        base = self._phases[node] + cycle_index * cycle
        if position < self.config.idle_period:
            return base + self.config.idle_period
        return base + cycle

    def offline_intervals(self, node: int, until: float) -> list[tuple[float, float]]:
        """Maximal offline windows ``[start, end)`` with ``start < until``.

        Cycle ``k`` contributes ``[phase + k*cycle + idle, phase +
        (k+1)*cycle)`` iff its Bernoulli draw took the node offline.  See
        :mod:`repro.perturbation.base` for the interval contract.
        """
        if node in self.always_online or self.config.probability == 0.0:
            return []
        phase = self._phases[node]
        cycle = self.config.cycle
        idle = self.config.idle_period
        intervals: list[tuple[float, float]] = []
        k = 0
        while phase + k * cycle + idle < until:
            if self.goes_offline(node, k):
                intervals.append(
                    (phase + k * cycle + idle, phase + (k + 1) * cycle)
                )
            k += 1
        return intervals
