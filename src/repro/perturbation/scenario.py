"""Named perturbation scenarios: the paper's sweeps plus the catalogue.

Two things live here:

- :class:`PerturbationScenario` and :func:`scenarios_for` — the paper's
  Figure 1/11 flapping sweeps (probability 0.1..1.0 for four idle:offline
  configurations in Figure 1: 1:1, 45:15, 30:30, 300:300; three in
  Figures 11–12: 1:1, 30:30, 300:300);
- the **scenario-family catalogue** — one entry per availability-process
  family the engine implements.

Which *experiments* sweep a family is not recorded here: experiment specs
declare their ``scenario_family`` in the registry
(:mod:`repro.experiments.registry`), and ``mpil-experiments scenarios``
joins the two — so registering a new sweep automatically updates the
catalogue listing.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule

#: The idle:offline configurations used in the paper, by figure.
PERIOD_CONFIGS: dict[str, tuple[str, ...]] = {
    "fig1": ("1:1", "45:15", "30:30", "300:300"),
    "fig11": ("1:1", "30:30", "300:300"),
}

#: The paper's flapping-probability sweep.
FLAP_PROBABILITIES: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclasses.dataclass(frozen=True)
class PerturbationScenario:
    """One cell of a perturbation sweep: a period label plus a probability."""

    period_label: str
    probability: float

    def config(self) -> FlappingConfig:
        return FlappingConfig.from_label(self.period_label, self.probability)

    def schedule(
        self,
        num_nodes: int,
        seed: int = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ) -> FlappingSchedule:
        """Instantiate the flapping schedule for this cell.

        ``seed`` must be a real int (bools are rejected), matching the
        convention of :func:`repro.experiments.registry.run_experiment`:
        derived streams hash ``repr(seed)``, so ``0``, ``"0"``, and
        ``False`` would silently produce three different trajectories.
        """
        if isinstance(seed, bool) or not isinstance(seed, int):
            raise ConfigurationError(
                f"seed must be an int, got {type(seed).__name__} {seed!r}"
            )
        return FlappingSchedule(
            self.config(), num_nodes, seed=seed, always_online=always_online
        )


def scenarios_for(figure: str, probabilities=FLAP_PROBABILITIES):
    """All (period, probability) scenarios for a figure's sweep."""
    if figure not in PERIOD_CONFIGS:
        raise ConfigurationError(
            f"unknown figure {figure!r}; choose from {sorted(PERIOD_CONFIGS)}"
        )
    return [
        PerturbationScenario(period_label=label, probability=p)
        for label in PERIOD_CONFIGS[figure]
        for p in probabilities
    ]


# -- the scenario-family catalogue ------------------------------------------


@dataclasses.dataclass(frozen=True)
class ScenarioFamily:
    """One availability-process family the scenario engine implements."""

    name: str
    summary: str
    process: str  #: the implementing class, dotted from repro.perturbation


#: Every scenario family, in catalogue order.  Families compose freely via
#: :class:`~repro.perturbation.timeline.ScenarioTimeline`.
SCENARIO_FAMILIES: dict[str, ScenarioFamily] = {
    family.name: family
    for family in (
        ScenarioFamily(
            name="flapping",
            summary="the paper's synchronized idle/offline cycles (figs 1, 11, 12)",
            process="flapping.FlappingSchedule",
        ),
        ScenarioFamily(
            name="churn",
            summary="exponential on/off renewal sessions (Overnet/Napster-style)",
            process="churn.ChurnSchedule",
        ),
        ScenarioFamily(
            name="regional-outage",
            summary="correlated outage of whole transit-stub domains",
            process="outage.RegionalOutage",
        ),
        ScenarioFamily(
            name="churn-wave",
            summary="churn with periodically surging join/leave rates",
            process="waves.ChurnWaveSchedule",
        ),
        ScenarioFamily(
            name="join-storm",
            summary="mass simultaneous arrivals rejoining through a perturbed net",
            process="storms.JoinStormSchedule",
        ),
        ScenarioFamily(
            name="adversarial-removal",
            summary="permanent deletion of the highest-degree overlay nodes",
            process="adversarial.AdversarialRemoval",
        ),
    )
}


def scenario_families() -> list[ScenarioFamily]:
    """The catalogue, in declaration order."""
    return list(SCENARIO_FAMILIES.values())


def get_family(name: str) -> ScenarioFamily:
    """Look up one scenario family by name."""
    try:
        return SCENARIO_FAMILIES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown scenario family {name!r}; choose from {sorted(SCENARIO_FAMILIES)}"
        ) from None
