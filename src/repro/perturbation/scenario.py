"""Named perturbation scenarios matching the paper's experiments.

The paper sweeps flapping probability 0.1..1.0 for four idle:offline
configurations in Figure 1 (1:1, 45:15, 30:30, 300:300) and three in
Figures 11–12 (1:1, 30:30, 300:300).
"""

from __future__ import annotations

import dataclasses

from repro.errors import ConfigurationError
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule

#: The idle:offline configurations used in the paper, by figure.
PERIOD_CONFIGS: dict[str, tuple[str, ...]] = {
    "fig1": ("1:1", "45:15", "30:30", "300:300"),
    "fig11": ("1:1", "30:30", "300:300"),
}

#: The paper's flapping-probability sweep.
FLAP_PROBABILITIES: tuple[float, ...] = tuple(round(0.1 * i, 1) for i in range(1, 11))


@dataclasses.dataclass(frozen=True)
class PerturbationScenario:
    """One cell of a perturbation sweep: a period label plus a probability."""

    period_label: str
    probability: float

    def config(self) -> FlappingConfig:
        return FlappingConfig.from_label(self.period_label, self.probability)

    def schedule(
        self,
        num_nodes: int,
        seed: object = 0,
        always_online: frozenset[int] | set[int] = frozenset(),
    ) -> FlappingSchedule:
        return FlappingSchedule(
            self.config(), num_nodes, seed=seed, always_online=always_online
        )


def scenarios_for(figure: str, probabilities=FLAP_PROBABILITIES):
    """All (period, probability) scenarios for a figure's sweep."""
    if figure not in PERIOD_CONFIGS:
        raise ConfigurationError(
            f"unknown figure {figure!r}; choose from {sorted(PERIOD_CONFIGS)}"
        )
    return [
        PerturbationScenario(period_label=label, probability=p)
        for label in PERIOD_CONFIGS[figure]
        for p in probabilities
    ]
