"""Random-walk lookups and the Section 5.1 hops validation primitive.

``random_walk_lookup`` launches ``walkers`` independent uniform random
walks (the Lv et al. style baseline); each stops when it reaches a replica
holder or exhausts its step budget.

``walk_hops_to_local_maximum`` performs the exact experiment behind the
Section 5.1 claim "the expected number of hops to reach one of the local
maxima from any node ... is simply 1/C": a uniform random walk that stops
at the first node whose MPIL metric value is a local maximum.  The
analysis tests compare its empirical mean against
:func:`repro.analysis.expected_hops_to_local_maximum`.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.baselines.flooding import BaselineLookupResult
from repro.core.identifiers import Identifier
from repro.core.metric import NeighborMetricTable
from repro.core.replicas import ReplicaDirectory
from repro.errors import RoutingError
from repro.overlay.graph import OverlayGraph
from repro.sim.rng import derive_rng
from repro.telemetry import current as current_telemetry


def random_walk_lookup(
    overlay: OverlayGraph,
    directory: ReplicaDirectory,
    origin: int,
    object_id: Identifier,
    walkers: int = 8,
    max_steps: int = 64,
    rng: Optional[random.Random] = None,
) -> BaselineLookupResult:
    """Launch independent uniform random walks until a holder is found."""
    if not 0 <= origin < overlay.n:
        raise RoutingError(f"origin {origin} out of range (n={overlay.n})")
    if walkers < 1:
        raise RoutingError(f"walkers must be >= 1, got {walkers}")
    if max_steps < 0:
        raise RoutingError(f"max_steps must be non-negative, got {max_steps}")
    rng = rng if rng is not None else derive_rng(0, "random-walk-lookup")

    telemetry = current_telemetry()
    spans = telemetry.spans  # None unless the run opted into tracing
    trace_id = ""
    root_sid = None
    if spans is not None:
        trace_id = spans.begin_trace("walk-lookup")
        root_sid = spans.emit(
            trace_id,
            "walk-lookup",
            node=origin,
            start=0.0,
            object=str(object_id),
            walkers=walkers,
        )

    replies: list[tuple[int, int]] = []
    traffic = 0
    contacted = {origin}
    for walker in range(walkers):
        node = origin
        parent_sid = root_sid
        if spans is not None:
            parent_sid = spans.emit(
                trace_id,
                "walker",
                node=origin,
                start=0.0,
                parent_id=root_sid,
                walker=walker,
            )
        if directory.has(node, object_id):
            replies.append((node, 0))
            if spans is not None:
                spans.emit(
                    trace_id, "reply", node=node, start=0.0, parent_id=parent_sid, hop=0
                )
            continue
        for step in range(1, max_steps + 1):
            neighbors = overlay.neighbors(node)
            if not neighbors:
                break
            previous = node
            node = rng.choice(neighbors)
            traffic += 1
            contacted.add(node)
            if spans is not None:
                parent_sid = spans.emit(
                    trace_id,
                    "send",
                    node=previous,
                    start=float(step - 1),
                    end=float(step),
                    parent_id=parent_sid,
                    to=node,
                )
            if directory.has(node, object_id):
                replies.append((node, step))
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "reply",
                        node=node,
                        start=float(step),
                        parent_id=parent_sid,
                        hop=step,
                    )
                break
    replies.sort(key=lambda item: item[1])
    telemetry.metrics.inc("walk_lookups_total")
    telemetry.metrics.inc("walk_messages_total", traffic)
    return BaselineLookupResult(
        object_id=object_id,
        origin=origin,
        success=bool(replies),
        first_reply_hop=replies[0][1] if replies else None,
        replies=tuple(replies),
        traffic=traffic,
        nodes_contacted=len(contacted),
    )


def walk_hops_to_local_maximum(
    overlay: OverlayGraph,
    metric_table: NeighborMetricTable,
    origin: int,
    object_id: Identifier,
    rng: random.Random,
    max_steps: int = 100_000,
    strict: bool = True,
) -> Optional[int]:
    """Uniform-random-walk hops until the first local maximum of the MPIL
    metric w.r.t. ``object_id``; None if the cap is hit (disconnected or
    pathological overlays).

    ``strict=True`` stops only at nodes strictly greater than every
    neighbor — the definition the Section 5 formula ``C = sum A * B^d``
    counts (B sums *strictly smaller* matches), so this is the setting the
    1/C validation uses.  ``strict=False`` uses the insertion rule ("none
    of its neighbor nodes have a higher value", ties allowed).
    """
    node = origin
    for step in range(max_steps + 1):
        scores = metric_table.scores(node, object_id)
        self_score = metric_table.self_score(node, object_id)
        if scores.size == 0:
            return step
        best = int(scores.max())
        if (self_score > best) if strict else (self_score >= best):
            return step
        neighbors = overlay.neighbors(node)
        node = rng.choice(neighbors)
    return None
