"""Unstructured-overlay lookup baselines.

The paper positions MPIL between two extremes: "Unstructured overlays such
as Gnutella use flooding ... perturbation-resistant and overlay-independent,
but neither efficient nor scalable", and DHT routing (efficient but
overlay-dependent).  Related work (Lv et al.) replaces flooding with random
walks.  This package implements both baselines over the same
:class:`~repro.overlay.graph.OverlayGraph` + replica directory so lookup
strategies can be compared like-for-like, and provides the random-walk
primitive used to validate the Section 5.1 expected-hops analysis
(``E[hops to a local maximum] = 1/C``).
"""

from repro.baselines.flooding import BaselineLookupResult, flood_lookup
from repro.baselines.walks import random_walk_lookup, walk_hops_to_local_maximum

__all__ = [
    "BaselineLookupResult",
    "flood_lookup",
    "random_walk_lookup",
    "walk_hops_to_local_maximum",
]
