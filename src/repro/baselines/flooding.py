"""TTL-limited flooding lookup (the Gnutella baseline).

A query floods breadth-first: every node that receives it for the first
time forwards it to all neighbors except the one it came from, until the
TTL is exhausted.  Nodes holding the object reply and do not forward
further.  Traffic counts every per-edge send, like the MPIL drivers.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional

from repro.core.identifiers import Identifier
from repro.core.replicas import ReplicaDirectory
from repro.errors import RoutingError
from repro.overlay.graph import OverlayGraph
from repro.telemetry import current as current_telemetry


@dataclasses.dataclass(frozen=True)
class BaselineLookupResult:
    """Outcome of a baseline (flooding / random walk) lookup."""

    object_id: Identifier
    origin: int
    success: bool
    first_reply_hop: Optional[int]
    replies: tuple[tuple[int, int], ...]
    traffic: int
    nodes_contacted: int


def flood_lookup(
    overlay: OverlayGraph,
    directory: ReplicaDirectory,
    origin: int,
    object_id: Identifier,
    ttl: int = 4,
) -> BaselineLookupResult:
    """Flood a query from ``origin`` with the given TTL (in hops).

    >>> # doctest-free: exercised in tests/test_baselines.py
    """
    if not 0 <= origin < overlay.n:
        raise RoutingError(f"origin {origin} out of range (n={overlay.n})")
    if ttl < 0:
        raise RoutingError(f"ttl must be non-negative, got {ttl}")

    telemetry = current_telemetry()
    spans = telemetry.spans  # None unless the run opted into tracing
    # span ids of the sends that delivered each frontier entry, in lockstep
    # with ``frontier`` (only when tracing is on)
    span_parents: collections.deque[int] = collections.deque()
    trace_id = ""
    if spans is not None:
        trace_id = spans.begin_trace("flood-lookup")
        span_parents.append(
            spans.emit(
                trace_id,
                "flood-lookup",
                node=origin,
                start=0.0,
                object=str(object_id),
                ttl=ttl,
            )
        )

    replies: list[tuple[int, int]] = []
    traffic = 0
    seen = {origin}
    frontier: collections.deque[tuple[int, int, int]] = collections.deque()
    # (node, hop, parent)
    frontier.append((origin, 0, -1))
    while frontier:
        node, hop, parent = frontier.popleft()
        parent_sid = span_parents.popleft() if spans is not None else None
        if directory.has(node, object_id):
            replies.append((node, hop))
            if spans is not None:
                spans.emit(
                    trace_id,
                    "reply",
                    node=node,
                    start=float(hop),
                    parent_id=parent_sid,
                    hop=hop,
                )
            continue  # a holder answers and stops forwarding
        if hop >= ttl:
            continue
        for neighbor in overlay.neighbors(node):
            if neighbor == parent:
                continue
            traffic += 1
            if neighbor in seen:
                if spans is not None:
                    spans.emit(
                        trace_id,
                        "dup-drop",
                        node=neighbor,
                        start=float(hop + 1),
                        parent_id=parent_sid,
                    )
                continue
            seen.add(neighbor)
            frontier.append((neighbor, hop + 1, node))
            if spans is not None:
                span_parents.append(
                    spans.emit(
                        trace_id,
                        "send",
                        node=node,
                        start=float(hop),
                        end=float(hop + 1),
                        parent_id=parent_sid,
                        to=neighbor,
                    )
                )
    replies.sort(key=lambda item: item[1])
    telemetry.metrics.inc("flood_lookups_total")
    telemetry.metrics.inc("flood_messages_total", traffic)
    return BaselineLookupResult(
        object_id=object_id,
        origin=origin,
        success=bool(replies),
        first_reply_hop=replies[0][1] if replies else None,
        replies=tuple(replies),
        traffic=traffic,
        nodes_contacted=len(seen),
    )
