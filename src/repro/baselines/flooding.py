"""TTL-limited flooding lookup (the Gnutella baseline).

A query floods breadth-first: every node that receives it for the first
time forwards it to all neighbors except the one it came from, until the
TTL is exhausted.  Nodes holding the object reply and do not forward
further.  Traffic counts every per-edge send, like the MPIL drivers.
"""

from __future__ import annotations

import collections
import dataclasses
from typing import Optional

from repro.core.identifiers import Identifier
from repro.core.replicas import ReplicaDirectory
from repro.errors import RoutingError
from repro.overlay.graph import OverlayGraph


@dataclasses.dataclass(frozen=True)
class BaselineLookupResult:
    """Outcome of a baseline (flooding / random walk) lookup."""

    object_id: Identifier
    origin: int
    success: bool
    first_reply_hop: Optional[int]
    replies: tuple[tuple[int, int], ...]
    traffic: int
    nodes_contacted: int


def flood_lookup(
    overlay: OverlayGraph,
    directory: ReplicaDirectory,
    origin: int,
    object_id: Identifier,
    ttl: int = 4,
) -> BaselineLookupResult:
    """Flood a query from ``origin`` with the given TTL (in hops).

    >>> # doctest-free: exercised in tests/test_baselines.py
    """
    if not 0 <= origin < overlay.n:
        raise RoutingError(f"origin {origin} out of range (n={overlay.n})")
    if ttl < 0:
        raise RoutingError(f"ttl must be non-negative, got {ttl}")

    replies: list[tuple[int, int]] = []
    traffic = 0
    seen = {origin}
    frontier: collections.deque[tuple[int, int, int]] = collections.deque()
    # (node, hop, parent)
    frontier.append((origin, 0, -1))
    while frontier:
        node, hop, parent = frontier.popleft()
        if directory.has(node, object_id):
            replies.append((node, hop))
            continue  # a holder answers and stops forwarding
        if hop >= ttl:
            continue
        for neighbor in overlay.neighbors(node):
            if neighbor == parent:
                continue
            traffic += 1
            if neighbor in seen:
                continue
            seen.add(neighbor)
            frontier.append((neighbor, hop + 1, node))
    replies.sort(key=lambda item: item[1])
    return BaselineLookupResult(
        object_id=object_id,
        origin=origin,
        success=bool(replies),
        first_reply_hop=replies[0][1] if replies else None,
        replies=tuple(replies),
        traffic=traffic,
        nodes_contacted=len(seen),
    )
