"""Extension experiment: lookup success under churn waves.

Real churn is not stationary: diurnal cycles and flash events produce
waves where join/leave rates surge together.  This experiment holds
long-run availability at 50% (mean session = mean downtime = 300 s) and
sweeps the wave *intensity* — the rate multiplier in force for 150 s out
of every 600 s — so the population's availability stays constant while
churn speed periodically spikes.  Success is reported both overall and for
the lookups issued inside wave windows, separating steady-state staleness
from surge damage.

As in ``ext-churn``, MSPastry runs with probed views (maintenance) and no
rejoin model (view staleness isolated); MPIL runs with no maintenance.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.experiments.perturbed import (
    MPIL_MAX_FLOWS,
    MPIL_PER_FLOW_REPLICAS,
    PerturbationTestbed,
    build_testbed,
    iter_stage2_lookups,
)
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext
from repro.pastry.views import ProbedViewOracle
from repro.perturbation.waves import ChurnWaveConfig, ChurnWaveSchedule

EXPERIMENT_ID = "ext-wave"
TITLE = "Extension: success under churn waves (50% availability, surging rates)"

MEAN_SESSION = 300.0
MEAN_DOWNTIME = 300.0
WAVE_PERIOD = 600.0
WAVE_DURATION = 150.0
LOOKUP_SPACING = 60.0


def _in_wave(time: float) -> bool:
    return time % WAVE_PERIOD < WAVE_DURATION


def _run_variant(
    testbed: PerturbationTestbed,
    schedule: ChurnWaveSchedule,
    variant: str,
    num_lookups: int,
) -> tuple[float, float]:
    """(overall, in-wave) success rates in percent."""
    views: Optional[ProbedViewOracle] = None
    if variant == "pastry":
        views = ProbedViewOracle(
            schedule, testbed.pastry.config, seed=(testbed.seed, "wave-views")
        )
    successes = in_wave_successes = in_wave_total = 0
    for i, success in iter_stage2_lookups(
        testbed, variant, range(num_lookups), LOOKUP_SPACING, schedule, views
    ):
        successes += int(success)
        if _in_wave(LOOKUP_SPACING * (i + 1)):
            in_wave_total += 1
            in_wave_successes += int(success)
    overall = 100.0 * successes / num_lookups
    in_wave = 100.0 * in_wave_successes / in_wave_total if in_wave_total else 0.0
    return overall, in_wave


def _build(ctx: RunContext) -> PerturbationTestbed:
    return build_testbed(
        ctx.scale.pastry_nodes, ctx.scale.perturbed_inserts, seed=ctx.seed
    )


def _measure(
    ctx: RunContext, testbed: PerturbationTestbed, intensity: float
) -> Iterable[tuple]:
    config = ChurnWaveConfig(
        mean_session=MEAN_SESSION,
        mean_downtime=MEAN_DOWNTIME,
        wave_period=WAVE_PERIOD,
        wave_duration=WAVE_DURATION,
        intensity=intensity,
    )
    schedule = ChurnWaveSchedule(
        config,
        testbed.pastry.n,
        seed=(ctx.seed, "wave", intensity),
        always_online={testbed.client},
    )
    lookups = ctx.scale.perturbed_lookups
    pastry_all, pastry_wave = _run_variant(testbed, schedule, "pastry", lookups)
    ds_all, ds_wave = _run_variant(testbed, schedule, "mpil-ds", lookups)
    nods_all, nods_wave = _run_variant(testbed, schedule, "mpil-nods", lookups)
    return [
        (
            intensity,
            round(pastry_all, 1),
            round(ds_all, 1),
            round(nods_all, 1),
            round(pastry_wave, 1),
            round(ds_wave, 1),
            round(nods_wave, 1),
        )
    ]


@experiment(
    id=EXPERIMENT_ID,
    title=TITLE,
    tags=("ext", "scenario", "perturbation", "churn", "waves"),
    scenario_family="churn-wave",
)
def spec() -> Pipeline:
    return Pipeline(
        columns=(
            "wave_intensity",
            "MSPastry",
            "MPIL with DS",
            "MPIL without DS",
            "MSPastry (in wave)",
            "MPIL with DS (in wave)",
            "MPIL without DS (in wave)",
        ),
        key_columns=("wave_intensity",),
        build=_build,
        cells=lambda ctx, built: ctx.scale.wave_intensities,
        measure=_measure,
        notes=(
            f"wave churn at 50% availability ({MEAN_SESSION:g}s/{MEAN_DOWNTIME:g}s), "
            f"rates x intensity for {WAVE_DURATION:g}s every {WAVE_PERIOD:g}s; "
            f"MPIL at ({MPIL_MAX_FLOWS}, {MPIL_PER_FLOW_REPLICAS}); lookups every "
            f"{LOOKUP_SPACING:g}s; rejoin model not applied (view staleness isolated)"
        ),
    )


run = spec.run
