"""Extension experiment: join storm over background flapping.

A ``storm_fraction`` of the population is absent from the start of stage 2
and arrives *simultaneously* one third of the way through the lookup
sequence — a flash-crowd / post-outage-restart event.  The storm composes
with the paper's background flapping (30:30 at probability 0.3) via
:class:`~repro.perturbation.timeline.ScenarioTimeline`, which is what makes
it hard: every arrival must rejoin MSPastry through contacts that are
themselves flapping
(:class:`~repro.pastry.rejoin.IntervalRejoinAvailability`), so recovery
staggers; MPIL's arrivals simply start answering.  Insertion is stressed
from the other side — stage-1 replicas parked on not-yet-arrived nodes are
unreachable until the storm lands.

Success is reported per (storm fraction, phase) cell: ``pre`` (before the
storm), ``recovery`` (the third right after it), and ``steady`` (the rest).
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.perturbed import (
    MPIL_MAX_FLOWS,
    MPIL_PER_FLOW_REPLICAS,
    PerturbationTestbed,
    build_testbed,
    iter_stage2_lookups,
)
from repro.experiments.scales import get_scale
from repro.pastry.rejoin import IntervalRejoinAvailability
from repro.pastry.views import ProbedViewOracle
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.storms import JoinStormConfig, JoinStormSchedule
from repro.perturbation.timeline import ScenarioTimeline

EXPERIMENT_ID = "ext-joinstorm"
TITLE = "Extension: join storm over background flapping (recovery by phase)"

FLAP_LABEL = "30:30"
FLAP_PROBABILITY = 0.3
LOOKUP_SPACING = 60.0
PHASES = ("pre", "recovery", "steady")


def _phase_bounds(num_lookups: int) -> dict[str, tuple[int, int]]:
    """Lookup-index windows for the three phases."""
    if num_lookups < 3:
        raise ExperimentError(
            f"ext-joinstorm needs at least 3 lookups to form pre/recovery/"
            f"steady phases, got {num_lookups}"
        )
    n1 = max(1, num_lookups // 3)
    n2 = max(n1 + 1, (2 * num_lookups) // 3)
    return {
        "pre": (0, n1),
        "recovery": (n1, n2),
        "steady": (n2, num_lookups),
    }


def _run_variant(
    testbed: PerturbationTestbed,
    schedule: ScenarioTimeline,
    variant: str,
    num_lookups: int,
    bounds: dict[str, tuple[int, int]],
) -> dict[str, float]:
    """Per-phase success rates in percent."""
    availability, views = schedule, None
    if variant == "pastry":
        availability = IntervalRejoinAvailability(
            schedule, testbed.pastry.config, seed=(testbed.seed, "storm-rejoin")
        )
        views = ProbedViewOracle(
            availability, testbed.pastry.config, seed=(testbed.seed, "storm-views")
        )
    successes = {phase: 0 for phase in PHASES}
    for i, success in iter_stage2_lookups(
        testbed, variant, range(num_lookups), LOOKUP_SPACING, availability, views
    ):
        for phase, (lo, hi) in bounds.items():
            if lo <= i < hi:
                successes[phase] += int(success)
    return {
        phase: 100.0 * successes[phase] / (bounds[phase][1] - bounds[phase][0])
        for phase in PHASES
    }


def run(scale: str = "default", seed: object = 0) -> ExperimentResult:
    resolved = get_scale(scale)
    testbed = build_testbed(
        resolved.pastry_nodes, resolved.perturbed_inserts, seed=seed
    )
    num_lookups = resolved.perturbed_lookups
    bounds = _phase_bounds(num_lookups)
    # the storm lands just before the first "recovery" lookup
    arrival = LOOKUP_SPACING * (bounds["recovery"][0] + 0.5)
    flapping = FlappingSchedule(
        FlappingConfig.from_label(FLAP_LABEL, FLAP_PROBABILITY),
        testbed.pastry.n,
        seed=(seed, "storm-flap"),
        always_online={testbed.client},
    )
    rows = []
    for fraction in resolved.storm_fractions:
        storm = JoinStormSchedule(
            JoinStormConfig(arrival_time=arrival, late_fraction=fraction),
            testbed.pastry.n,
            seed=(seed, "storm", fraction),
            always_online={testbed.client},
        )
        schedule = ScenarioTimeline([flapping, storm])
        pastry = _run_variant(testbed, schedule, "pastry", num_lookups, bounds)
        ds = _run_variant(testbed, schedule, "mpil-ds", num_lookups, bounds)
        nods = _run_variant(testbed, schedule, "mpil-nods", num_lookups, bounds)
        for phase in PHASES:
            rows.append(
                (
                    fraction,
                    phase,
                    round(pastry[phase], 1),
                    round(ds[phase], 1),
                    round(nods[phase], 1),
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=(
            "storm_fraction",
            "phase",
            "MSPastry",
            "MPIL with DS",
            "MPIL without DS",
        ),
        rows=rows,
        notes=(
            f"storm_fraction of nodes absent until t={arrival:g}s, arriving at "
            f"once over {FLAP_LABEL} flapping at p={FLAP_PROBABILITY}; MSPastry "
            f"arrivals rejoin through flapping contacts; MPIL at "
            f"({MPIL_MAX_FLOWS}, {MPIL_PER_FLOW_REPLICAS}); lookups every "
            f"{LOOKUP_SPACING:g}s"
        ),
        scale=resolved.name,
        key_columns=("storm_fraction", "phase"),
    )
