"""Extension experiment: join storm over background flapping.

A ``storm_fraction`` of the population is absent from the start of stage 2
and arrives *simultaneously* one third of the way through the lookup
sequence — a flash-crowd / post-outage-restart event.  The storm composes
with the paper's background flapping (30:30 at probability 0.3) via
:class:`~repro.perturbation.timeline.ScenarioTimeline`, which is what makes
it hard: every arrival must rejoin MSPastry through contacts that are
themselves flapping
(:class:`~repro.pastry.rejoin.IntervalRejoinAvailability`), so recovery
staggers; MPIL's arrivals simply start answering.  Insertion is stressed
from the other side — stage-1 replicas parked on not-yet-arrived nodes are
unreachable until the storm lands.

Success is reported per (storm fraction, phase) cell: ``pre`` (before the
storm), ``recovery`` (the third right after it), and ``steady`` (the rest).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Iterable, Optional

from repro.errors import ExperimentError
from repro.experiments.perturbed import (
    MPIL_MAX_FLOWS,
    MPIL_PER_FLOW_REPLICAS,
    PerturbationTestbed,
    build_testbed,
    iter_stage2_lookups,
)
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext
from repro.pastry.rejoin import IntervalRejoinAvailability
from repro.pastry.views import ProbedViewOracle
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.storms import JoinStormConfig, JoinStormSchedule
from repro.perturbation.timeline import ScenarioTimeline

EXPERIMENT_ID = "ext-joinstorm"
TITLE = "Extension: join storm over background flapping (recovery by phase)"

FLAP_LABEL = "30:30"
FLAP_PROBABILITY = 0.3
LOOKUP_SPACING = 60.0
PHASES = ("pre", "recovery", "steady")


def _phase_bounds(num_lookups: int) -> dict[str, tuple[int, int]]:
    """Lookup-index windows for the three phases."""
    if num_lookups < 3:
        raise ExperimentError(
            f"ext-joinstorm needs at least 3 lookups to form pre/recovery/"
            f"steady phases, got {num_lookups}"
        )
    n1 = max(1, num_lookups // 3)
    n2 = max(n1 + 1, (2 * num_lookups) // 3)
    return {
        "pre": (0, n1),
        "recovery": (n1, n2),
        "steady": (n2, num_lookups),
    }


def _run_variant(
    testbed: PerturbationTestbed,
    schedule: ScenarioTimeline,
    variant: str,
    num_lookups: int,
    bounds: dict[str, tuple[int, int]],
) -> dict[str, float]:
    """Per-phase success rates in percent."""
    availability: Any = schedule
    views: Optional[ProbedViewOracle] = None
    if variant == "pastry":
        availability = IntervalRejoinAvailability(
            schedule, testbed.pastry.config, seed=(testbed.seed, "storm-rejoin")
        )
        views = ProbedViewOracle(
            availability, testbed.pastry.config, seed=(testbed.seed, "storm-views")
        )
    successes = {phase: 0 for phase in PHASES}
    for i, success in iter_stage2_lookups(
        testbed, variant, range(num_lookups), LOOKUP_SPACING, availability, views
    ):
        for phase, (lo, hi) in bounds.items():
            if lo <= i < hi:
                successes[phase] += int(success)
    return {
        phase: 100.0 * successes[phase] / (bounds[phase][1] - bounds[phase][0])
        for phase in PHASES
    }


@dataclasses.dataclass
class _StormTestbed:
    """Built state shared by every storm-fraction cell."""

    testbed: PerturbationTestbed
    bounds: dict[str, tuple[int, int]]
    arrival: float
    flapping: FlappingSchedule


def _build(ctx: RunContext) -> _StormTestbed:
    testbed = build_testbed(
        ctx.scale.pastry_nodes, ctx.scale.perturbed_inserts, seed=ctx.seed
    )
    bounds = _phase_bounds(ctx.scale.perturbed_lookups)
    # the storm lands just before the first "recovery" lookup
    arrival = LOOKUP_SPACING * (bounds["recovery"][0] + 0.5)
    flapping = FlappingSchedule(
        FlappingConfig.from_label(FLAP_LABEL, FLAP_PROBABILITY),
        testbed.pastry.n,
        seed=(ctx.seed, "storm-flap"),
        always_online={testbed.client},
    )
    return _StormTestbed(testbed=testbed, bounds=bounds, arrival=arrival, flapping=flapping)


def _measure(ctx: RunContext, built: _StormTestbed, fraction: float) -> Iterable[tuple]:
    testbed = built.testbed
    storm = JoinStormSchedule(
        JoinStormConfig(arrival_time=built.arrival, late_fraction=fraction),
        testbed.pastry.n,
        seed=(ctx.seed, "storm", fraction),
        always_online={testbed.client},
    )
    schedule = ScenarioTimeline([built.flapping, storm])
    num_lookups = ctx.scale.perturbed_lookups
    pastry = _run_variant(testbed, schedule, "pastry", num_lookups, built.bounds)
    ds = _run_variant(testbed, schedule, "mpil-ds", num_lookups, built.bounds)
    nods = _run_variant(testbed, schedule, "mpil-nods", num_lookups, built.bounds)
    return [
        (
            fraction,
            phase,
            round(pastry[phase], 1),
            round(ds[phase], 1),
            round(nods[phase], 1),
        )
        for phase in PHASES
    ]


def _notes(ctx: RunContext, built: _StormTestbed) -> str:
    return (
        f"storm_fraction of nodes absent until t={built.arrival:g}s, arriving at "
        f"once over {FLAP_LABEL} flapping at p={FLAP_PROBABILITY}; MSPastry "
        f"arrivals rejoin through flapping contacts; MPIL at "
        f"({MPIL_MAX_FLOWS}, {MPIL_PER_FLOW_REPLICAS}); lookups every "
        f"{LOOKUP_SPACING:g}s"
    )


@experiment(
    id=EXPERIMENT_ID,
    title=TITLE,
    tags=("ext", "scenario", "perturbation", "storm", "composed"),
    scenario_family="join-storm",
)
def spec() -> Pipeline:
    return Pipeline(
        columns=(
            "storm_fraction",
            "phase",
            "MSPastry",
            "MPIL with DS",
            "MPIL without DS",
        ),
        key_columns=("storm_fraction", "phase"),
        build=_build,
        cells=lambda ctx, built: ctx.scale.storm_fractions,
        measure=_measure,
        notes=_notes,
    )


run = spec.run
