"""Experiment harness: one module per paper figure/table.

Every experiment exposes ``run(scale="default", seed=0) -> ExperimentResult``
and is registered in :mod:`repro.experiments.registry`.  Use the CLI::

    mpil-experiments list
    mpil-experiments run fig9 tab1 --scale default
    mpil-experiments sweep fig9 tab1 --seeds 0..9 --jobs 4

or the benchmarks under ``benchmarks/`` (one per figure/table).  Sweeps
persist per-seed JSON replicates plus mean/stdev/ci95 aggregates through
:class:`~repro.experiments.store.ResultStore` (see
:mod:`repro.experiments.runner` and :mod:`repro.experiments.store`).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiment_ids, get_experiment, run_experiment
from repro.experiments.runner import SweepReport, SweepSpec, parse_seeds, run_sweep
from repro.experiments.scales import SCALES, Scale, get_scale
from repro.experiments.store import ResultStore, aggregate_results

__all__ = [
    "ExperimentResult",
    "ResultStore",
    "SCALES",
    "Scale",
    "SweepReport",
    "SweepSpec",
    "aggregate_results",
    "all_experiment_ids",
    "get_experiment",
    "get_scale",
    "parse_seeds",
    "run_experiment",
    "run_sweep",
]
