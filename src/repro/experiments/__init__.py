"""Experiment harness: one module per paper figure/table.

Every experiment exposes ``run(scale="default", seed=0) -> ExperimentResult``
and is registered in :mod:`repro.experiments.registry`.  Use the CLI::

    mpil-experiments list
    mpil-experiments run fig9 tab1 --scale default

or the benchmarks under ``benchmarks/`` (one per figure/table).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.registry import all_experiment_ids, get_experiment, run_experiment
from repro.experiments.scales import SCALES, Scale, get_scale

__all__ = [
    "ExperimentResult",
    "SCALES",
    "Scale",
    "all_experiment_ids",
    "get_experiment",
    "get_scale",
    "run_experiment",
]
