"""Experiment harness: declarative specs, a decorator registry, a CLI.

Every experiment is an :class:`~repro.experiments.spec.ExperimentSpec` —
metadata plus a pipeline of pluggable stages (overlay/testbed build,
sweep cells, measurement) — registered through the
:func:`~repro.experiments.registry.experiment` decorator::

    @experiment(id="fig9", title=..., tags=("figure", "static"), figure="Figure 9")
    def spec() -> Pipeline: ...

Specs can also be *composed* from a TOML/dict description at runtime
(:mod:`repro.experiments.compose`), no module required.  The high-level
facade is :mod:`repro.api` (``run``, ``sweep``, ``compose``,
``list_experiments``); the shell front door is the CLI::

    mpil-experiments list --tags ext
    mpil-experiments run fig9 tab1 --scale default
    mpil-experiments sweep fig9 tab1 --seeds 0..9 --jobs 4
    mpil-experiments compose my-sweep.toml --scale smoke

Sweeps persist per-seed JSON replicates plus mean/stdev/ci95 aggregates
through :class:`~repro.experiments.store.ResultStore` (see
:mod:`repro.experiments.runner` and :mod:`repro.experiments.store`).
"""

from repro.experiments.base import ExperimentResult
from repro.experiments.budget import BudgetGuard
from repro.experiments.compose import compose_spec, load_spec_file
from repro.experiments.registry import (
    all_experiment_ids,
    experiment,
    get_experiment,
    get_spec,
    list_experiments,
    register,
    run_experiment,
    unregister,
)
from repro.experiments.runner import SweepReport, SweepSpec, parse_seeds, run_sweep
from repro.experiments.scales import (
    SCALES,
    AnalysisSpec,
    BudgetSpec,
    PerturbSpec,
    Scale,
    ServiceSpec,
    StaticSpec,
    all_scales,
    available_scales,
    get_scale,
    register_scale,
    unregister_scale,
)
from repro.experiments.spec import ExperimentSpec, Pipeline, RunContext
from repro.experiments.store import ResultStore, aggregate_results

__all__ = [
    "AnalysisSpec",
    "BudgetGuard",
    "BudgetSpec",
    "ExperimentResult",
    "ExperimentSpec",
    "PerturbSpec",
    "Pipeline",
    "ResultStore",
    "RunContext",
    "SCALES",
    "Scale",
    "ServiceSpec",
    "StaticSpec",
    "SweepReport",
    "SweepSpec",
    "aggregate_results",
    "all_experiment_ids",
    "all_scales",
    "available_scales",
    "compose_spec",
    "experiment",
    "get_experiment",
    "get_scale",
    "get_spec",
    "list_experiments",
    "load_spec_file",
    "parse_seeds",
    "register",
    "register_scale",
    "run_experiment",
    "run_sweep",
    "unregister",
    "unregister_scale",
]
