"""Figure 7 — expected number of local maxima for random regular topologies.

Series: for N in {4000, 8000, 16000} nodes, expected local maxima as a
function of the number of neighbors d = 10..100, from the Section-5 formula
``N * C`` with ``C = sum_k A(k) B(k)^d``.
"""

from __future__ import annotations

from repro.analysis import expected_local_maxima_regular
from repro.core.identifiers import IdSpace
from repro.experiments.base import ExperimentResult
from repro.experiments.scales import get_scale

EXPERIMENT_ID = "fig7"
TITLE = "Expected number of local maxima (random regular topologies)"


def run(scale: str = "default", seed: object = 0) -> ExperimentResult:  # noqa: ARG001
    resolved = get_scale(scale)
    space = IdSpace(bits=160, digit_bits=4)
    rows = []
    for n in resolved.analysis_node_counts:
        for degree in resolved.analysis_degrees:
            rows.append(
                (n, degree, round(expected_local_maxima_regular(space, n, degree), 2))
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=("nodes", "neighbors", "expected_local_maxima"),
        rows=rows,
        notes=(
            "closed-form Section 5 result; paper shape: decreasing in degree, "
            "increasing in N, roughly N/(d+1)"
        ),
        scale=resolved.name,
        key_columns=('nodes', 'neighbors'),
    )
