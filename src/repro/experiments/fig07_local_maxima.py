"""Figure 7 — expected number of local maxima for random regular topologies.

Series: for N in {4000, 8000, 16000} nodes, expected local maxima as a
function of the number of neighbors d = 10..100, from the Section-5 formula
``N * C`` with ``C = sum_k A(k) B(k)^d``.
"""

from __future__ import annotations

from typing import Iterable, Iterator

from repro.analysis import expected_local_maxima_regular
from repro.core.identifiers import IdSpace
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext

EXPERIMENT_ID = "fig7"
TITLE = "Expected number of local maxima (random regular topologies)"

_SPACE = IdSpace(bits=160, digit_bits=4)


def _cells(ctx: RunContext, built: None) -> Iterator[tuple[int, int]]:
    for n in ctx.scale.analysis_node_counts:
        for degree in ctx.scale.analysis_degrees:
            yield n, degree


def _measure(ctx: RunContext, built: None, cell: tuple[int, int]) -> Iterable[tuple]:
    n, degree = cell
    return [(n, degree, round(expected_local_maxima_regular(_SPACE, n, degree), 2))]


@experiment(
    id=EXPERIMENT_ID,
    title=TITLE,
    tags=("figure", "paper", "analysis"),
    figure="Figure 7",
)
def spec() -> Pipeline:
    return Pipeline(
        columns=("nodes", "neighbors", "expected_local_maxima"),
        key_columns=("nodes", "neighbors"),
        cells=_cells,
        measure=_measure,
        notes=(
            "closed-form Section 5 result; paper shape: decreasing in degree, "
            "increasing in N, roughly N/(d+1)"
        ),
    )


run = spec.run
