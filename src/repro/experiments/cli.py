"""Command-line interface: ``mpil-experiments list|scenarios|run|sweep|perf ...``.

Five commands:

- ``list`` — show every registered experiment id and title;
- ``scenarios`` — show the perturbation-scenario catalogue (one line per
  availability-process family with its registered experiment), one
  family's details, or a figure's flapping sweep cells;
- ``run``  — run experiments one seed at a time, print their tables, and
  (with ``--out``) persist each replicate through the result store plus a
  legacy ``<id>_<scale>_seed<seed>.txt`` table;
- ``sweep`` — run experiments over a *set* of seeds, optionally across a
  worker pool, persisting per-seed JSON artifacts and a mean/stdev/ci95
  aggregate per experiment (see :mod:`repro.experiments.runner` and
  :mod:`repro.experiments.store`);
- ``perf`` — profile experiments (events/sec, wall clock, cProfile top-k)
  into ``BENCH_<id>.json`` files, optionally gating against a committed
  ``benchmarks/baseline.json`` (see :mod:`repro.perf`).

The sweep store layout is ``<out>/<experiment>/<scale>/seed_<n>.json`` with
a ``manifest.json`` (git revision, timestamps, wall-clock, event counts)
and ``aggregate.json``/``aggregate.csv`` alongside.  Per-seed JSON is
byte-identical across reruns of the same spec, regardless of ``--jobs``.

Examples::

    mpil-experiments list
    mpil-experiments scenarios
    mpil-experiments scenarios regional-outage
    mpil-experiments scenarios --figure fig11
    mpil-experiments run fig9 --scale smoke
    mpil-experiments run all --scale default --out results/
    mpil-experiments sweep fig9 tab1 --seeds 0..3 --jobs 2 --format json
    mpil-experiments sweep fig9 --seeds 0,2,5 --scale smoke --format csv
    mpil-experiments perf fig9 ext-outage --scale smoke --check benchmarks/baseline.json

(Without an installed entry point, invoke the same CLI as
``PYTHONPATH=src python -m repro.experiments.cli ...``.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.registry import all_experiment_ids, get_experiment, run_experiment
from repro.experiments.runner import SweepSpec, TaskOutcome, parse_seeds, run_sweep
from repro.experiments.scales import SCALES
from repro.experiments.store import ResultStore, result_to_csv
from repro.perf.profiler import profile_experiment, write_bench
from repro.perf.regression import check_regressions, write_baseline
from repro.perturbation.scenario import get_family, scenario_families, scenarios_for


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mpil-experiments",
        description="Regenerate the paper's figures and tables (MPIL, DSN 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    scenarios_parser = sub.add_parser(
        "scenarios", help="show the perturbation-scenario catalogue"
    )
    scenarios_parser.add_argument(
        "family",
        nargs="?",
        default=None,
        help="scenario family to detail (e.g. regional-outage)",
    )
    scenarios_parser.add_argument(
        "--figure",
        default=None,
        help="list the paper's flapping sweep cells for a figure (fig1, fig11)",
    )

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    run_parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale preset",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="root seed")
    run_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help=(
            "result-store root: writes <out>/<id>/<scale>/seed_<n>.json plus "
            "one <id>_<scale>_seed<n>.txt table per experiment"
        ),
    )

    sweep_parser = sub.add_parser(
        "sweep", help="run experiments over many seeds, in parallel"
    )
    sweep_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    sweep_parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale preset",
    )
    sweep_parser.add_argument(
        "--seeds",
        default="0..9",
        help="seed set: '7', an inclusive range '0..9', or a list '0,2,5'",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = run inline)",
    )
    sweep_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("results"),
        help="result-store root directory (default: results/)",
    )
    sweep_parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="how to print each experiment's aggregate",
    )

    perf_parser = sub.add_parser(
        "perf",
        help="profile experiments (events/sec, hotspots) and gate regressions",
    )
    perf_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    perf_parser.add_argument(
        "--scale",
        default="smoke",
        choices=sorted(SCALES),
        help="experiment scale preset (default: smoke)",
    )
    perf_parser.add_argument("--seed", type=int, default=0, help="root seed")
    perf_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per experiment; events/sec uses the best",
    )
    perf_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="hotspot entries to keep from the cProfile pass (0 disables it)",
    )
    perf_parser.add_argument(
        "--cold",
        action="store_true",
        help="clear construction caches before every repeat (measure "
        "end-to-end cost instead of steady-state throughput)",
    )
    perf_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks"),
        help="directory receiving one BENCH_<id>.json per experiment",
    )
    perf_parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline.json; exit 1 on regression",
    )
    perf_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed events/sec drop before --check fails (default: 0.2)",
    )
    perf_parser.add_argument(
        "--write-baseline",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="rewrite a baseline.json from this run's measurements",
    )
    return parser


def _cmd_list() -> int:
    for experiment_id in all_experiment_ids():
        title, _fn = get_experiment(experiment_id)
        print(f"{experiment_id:18s} {title}")
    return 0


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.figure is not None and args.family is not None:
        raise ConfigurationError(
            f"give either a scenario family ({args.family!r}) or --figure "
            f"({args.figure!r}), not both"
        )
    if args.figure is not None:
        for cell in scenarios_for(args.figure):
            print(f"{args.figure}  {cell.period_label:>8s}  p={cell.probability}")
        return 0
    if args.family is not None:
        family = get_family(args.family)
        print(f"{family.name}: {family.summary}")
        print(f"  process:    repro.perturbation.{family.process}")
        if family.experiment_id is not None:
            print(f"  experiment: {family.experiment_id} (run it via "
                  f"`sweep {family.experiment_id} --seeds 0..9`)")
        return 0
    for family in scenario_families():
        experiment = family.experiment_id or "-"
        print(f"{family.name:20s} {experiment:16s} {family.summary}")
    return 0


def _requested_ids(experiments: Sequence[str]) -> list[str]:
    requested = list(experiments)
    if requested == ["all"]:
        return all_experiment_ids()
    return requested


def _cmd_run(args: argparse.Namespace) -> int:
    store = None
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        store = ResultStore(args.out)
    for experiment_id in _requested_ids(args.experiments):
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        text = result.table()
        print(text)
        print(f"({experiment_id} completed in {elapsed:.1f}s)\n")
        if store is not None:
            store.save(result, seed=args.seed, wall_clock=elapsed)
            # Seed in the name so replicates never overwrite each other.
            path = args.out / f"{experiment_id}_{result.scale}_seed{args.seed}.txt"
            path.write_text(text + "\n")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = SweepSpec(
        experiment_ids=tuple(_requested_ids(args.experiments)),
        seeds=parse_seeds(args.seeds),
        scale=args.scale,
    )
    store = ResultStore(args.out)

    def progress(outcome: TaskOutcome) -> None:
        print(
            f"[{outcome.experiment_id} seed={outcome.seed}] "
            f"{outcome.wall_clock:.1f}s, {outcome.events_processed} events "
            f"({outcome.events_per_sec:.0f}/s) -> "
            f"{store.seed_path(outcome.experiment_id, outcome.scale, outcome.seed)}",
            file=sys.stderr,
        )

    report = run_sweep(spec, store, jobs=args.jobs, progress=progress)
    for aggregate in report.aggregates:
        if args.format == "table":
            print(aggregate.table())
            print()
        elif args.format == "json":
            print(json.dumps(aggregate.to_dict(), sort_keys=True, indent=2))
        else:
            print(result_to_csv(aggregate), end="")
    print(
        f"(swept {len(report.outcomes)} tasks "
        f"[{len(spec.experiment_ids)} experiments x {len(spec.seeds)} seeds] "
        f"in {report.wall_clock:.1f}s with jobs={args.jobs}; "
        f"artifacts under {args.out}/)",
        file=sys.stderr,
    )
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    results = []
    for experiment_id in _requested_ids(args.experiments):
        result = profile_experiment(
            experiment_id,
            scale=args.scale,
            seed=args.seed,
            repeats=args.repeats,
            top=args.top,
            warm=not args.cold,
        )
        results.append(result)
        path = write_bench(result, args.out)
        print(result.summary())
        print(f"  -> {path}", file=sys.stderr)
    # gate against the *existing* baseline before any refresh, so pairing
    # --check with --write-baseline (same file) still compares against the
    # previously committed floor instead of this run's own numbers
    failed = False
    if args.check is not None:
        regressions = check_regressions(results, args.check, tolerance=args.tolerance)
        if regressions:
            failed = True
            for regression in regressions:
                print(f"REGRESSION {regression.describe()}", file=sys.stderr)
        else:
            print(
                f"no regressions vs {args.check} "
                f"(tolerance {args.tolerance * 100:.0f}%)",
                file=sys.stderr,
            )
    if args.write_baseline is not None:
        baseline_path = write_baseline(results, args.write_baseline, scale=args.scale)
        print(f"baseline written: {baseline_path}", file=sys.stderr)
    return 1 if failed else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list()
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "perf":
            return _cmd_perf(args)
        return _cmd_sweep(args)
    except (ExperimentError, ConfigurationError) as exc:
        # one line per expected user-facing error (unknown ids/scenarios,
        # bad seed specs, invalid scenario compositions), never a traceback;
        # internal-bug classes (RoutingError, SimulationError, ...) still
        # propagate with their stack
        print(f"mpil-experiments {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
