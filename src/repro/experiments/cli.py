"""Command-line interface: ``mpil-experiments list|scenarios|run|sweep|status|trace|compose|serve|perf|lint``.

Ten commands:

- ``list`` — show every registered experiment id and title, with
  ``--tags`` filtering on the registry metadata (``list --tags ext``);
- ``scenarios`` — show the perturbation-scenario catalogue (one line per
  availability-process family with the experiments that sweep it, joined
  from the registry metadata), one family's details, or a figure's
  flapping sweep cells;
- ``run``  — run experiments one seed at a time, print their tables, and
  (with ``--out``) persist each replicate through the result store plus a
  legacy ``<id>_<scale>_seed<seed>.txt`` table;
- ``sweep`` — run experiments over a *set* of seeds across a
  crash-tolerant worker pool, persisting per-seed JSON artifacts, a
  durable sqlite task ledger, and a mean/stdev/ci95 aggregate per
  experiment; ``--resume`` re-runs only what an interrupted sweep left
  unfinished, ``--max-retries``/``--task-timeout`` bound crashed and hung
  workers (see :mod:`repro.experiments.runner`,
  :mod:`repro.experiments.runtime`, :mod:`repro.experiments.store`);
- ``status`` — render one experiment's ledger progress (done/running/
  failed/pending per seed, attempts, errors) without running anything,
  plus the per-task telemetry summary indexed in the ledger;
- ``trace`` — re-run one experiment with span recording on and print a
  parent-linked hop tree for a recorded trace (every send/forward/
  dup-drop/reply of one lookup or insert, in causal order); ``--kind``/
  ``--node`` select which traces, ``--out`` exports them as sorted JSONL
  (see :mod:`repro.telemetry`);
- ``compose`` — build an experiment from a declarative TOML/JSON spec
  (see :mod:`repro.experiments.compose`) and run it, no module required;
- ``serve`` — run a sustained-traffic service experiment (open-loop
  arrivals, per-window latency percentiles and SLO verdicts; see
  :mod:`repro.service`), with ``--rate/--duration/--window`` overriding
  the scale's traffic knobs and ``--format json`` for scripted callers;
- ``perf`` — profile experiments (events/sec, wall clock, cProfile top-k)
  into ``BENCH_<id>.json`` files, optionally gating against a committed
  ``benchmarks/baseline.json`` (see :mod:`repro.perf`); ``--scale`` takes
  a comma-separated rung list (``smoke,large``) profiled in turn with the
  construction caches cleared between rungs, and budgeted rungs
  additionally gate on their declared wall-clock/RSS ceilings;
- ``lint`` — run the determinism-contract static analyzer
  (:mod:`repro.lint`) over source trees (default ``src benchmarks``):
  exit 0 when clean, 1 when any rule fires, 2 on usage errors;
  ``--format json`` emits the versioned report, ``--report FILE`` also
  writes it to disk (the CI artifact), ``--list-rules`` names every rule,
  and ``--explain DET001`` prints one rule's rationale and fix pattern.

The sweep store layout is ``<out>/<experiment>/<scale>/seed_<n>.json`` with
a ``manifest.json`` (git revision, timestamps, wall-clock, event counts)
and ``aggregate.json``/``aggregate.csv`` alongside.  Per-seed JSON is
byte-identical across reruns of the same spec, regardless of ``--jobs``.

Examples::

    mpil-experiments list
    mpil-experiments list --tags ext
    mpil-experiments scenarios
    mpil-experiments scenarios regional-outage
    mpil-experiments scenarios --figure fig11
    mpil-experiments run fig9 --scale smoke
    mpil-experiments run all --scale default --out results/
    mpil-experiments sweep fig9 tab1 --seeds 0..3 --jobs 2 --format json
    mpil-experiments sweep fig9 --seeds 0,2,5 --scale smoke --format csv
    mpil-experiments sweep fig9 --seeds 0..99 --jobs 4 --resume --task-timeout 300
    mpil-experiments status fig9 --out results
    mpil-experiments trace fig9 --scale smoke --seed 1
    mpil-experiments trace ext-outage --scale smoke --kind lookup --out spans.jsonl
    mpil-experiments compose my-sweep.toml --scale smoke --seed 1
    mpil-experiments serve svc-outage --scale smoke --rate 2 --format json
    mpil-experiments perf fig9 ext-outage --scale smoke --check benchmarks/baseline.json
    mpil-experiments lint src benchmarks
    mpil-experiments lint --explain DET003
    mpil-experiments lint src --format json --report repro-lint-report.json

(Without an installed entry point, invoke the same CLI as
``PYTHONPATH=src python -m repro.experiments.cli ...``.)
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.errors import ConfigurationError, ExperimentError
from repro.experiments.compose import compose_spec, load_spec_file
from repro.experiments.ledger import TASK_STATES
from repro.experiments.registry import (
    all_experiment_ids,
    get_spec,
    list_experiments,
    register,
    run_experiment,
)
from repro.experiments.runner import SweepSpec, TaskOutcome, parse_seeds, run_sweep
from repro.experiments.scales import available_scales, get_scale, with_service_overrides
from repro.experiments.spec import ExperimentSpec
from repro.experiments.store import ResultStore, result_to_csv
from repro.lint import all_rules, get_rule, lint_paths, load_config
from repro.perf.profiler import profile_experiment, write_bench
from repro.perf.regression import check_budgets, check_regressions, write_baseline
from repro.perturbation.scenario import get_family, scenario_families, scenarios_for
from repro.telemetry import Telemetry
from repro.telemetry.progress import ProgressMeter, service_window_line
from repro.telemetry.sinks import render_hop_tree, write_jsonl
from repro.util.cache import clear_all_caches


def _scale_help(extra: str = "") -> str:
    """The ``--scale`` help line: built-in rungs plus registered ones."""
    return (
        f"experiment scale rung ({', '.join(available_scales())}, "
        f"or a rung registered via repro.api.register_scale){extra}"
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mpil-experiments",
        description="Regenerate the paper's figures and tables (MPIL, DSN 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    list_parser = sub.add_parser("list", help="list available experiments")
    list_parser.add_argument(
        "--tags",
        default=None,
        help="only experiments carrying every given tag (comma-separated, e.g. 'ext')",
    )
    list_parser.add_argument(
        "--verbose",
        action="store_true",
        help="also show each experiment's tags and paper figure",
    )

    scenarios_parser = sub.add_parser(
        "scenarios", help="show the perturbation-scenario catalogue"
    )
    scenarios_parser.add_argument(
        "family",
        nargs="?",
        default=None,
        help="scenario family to detail (e.g. regional-outage)",
    )
    scenarios_parser.add_argument(
        "--figure",
        default=None,
        help="list the paper's flapping sweep cells for a figure (fig1, fig11)",
    )

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    run_parser.add_argument(
        "--scale",
        default="default",
        metavar="SCALE",
        help=_scale_help(),
    )
    run_parser.add_argument("--seed", type=int, default=0, help="root seed")
    run_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help=(
            "result-store root: writes <out>/<id>/<scale>/seed_<n>.json plus "
            "one <id>_<scale>_seed<n>.txt table per experiment"
        ),
    )
    run_parser.add_argument(
        "--trace",
        type=pathlib.Path,
        default=None,
        metavar="JSONL",
        help=(
            "record telemetry spans and export them as sorted JSONL "
            "(with several experiments the id is appended to the filename)"
        ),
    )

    sweep_parser = sub.add_parser(
        "sweep", help="run experiments over many seeds, in parallel"
    )
    sweep_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    sweep_parser.add_argument(
        "--scale",
        default="default",
        metavar="SCALE",
        help=_scale_help(),
    )
    sweep_parser.add_argument(
        "--seeds",
        default="0..9",
        help="seed set: '7', an inclusive range '0..9', or a list '0,2,5'",
    )
    sweep_parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes (1 = run inline)",
    )
    sweep_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("results"),
        help="result-store root directory (default: results/)",
    )
    sweep_parser.add_argument(
        "--format",
        choices=("table", "json", "csv"),
        default="table",
        help="how to print each experiment's aggregate",
    )
    sweep_parser.add_argument(
        "--resume",
        action="store_true",
        help=(
            "resume an interrupted sweep: skip ledger-verified complete "
            "tasks, reclaim orphaned ones, and retry failed ones"
        ),
    )
    sweep_parser.add_argument(
        "--max-retries",
        type=int,
        default=2,
        help="re-attempts per task after a crash/hang/error (default: 2)",
    )
    sweep_parser.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="kill and retry any task attempt running longer than this",
    )

    status_parser = sub.add_parser(
        "status", help="show a sweep's ledger progress for one experiment"
    )
    status_parser.add_argument("experiment", help="experiment id")
    status_parser.add_argument(
        "--scale",
        default=None,
        metavar="SCALE",
        help="only this scale's tasks (default: every scale in the ledger)",
    )
    status_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("results"),
        help="result-store root holding the ledger (default: results/)",
    )

    trace_parser = sub.add_parser(
        "trace",
        help="run one experiment with span recording and print a hop tree",
    )
    trace_parser.add_argument("experiment", help="experiment id")
    trace_parser.add_argument(
        "--scale",
        default="smoke",
        metavar="SCALE",
        help=_scale_help(" (default: smoke)"),
    )
    trace_parser.add_argument("--seed", type=int, default=0, help="root seed")
    trace_parser.add_argument(
        "--kind",
        default=None,
        help="only traces of this kind (e.g. lookup, insert, timed-lookup)",
    )
    trace_parser.add_argument(
        "--node",
        type=int,
        default=None,
        help="only traces that touch this node id",
    )
    trace_parser.add_argument(
        "--trees",
        type=int,
        default=1,
        metavar="N",
        help="hop trees to print from the matching traces (default: 1)",
    )
    trace_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        metavar="JSONL",
        help="also export every matching span as sorted JSONL",
    )

    compose_parser = sub.add_parser(
        "compose",
        help="build an experiment from a TOML/JSON spec file and run it",
    )
    compose_parser.add_argument(
        "spec",
        type=pathlib.Path,
        help="declarative spec file (.toml or .json; see repro.experiments.compose)",
    )
    compose_parser.add_argument(
        "--scale",
        default="default",
        metavar="SCALE",
        help=_scale_help(),
    )
    compose_parser.add_argument("--seed", type=int, default=0, help="root seed")
    compose_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="result-store root (same layout as `run --out`)",
    )

    serve_parser = sub.add_parser(
        "serve",
        help="run a sustained-traffic service experiment (latency percentiles)",
    )
    serve_parser.add_argument(
        "experiment",
        nargs="?",
        default="svc-steady",
        help="a service-mode experiment id (default: svc-steady; "
        "see `list --tags service`)",
    )
    serve_parser.add_argument(
        "--scale",
        default="default",
        metavar="SCALE",
        help=_scale_help(),
    )
    serve_parser.add_argument("--seed", type=int, default=0, help="root seed")
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        help="override the scale's baseline arrival rate (arrivals/s)",
    )
    serve_parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="override the scale's traffic duration (simulated seconds)",
    )
    serve_parser.add_argument(
        "--window",
        type=float,
        default=None,
        help="override the scale's metric window length (seconds)",
    )
    serve_parser.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="print the per-window result as a table or as JSON",
    )
    serve_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="result-store root (same layout as `run --out`)",
    )

    perf_parser = sub.add_parser(
        "perf",
        help="profile experiments (events/sec, hotspots) and gate regressions",
    )
    perf_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    perf_parser.add_argument(
        "--scale",
        default="smoke",
        metavar="SCALE[,SCALE...]",
        help=_scale_help(
            "; comma-separate rungs to profile each in turn, e.g. 'smoke,large'"
        ),
    )
    perf_parser.add_argument("--seed", type=int, default=0, help="root seed")
    perf_parser.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="timed repeats per experiment; events/sec uses the best",
    )
    perf_parser.add_argument(
        "--top",
        type=int,
        default=10,
        help="hotspot entries to keep from the cProfile pass (0 disables it)",
    )
    perf_parser.add_argument(
        "--cold",
        action="store_true",
        help="clear construction caches before every repeat (measure "
        "end-to-end cost instead of steady-state throughput)",
    )
    perf_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=pathlib.Path("benchmarks"),
        help="directory receiving one BENCH_<id>.json per experiment",
    )
    perf_parser.add_argument(
        "--check",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="compare against a committed baseline.json; exit 1 on regression",
    )
    perf_parser.add_argument(
        "--tolerance",
        type=float,
        default=0.2,
        help="allowed events/sec drop before --check fails (default: 0.2)",
    )
    perf_parser.add_argument(
        "--write-baseline",
        type=pathlib.Path,
        default=None,
        metavar="BASELINE",
        help="rewrite a baseline.json from this run's measurements",
    )

    lint_parser = sub.add_parser(
        "lint",
        help="run the determinism-contract static analyzer (repro.lint)",
    )
    lint_parser.add_argument(
        "paths",
        nargs="*",
        default=["src", "benchmarks"],
        help="files/directories to analyze (default: src benchmarks)",
    )
    lint_parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report as grep-able lines or as the versioned JSON schema",
    )
    lint_parser.add_argument(
        "--rules",
        default=None,
        metavar="RULE[,RULE...]",
        help="only run these rule ids (default: every registered rule)",
    )
    lint_parser.add_argument(
        "--config",
        type=pathlib.Path,
        default=None,
        metavar="PYPROJECT",
        help="explicit pyproject.toml holding [tool.repro-lint] "
        "(default: nearest one at or above the first path)",
    )
    lint_parser.add_argument(
        "--report",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also write the JSON report here (regardless of --format)",
    )
    lint_parser.add_argument(
        "--explain",
        default=None,
        metavar="RULE",
        help="print one rule's rationale and fix pattern, then exit",
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every registered rule id with its one-line title",
    )
    return parser


def _parse_tags(text: Optional[str]) -> tuple[str, ...]:
    if text is None:
        return ()
    return tuple(tag.strip() for tag in text.split(",") if tag.strip())


def _cmd_list(args: argparse.Namespace) -> int:
    tags = _parse_tags(args.tags)
    specs = list_experiments(tags)
    if not specs:
        raise ExperimentError(
            f"no experiments carry all of the tags {list(tags)}; "
            f"try `list --verbose` to see every experiment's tags"
        )
    for spec in specs:
        print(f"{spec.experiment_id:18s} {spec.title}")
        if args.verbose:
            detail = f"tags: {', '.join(spec.tags) or '-'}"
            if spec.figure is not None:
                detail += f"; reproduces {spec.figure}"
            if spec.scenario_family is not None:
                detail += f"; sweeps scenario family {spec.scenario_family}"
            print(f"{'':18s} {detail}")
    return 0


def _experiments_by_family() -> dict[str, list[str]]:
    """scenario family -> experiment ids, joined from the registry metadata."""
    by_family: dict[str, list[str]] = {}
    for spec in list_experiments():
        if spec.scenario_family is not None:
            by_family.setdefault(spec.scenario_family, []).append(spec.experiment_id)
    return by_family


def _cmd_scenarios(args: argparse.Namespace) -> int:
    if args.figure is not None and args.family is not None:
        raise ConfigurationError(
            f"give either a scenario family ({args.family!r}) or --figure "
            f"({args.figure!r}), not both"
        )
    if args.figure is not None:
        for cell in scenarios_for(args.figure):
            print(f"{args.figure}  {cell.period_label:>8s}  p={cell.probability}")
        return 0
    by_family = _experiments_by_family()
    if args.family is not None:
        family = get_family(args.family)
        experiment_ids = by_family.get(family.name, [])
        print(f"{family.name}: {family.summary}")
        print(f"  process:    repro.perturbation.{family.process}")
        for experiment_id in experiment_ids:
            print(f"  experiment: {experiment_id} (run it via "
                  f"`sweep {experiment_id} --seeds 0..9`)")
        return 0
    for family in scenario_families():
        experiments = ",".join(by_family.get(family.name, [])) or "-"
        print(f"{family.name:20s} {experiments:16s} {family.summary}")
    return 0


def _requested_ids(experiments: Sequence[str]) -> list[str]:
    requested = list(experiments)
    if requested == ["all"]:
        return all_experiment_ids()
    return requested


def _make_store(out: pathlib.Path) -> ResultStore:
    out.mkdir(parents=True, exist_ok=True)
    return ResultStore(out)


def _persist_replicate(
    store: ResultStore, result, seed: int, elapsed: float, text: str
) -> None:
    """``--out`` behaviour shared by ``run`` and ``compose``: store the
    replicate JSON (+ manifest) plus a legacy seed-qualified table file
    (seed in the name so replicates never overwrite each other)."""
    store.save(result, seed=seed, wall_clock=elapsed)
    path = store.root / f"{result.experiment_id}_{result.scale}_seed{seed}.txt"
    path.write_text(text + "\n")


def _trace_destination(
    trace: pathlib.Path, experiment_id: str, many: bool
) -> pathlib.Path:
    """Where one experiment's spans go: ``--trace`` verbatim for a single
    experiment, id-qualified for several (so runs never overwrite)."""
    if not many:
        return trace
    return trace.with_name(f"{trace.stem}_{experiment_id}{trace.suffix or '.jsonl'}")


def _cmd_run(args: argparse.Namespace) -> int:
    store = _make_store(args.out) if args.out is not None else None
    experiment_ids = _requested_ids(args.experiments)
    for experiment_id in experiment_ids:
        # one handle per experiment so metrics blobs and trace files never
        # mix counts or spans across experiments in a multi-id invocation
        telemetry = (
            Telemetry.with_spans() if args.trace is not None else Telemetry()
        )
        started = time.perf_counter()
        result = run_experiment(
            experiment_id, scale=args.scale, seed=args.seed, telemetry=telemetry
        )
        elapsed = time.perf_counter() - started
        text = result.table()
        print(text)
        print(f"({experiment_id} completed in {elapsed:.1f}s)\n")
        if args.trace is not None and telemetry.spans is not None:
            destination = _trace_destination(
                args.trace, experiment_id, many=len(experiment_ids) > 1
            )
            destination.parent.mkdir(parents=True, exist_ok=True)
            count = write_jsonl(telemetry.spans, destination)
            dropped = telemetry.spans.dropped
            suffix = f" ({dropped} dropped)" if dropped else ""
            print(
                f"({count} spans{suffix} -> {destination})", file=sys.stderr
            )
        if store is not None:
            # store.save falls back to result.metrics, so the telemetry
            # blob rides along without an extra argument here
            _persist_replicate(store, result, args.seed, elapsed, text)
    return 0


def _cmd_compose(args: argparse.Namespace) -> int:
    spec: ExperimentSpec = compose_spec(load_spec_file(args.spec))
    # Register so the composed id resolves like a built-in for the rest of
    # this process (duplicate ids fail with a one-line error, which also
    # stops a spec file from shadowing a registered experiment).
    register(spec)
    started = time.perf_counter()
    result = spec.run(scale=args.scale, seed=args.seed)
    elapsed = time.perf_counter() - started
    text = result.table()
    print(text)
    print(f"({spec.experiment_id} composed from {args.spec} "
          f"and completed in {elapsed:.1f}s)\n")
    if args.out is not None:
        _persist_replicate(_make_store(args.out), result, args.seed, elapsed, text)
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    spec = get_spec(args.experiment)
    if "service" not in spec.tags:
        raise ExperimentError(
            f"{args.experiment!r} is not a service-mode experiment; "
            f"pick one tagged 'service' (see `list --tags service`)"
        )
    scale = with_service_overrides(
        args.scale, rate=args.rate, duration=args.duration, window=args.window
    )
    telemetry = Telemetry()
    started = time.perf_counter()
    result = spec.run(scale=scale, seed=args.seed, telemetry=telemetry)
    elapsed = time.perf_counter() - started
    for line in _service_window_lines(telemetry):
        print(line, file=sys.stderr)
    if args.format == "json":
        # pure JSON on stdout so scripted callers (e.g. the CI smoke step)
        # can parse it directly
        print(json.dumps(result.to_dict(), sort_keys=True, indent=2))
    else:
        print(result.table())
    print(f"({spec.experiment_id} served in {elapsed:.1f}s)", file=sys.stderr)
    if args.out is not None:
        _persist_replicate(
            _make_store(args.out), result, args.seed, elapsed, result.table()
        )
    return 0


def _service_window_lines(telemetry: Telemetry) -> list[str]:
    """Per-window service lines rendered from the run's registry gauges."""
    by_window: dict[tuple[str, int], dict[str, float]] = {}
    for gauge in telemetry.metrics.series(kind="gauge"):
        if not gauge.name.startswith("svc_window_"):
            continue
        labels = dict(gauge.labels)
        key = (str(labels.get("variant", "?")), int(str(labels.get("window", 0))))
        by_window.setdefault(key, {})[gauge.name] = float(gauge.value)
    return [
        service_window_line(
            variant=variant,
            window_index=window,
            arrivals=int(values.get("svc_window_arrivals", 0)),
            success_rate=values.get("svc_window_success_rate", 0.0),
            p99=values.get("svc_window_p99", 0.0),
            in_flight=int(values.get("svc_window_in_flight", 0)),
        )
        for (variant, window), values in sorted(by_window.items())
    ]


def _cmd_sweep(args: argparse.Namespace) -> int:
    spec = SweepSpec(
        experiment_ids=tuple(_requested_ids(args.experiments)),
        seeds=parse_seeds(args.seeds),
        scale=args.scale,
    )
    store = ResultStore(args.out)
    meter = ProgressMeter(total_tasks=len(spec.tasks()))

    def progress(outcome: TaskOutcome) -> None:
        meter.task_finished(ok=True, events_processed=outcome.events_processed)
        print(
            f"{meter.line(label=f'{outcome.experiment_id} seed={outcome.seed}')} "
            f"({outcome.wall_clock:.1f}s) -> "
            f"{store.seed_path(outcome.experiment_id, outcome.scale, outcome.seed)}",
            file=sys.stderr,
        )

    report = run_sweep(
        spec,
        store,
        jobs=args.jobs,
        progress=progress,
        resume=args.resume,
        max_retries=args.max_retries,
        task_timeout=args.task_timeout,
    )
    for entry in report.skipped:
        print(
            f"[{entry.experiment_id} seed={entry.seed}] skipped "
            f"(complete, checksum verified)",
            file=sys.stderr,
        )
    for failure in report.failures:
        print(
            f"[{failure.experiment_id} seed={failure.seed}] FAILED after "
            f"{failure.attempts} attempts: {failure.error}",
            file=sys.stderr,
        )
    for aggregate in report.aggregates:
        if args.format == "table":
            print(aggregate.table())
            print()
        elif args.format == "json":
            print(json.dumps(aggregate.to_dict(), sort_keys=True, indent=2))
        else:
            print(result_to_csv(aggregate), end="")
    print(
        f"(swept {len(report.outcomes)} tasks, skipped {len(report.skipped)}, "
        f"failed {len(report.failures)} "
        f"[{len(spec.experiment_ids)} experiments x {len(spec.seeds)} seeds] "
        f"in {report.wall_clock:.1f}s with jobs={args.jobs}; "
        f"artifacts under {args.out}/)",
        file=sys.stderr,
    )
    if report.failures:
        print(
            f"mpil-experiments sweep: {len(report.failures)} task(s) failed "
            f"permanently; re-run with `sweep --resume` to retry them",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_status(args: argparse.Namespace) -> int:
    store = ResultStore(args.out)
    if not store.ledger_path.exists():
        raise ExperimentError(
            f"no sweep ledger at {store.ledger_path}; "
            f"run `sweep --out {args.out}` first"
        )
    rows = store.ledger.rows(experiment_id=args.experiment, scale=args.scale)
    if not rows:
        get_spec(args.experiment)  # unknown ids get the one-line error
        where = f"scale {args.scale!r} of " if args.scale else ""
        raise ExperimentError(
            f"no ledger entries for {where}experiment {args.experiment!r} "
            f"under {args.out}"
        )
    records = {
        (record.scale, record.seed): record
        for record in store.ledger.query_results(
            experiment_id=args.experiment, scale=args.scale
        )
    }
    by_scale: dict[str, list] = {}
    for row in rows:
        by_scale.setdefault(row.scale, []).append(row)
    for scale, scale_rows in by_scale.items():
        counts = {state: 0 for state in TASK_STATES}
        for row in scale_rows:
            counts[row.state] += 1
        attempts = sum(row.attempts for row in scale_rows)
        summary = ", ".join(f"{counts[state]} {state}" for state in TASK_STATES)
        print(
            f"{args.experiment}/{scale}: {summary} "
            f"({len(scale_rows)} tasks, {attempts} attempts)"
        )
        for row in scale_rows:
            detail = row.checksum if row.state == "done" else (row.error or "-")
            print(
                f"  seed {row.seed:<6d} {row.state:<8s} "
                f"attempts={row.attempts}  {detail}"
            )
            record = records.get((row.scale, row.seed))
            if record is not None and record.metrics:
                line = _metrics_status_line(record.metrics)
                if line:
                    print(f"    metrics: {line}")
    return 0


def _metrics_status_line(metrics: dict) -> str:
    """One compact line from a replicate's indexed telemetry summary:
    series count plus the largest scalar series (histograms elided)."""
    final = metrics.get("final") or {}
    scalars = {
        key: value
        for key, value in final.items()
        if isinstance(value, (int, float))
    }
    parts = [f"{len(final)} series"]
    highlights = sorted(scalars.items(), key=lambda item: (-item[1], item[0]))[:3]
    parts += [f"{key}={value:g}" for key, value in highlights]
    spans = metrics.get("spans")
    if spans:
        parts.append(f"spans={spans.get('recorded', 0)}")
    return ", ".join(parts)


def _cmd_trace(args: argparse.Namespace) -> int:
    telemetry = Telemetry.with_spans()
    started = time.perf_counter()
    run_experiment(
        args.experiment, scale=args.scale, seed=args.seed, telemetry=telemetry
    )
    elapsed = time.perf_counter() - started
    recorder = telemetry.spans
    assert recorder is not None
    all_trace_ids = recorder.trace_ids()
    kinds = sorted({trace_id.split(":", 1)[1] for trace_id in all_trace_ids})
    selected = all_trace_ids
    if args.kind is not None:
        selected = [
            trace_id
            for trace_id in selected
            if trace_id.split(":", 1)[1] == args.kind
        ]
        if not selected:
            raise ExperimentError(
                f"no {args.kind!r} traces in {args.experiment} "
                f"(scale {args.scale}, seed {args.seed}); recorded kinds: "
                f"{', '.join(kinds) or 'none'}"
            )
    if args.node is not None:
        selected = [
            trace_id
            for trace_id in selected
            if recorder.spans(trace_id=trace_id, node=args.node)
        ]
        if not selected:
            raise ExperimentError(
                f"no matching traces touch node {args.node} in "
                f"{args.experiment} (scale {args.scale}, seed {args.seed})"
            )
    dropped = f", {recorder.dropped} dropped" if recorder.dropped else ""
    print(
        f"{args.experiment} scale={args.scale} seed={args.seed}: "
        f"{len(recorder)} spans in {len(all_trace_ids)} traces{dropped}; "
        f"{len(selected)} traces match ({elapsed:.1f}s)",
        file=sys.stderr,
    )
    for trace_id in selected[: max(args.trees, 0)]:
        print()
        print(render_hop_tree(recorder.spans(trace_id=trace_id), trace_id=trace_id))
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        spans = [
            span
            for trace_id in selected
            for span in recorder.spans(trace_id=trace_id)
        ]
        count = write_jsonl(spans, args.out)
        print(f"({count} spans -> {args.out})", file=sys.stderr)
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    rungs = [name.strip() for name in args.scale.split(",") if name.strip()]
    if not rungs:
        raise ExperimentError(f"no scale rungs in --scale {args.scale!r}")
    for rung in rungs:
        get_scale(rung)  # unknown rungs get the one-line error up front
    results = []
    for index, rung in enumerate(rungs):
        if index:
            # a smaller rung's BoundedCache hits must not inflate the next
            # rung's events/sec, so every rung starts construction-cold
            clear_all_caches()
        for experiment_id in _requested_ids(args.experiments):
            result = profile_experiment(
                experiment_id,
                scale=rung,
                seed=args.seed,
                repeats=args.repeats,
                top=args.top,
                warm=not args.cold,
            )
            results.append(result)
            # multi-rung runs get one BENCH_<id>@<scale>.json per rung so
            # rungs don't overwrite each other (both names match BENCH_*)
            path = write_bench(result, args.out, qualify_scale=len(rungs) > 1)
            print(result.summary())
            print(f"  -> {path}", file=sys.stderr)
    # gate against the *existing* baseline before any refresh, so pairing
    # --check with --write-baseline (same file) still compares against the
    # previously committed floor instead of this run's own numbers
    failed = False
    if args.check is not None:
        regressions = check_regressions(results, args.check, tolerance=args.tolerance)
        if regressions:
            failed = True
            for regression in regressions:
                print(f"REGRESSION {regression.describe()}", file=sys.stderr)
        else:
            print(
                f"no regressions vs {args.check} "
                f"(tolerance {args.tolerance * 100:.0f}%)",
                file=sys.stderr,
            )
    # budgeted rungs also gate on their declared ceilings
    violations = check_budgets(results)
    if violations:
        failed = True
        for violation in violations:
            print(f"BUDGET {violation.describe()}", file=sys.stderr)
    if args.write_baseline is not None:
        baseline_path = write_baseline(results, args.write_baseline, scale=args.scale)
        print(f"baseline written: {baseline_path}", file=sys.stderr)
    return 1 if failed else 0


def _cmd_lint(args: argparse.Namespace) -> int:
    if args.explain is not None:
        print(get_rule(args.explain).explain())
        return 0
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.rule_id:8s} {rule.title}")
        return 0
    config = (
        load_config(pyproject=args.config) if args.config is not None else None
    )
    rules = None
    if args.rules is not None:
        rules = [name.strip() for name in args.rules.split(",") if name.strip()]
        for rule_id in rules:
            get_rule(rule_id)  # unknown ids get the one-line error up front
    report = lint_paths(args.paths, config=config, rules=rules)
    if args.report is not None:
        args.report.parent.mkdir(parents=True, exist_ok=True)
        args.report.write_text(report.to_json())
        print(f"report written: {args.report}", file=sys.stderr)
    if args.format == "json":
        print(report.to_json(), end="")
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "scenarios":
            return _cmd_scenarios(args)
        if args.command == "run":
            return _cmd_run(args)
        if args.command == "compose":
            return _cmd_compose(args)
        if args.command == "serve":
            return _cmd_serve(args)
        if args.command == "perf":
            return _cmd_perf(args)
        if args.command == "lint":
            return _cmd_lint(args)
        if args.command == "status":
            return _cmd_status(args)
        if args.command == "trace":
            return _cmd_trace(args)
        return _cmd_sweep(args)
    except (ExperimentError, ConfigurationError) as exc:
        # one line per expected user-facing error (unknown ids/scenarios,
        # bad seed specs, invalid scenario compositions), never a traceback;
        # internal-bug classes (RoutingError, SimulationError, ...) still
        # propagate with their stack
        print(f"mpil-experiments {args.command}: error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
