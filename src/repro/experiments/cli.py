"""Command-line interface: ``mpil-experiments list|run ...``.

Examples::

    mpil-experiments list
    mpil-experiments run fig9 --scale smoke
    mpil-experiments run all --scale default --out results/
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time
from typing import Optional, Sequence

from repro.experiments.registry import all_experiment_ids, get_experiment, run_experiment
from repro.experiments.scales import SCALES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="mpil-experiments",
        description="Regenerate the paper's figures and tables (MPIL, DSN 2005)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run_parser = sub.add_parser("run", help="run one or more experiments")
    run_parser.add_argument(
        "experiments",
        nargs="+",
        help="experiment ids (or 'all')",
    )
    run_parser.add_argument(
        "--scale",
        default="default",
        choices=sorted(SCALES),
        help="experiment scale preset",
    )
    run_parser.add_argument("--seed", type=int, default=0, help="root seed")
    run_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help="directory to also write one .txt per experiment",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in all_experiment_ids():
            title, _fn = get_experiment(experiment_id)
            print(f"{experiment_id:18s} {title}")
        return 0

    requested = list(args.experiments)
    if requested == ["all"]:
        requested = all_experiment_ids()
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
    for experiment_id in requested:
        started = time.perf_counter()
        result = run_experiment(experiment_id, scale=args.scale, seed=args.seed)
        elapsed = time.perf_counter() - started
        text = result.table()
        print(text)
        print(f"({experiment_id} completed in {elapsed:.1f}s)\n")
        if args.out is not None:
            path = args.out / f"{experiment_id}_{args.scale}.txt"
            path.write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
