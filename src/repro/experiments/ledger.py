"""Durable sqlite task ledger: one row per sweep task, crash-safe states.

The ledger is the persistence half of the resumable sweep runtime (the
executor half lives in :mod:`repro.experiments.runtime`).  It keeps one
sqlite database — ``<store root>/ledger.sqlite`` — with two tables:

- ``tasks``: one row per ``(experiment_id, scale, seed)`` task, carrying a
  state machine (``pending -> running -> done | failed``), a monotone
  attempt counter, the claiming worker id, the committed artifact's
  checksum, and the last error message;
- ``results``: a queryable index over every persisted replicate (path,
  checksum, row count, wall clock, event count) so 10^4-task sweeps can be
  aggregated or inspected without re-reading every ``seed_<n>.json``.

State machine
-------------

::

    pending --claim--> running --complete--> done      (absorbing)
                          |  \\--fail------> failed    (reopened only by
                          |                             reset_failed)
                          \\--release------> pending   (orphan reclaim)

Transitions are *checked*: completing a task twice, claiming a running
task, or failing a pending one raises :class:`~repro.errors.LedgerError`
and leaves the row untouched — the invariants the hypothesis property
suite exercises.  ``attempts`` increments exactly on ``claim`` and never
decreases (``reset_all`` starts a semantically new sweep and is the one
documented exception).

All writes go through short transactions on a single connection per
:class:`TaskLedger` instance; the sweep runtime funnels every write
through the parent process, so worker crashes can never corrupt the
database — sqlite's journal covers parent crashes.  A ledger held open by
another process surfaces as a one-line ``LedgerError`` ("ledger is
locked") rather than a traceback.
"""

from __future__ import annotations

import dataclasses
import datetime
import hashlib
import json
import pathlib
import sqlite3
from typing import Iterable, Optional, Sequence, Union

from repro.errors import LedgerError

#: the four task states, in lifecycle order
TASK_STATES = ("pending", "running", "done", "failed")

#: one (experiment_id, scale, seed) sweep task
TaskKey = tuple[str, str, int]

_SCHEMA = """
CREATE TABLE IF NOT EXISTS tasks (
    experiment_id TEXT NOT NULL,
    scale         TEXT NOT NULL,
    seed          INTEGER NOT NULL,
    state         TEXT NOT NULL DEFAULT 'pending',
    attempts      INTEGER NOT NULL DEFAULT 0,
    worker        TEXT,
    checksum      TEXT,
    error         TEXT,
    updated_at    TEXT,
    PRIMARY KEY (experiment_id, scale, seed)
);
CREATE TABLE IF NOT EXISTS results (
    experiment_id    TEXT NOT NULL,
    scale            TEXT NOT NULL,
    seed             INTEGER NOT NULL,
    path             TEXT NOT NULL,
    checksum         TEXT NOT NULL,
    rows             INTEGER NOT NULL,
    wall_clock       REAL NOT NULL,
    events_processed INTEGER NOT NULL,
    written_at       TEXT NOT NULL,
    metrics          TEXT NOT NULL DEFAULT '{}',
    PRIMARY KEY (experiment_id, scale, seed)
);
CREATE INDEX IF NOT EXISTS idx_tasks_state ON tasks (state);
CREATE INDEX IF NOT EXISTS idx_results_cell ON results (experiment_id, scale);
"""


def file_checksum(path: Union[str, pathlib.Path]) -> str:
    """``sha256:<hex>`` digest of a file's bytes (the commit checksum)."""
    digest = hashlib.sha256(pathlib.Path(path).read_bytes()).hexdigest()
    return f"sha256:{digest}"


def _utc_now() -> str:
    return datetime.datetime.now(datetime.timezone.utc).isoformat()


@dataclasses.dataclass(frozen=True)
class TaskRow:
    """One ledger row, as read back from sqlite."""

    experiment_id: str
    scale: str
    seed: int
    state: str
    attempts: int
    worker: Optional[str]
    checksum: Optional[str]
    error: Optional[str]
    updated_at: Optional[str]

    @property
    def key(self) -> TaskKey:
        return (self.experiment_id, self.scale, self.seed)


@dataclasses.dataclass(frozen=True)
class ResultRecord:
    """One results-index row: a persisted replicate's metadata."""

    experiment_id: str
    scale: str
    seed: int
    path: str  #: artifact path relative to the store root
    checksum: str
    rows: int
    wall_clock: float
    events_processed: int
    written_at: str
    #: compact telemetry summary (final metrics snapshot + span counts);
    #: empty for replicates saved before telemetry existed
    metrics: dict = dataclasses.field(default_factory=dict)


class TaskLedger:
    """Checked-state-machine task ledger backed by one sqlite file.

    ``timeout`` bounds how long sqlite waits on a lock held by another
    process before the operation fails with a ``LedgerError`` — keep it
    small in tests that deliberately contend.
    """

    def __init__(self, path: Union[str, pathlib.Path], timeout: float = 5.0):
        self.path = pathlib.Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(self.path, timeout=timeout)
            self._conn.row_factory = sqlite3.Row
            with self._conn:
                self._conn.executescript(_SCHEMA)
            self._migrate()
        except sqlite3.OperationalError as exc:
            raise LedgerError(f"cannot open ledger at {self.path}: {exc}") from None

    def _migrate(self) -> None:
        """Add columns newer code expects to databases created by older
        code (``CREATE TABLE IF NOT EXISTS`` never alters an existing
        table).  Idempotent; pre-migration rows get the declared default."""
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(results)").fetchall()
        }
        if "metrics" not in columns:
            with self._conn:
                self._conn.execute(
                    "ALTER TABLE results ADD COLUMN metrics TEXT NOT NULL DEFAULT '{}'"
                )

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "TaskLedger":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -------------------------------------------------------------- internals

    def _execute(self, sql: str, params: Sequence[object] = ()) -> sqlite3.Cursor:
        try:
            with self._conn:
                return self._conn.execute(sql, params)
        except sqlite3.OperationalError as exc:
            if "locked" in str(exc):
                raise LedgerError(
                    f"ledger at {self.path} is locked by another process"
                ) from None
            raise LedgerError(f"ledger at {self.path}: {exc}") from None

    def _transition(
        self,
        task: TaskKey,
        allowed_from: tuple[str, ...],
        to_state: str,
        *,
        event: str,
        bump_attempts: bool = False,
        worker: Optional[str] = None,
        checksum: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        """Atomically move a task between states, or raise ``LedgerError``.

        The guard is in the UPDATE's WHERE clause, so a row in the wrong
        state is left byte-for-byte untouched — checked transitions are
        what make the invariants (done-once, absorbing terminals) hold
        under any interleaving.
        """
        experiment_id, scale, seed = task
        placeholders = ",".join("?" for _ in allowed_from)
        cursor = self._execute(
            f"""
            UPDATE tasks
            SET state = ?, attempts = attempts + ?,
                worker = COALESCE(?, worker),
                checksum = COALESCE(?, checksum), error = ?, updated_at = ?
            WHERE experiment_id = ? AND scale = ? AND seed = ?
              AND state IN ({placeholders})
            """,
            (
                to_state,
                1 if bump_attempts else 0,
                worker,
                checksum,
                error,
                _utc_now(),
                experiment_id,
                scale,
                seed,
                *allowed_from,
            ),
        )
        if cursor.rowcount == 1:
            return
        row = self.row(task)
        if row is None:
            raise LedgerError(f"cannot {event} unknown task {task!r}")
        raise LedgerError(
            f"cannot {event} task {task!r} in state {row.state!r} "
            f"(allowed from: {', '.join(allowed_from)})"
        )

    # ------------------------------------------------------------ task writes

    def ensure(self, tasks: Iterable[TaskKey]) -> None:
        """Insert missing tasks as ``pending``; existing rows are untouched."""
        try:
            with self._conn:
                self._conn.executemany(
                    "INSERT OR IGNORE INTO tasks "
                    "(experiment_id, scale, seed, state, updated_at) "
                    "VALUES (?, ?, ?, 'pending', ?)",
                    [(e, s, n, _utc_now()) for (e, s, n) in tasks],
                )
        except sqlite3.OperationalError as exc:
            if "locked" in str(exc):
                raise LedgerError(
                    f"ledger at {self.path} is locked by another process"
                ) from None
            raise LedgerError(f"ledger at {self.path}: {exc}") from None

    def claim(self, task: TaskKey, worker: str) -> None:
        """``pending -> running``; increments the attempt counter."""
        self._transition(
            task, ("pending",), "running",
            event="claim", bump_attempts=True, worker=worker,
        )

    def complete(self, task: TaskKey, checksum: str) -> None:
        """``running -> done``; records the committed artifact's checksum."""
        self._transition(
            task, ("running",), "done", event="complete", checksum=checksum
        )

    def fail(self, task: TaskKey, error: str) -> None:
        """``running -> failed``; records the terminal error."""
        self._transition(task, ("running",), "failed", event="fail", error=error)

    def release(self, task: TaskKey, reason: str = "released") -> None:
        """``running -> pending``: reclaim an orphaned/crashed claim.

        Attempts are preserved — a reclaimed task has still consumed its
        claim, which is what bounds retries across parent restarts.
        """
        self._transition(task, ("running",), "pending", event="release", error=reason)

    def reset_failed(self, task: TaskKey) -> None:
        """``failed -> pending``: explicitly reopen a failed task (resume)."""
        self._transition(task, ("failed",), "pending", event="reset_failed")

    def reopen_done(self, task: TaskKey, reason: str) -> None:
        """``done -> pending``: reopen a task whose artifact failed
        verification (missing file, checksum mismatch).  The one sanctioned
        exit from the otherwise-absorbing ``done`` state, driven only by
        on-disk evidence."""
        self._transition(task, ("done",), "pending", event="reopen_done", error=reason)

    def reset_all(self, tasks: Iterable[TaskKey]) -> None:
        """Force the given tasks back to ``pending`` with zero attempts.

        Used by non-resume sweeps, which semantically start a fresh run
        over the same store — the one operation allowed to rewind the
        attempt counter."""
        try:
            with self._conn:
                self._conn.executemany(
                    "UPDATE tasks SET state = 'pending', attempts = 0, worker = NULL, "
                    "checksum = NULL, error = NULL, updated_at = ? "
                    "WHERE experiment_id = ? AND scale = ? AND seed = ?",
                    [(_utc_now(), e, s, n) for (e, s, n) in tasks],
                )
        except sqlite3.OperationalError as exc:
            if "locked" in str(exc):
                raise LedgerError(
                    f"ledger at {self.path} is locked by another process"
                ) from None
            raise LedgerError(f"ledger at {self.path}: {exc}") from None

    # ------------------------------------------------------------- task reads

    def row(self, task: TaskKey) -> Optional[TaskRow]:
        """The ledger row for one task, or None if never ensured."""
        experiment_id, scale, seed = task
        cursor = self._execute(
            "SELECT * FROM tasks WHERE experiment_id = ? AND scale = ? AND seed = ?",
            (experiment_id, scale, seed),
        )
        found = cursor.fetchone()
        return _task_row(found) if found is not None else None

    def rows(
        self,
        experiment_id: Optional[str] = None,
        scale: Optional[str] = None,
        state: Optional[str] = None,
    ) -> list[TaskRow]:
        """Ledger rows, optionally filtered, ordered by (id, scale, seed)."""
        clauses, params = _filters(
            experiment_id=experiment_id, scale=scale, state=state
        )
        cursor = self._execute(
            f"SELECT * FROM tasks{clauses} ORDER BY experiment_id, scale, seed",
            params,
        )
        return [_task_row(row) for row in cursor.fetchall()]

    def counts(
        self, experiment_id: Optional[str] = None, scale: Optional[str] = None
    ) -> dict[str, int]:
        """``state -> row count`` over the (optionally filtered) ledger."""
        clauses, params = _filters(experiment_id=experiment_id, scale=scale)
        cursor = self._execute(
            f"SELECT state, COUNT(*) AS n FROM tasks{clauses} GROUP BY state",
            params,
        )
        counts = {state: 0 for state in TASK_STATES}
        for row in cursor.fetchall():
            counts[row["state"]] = row["n"]
        return counts

    # ---------------------------------------------------------- results index

    def record_result(self, record: ResultRecord) -> None:
        """Upsert one replicate's metadata into the queryable index."""
        self._execute(
            "INSERT OR REPLACE INTO results "
            "(experiment_id, scale, seed, path, checksum, rows, wall_clock, "
            " events_processed, written_at, metrics) "
            "VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
            (
                record.experiment_id,
                record.scale,
                record.seed,
                record.path,
                record.checksum,
                record.rows,
                record.wall_clock,
                record.events_processed,
                record.written_at,
                json.dumps(record.metrics, sort_keys=True),
            ),
        )

    def query_results(
        self,
        experiment_id: Optional[str] = None,
        scale: Optional[str] = None,
        seeds: Optional[Iterable[int]] = None,
    ) -> list[ResultRecord]:
        """Indexed replicate metadata, without reading any JSON file."""
        clauses, params = _filters(experiment_id=experiment_id, scale=scale)
        sql = f"SELECT * FROM results{clauses}"
        seed_set = None if seeds is None else sorted(set(seeds))
        if seed_set is not None:
            joiner = " AND" if clauses else " WHERE"
            sql += f"{joiner} seed IN ({','.join('?' for _ in seed_set)})"
            params = [*params, *seed_set]
        cursor = self._execute(sql + " ORDER BY experiment_id, scale, seed", params)
        return [
            ResultRecord(
                experiment_id=row["experiment_id"],
                scale=row["scale"],
                seed=row["seed"],
                path=row["path"],
                checksum=row["checksum"],
                rows=row["rows"],
                wall_clock=row["wall_clock"],
                events_processed=row["events_processed"],
                written_at=row["written_at"],
                metrics=json.loads(row["metrics"] or "{}"),
            )
            for row in cursor.fetchall()
        ]


def _filters(**columns: Optional[str]) -> tuple[str, list[object]]:
    """WHERE clause + params for the non-None keyword filters."""
    clauses = [f"{name} = ?" for name, value in columns.items() if value is not None]
    params: list[object] = [value for value in columns.values() if value is not None]
    if not clauses:
        return "", params
    return " WHERE " + " AND ".join(clauses), params


def _task_row(row: sqlite3.Row) -> TaskRow:
    return TaskRow(
        experiment_id=row["experiment_id"],
        scale=row["scale"],
        seed=row["seed"],
        state=row["state"],
        attempts=row["attempts"],
        worker=row["worker"],
        checksum=row["checksum"],
        error=row["error"],
        updated_at=row["updated_at"],
    )
