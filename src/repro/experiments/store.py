"""Structured, on-disk storage for experiment results.

A :class:`ResultStore` persists every :class:`~repro.experiments.base.ExperimentResult`
as JSON under a stable layout::

    <root>/<experiment_id>/<scale>/seed_<n>.json    one file per replicate
    <root>/<experiment_id>/<scale>/manifest.json    provenance + run stats
    <root>/<experiment_id>/<scale>/aggregate.json   merged replicate table
    <root>/<experiment_id>/<scale>/aggregate.csv    same table as CSV

Per-seed files contain only the *deterministic* payload
(:meth:`ExperimentResult.to_dict` plus the seed), serialised with sorted
keys and fixed indentation, so re-running the same sweep spec yields
byte-identical artifacts — the determinism contract the test suite checks.
All volatile provenance (git revision, timestamps, wall-clock seconds,
:func:`repro.sim.engine.events_processed_total` deltas) lives in
``manifest.json`` instead.

Every artifact (seed JSON, manifest, aggregates) is committed atomically:
the bytes go to a temp file in the same directory and are renamed into
place with ``os.replace``, so a crash — even SIGKILL — mid-write can never
leave a truncated ``seed_<n>.json`` behind.  Alongside the JSON tree the
store keeps a sqlite database (``<root>/ledger.sqlite``, shared with the
sweep task ledger — see :mod:`repro.experiments.ledger`) holding a
queryable index of every saved replicate, so :meth:`ResultStore.query`
answers "which seeds of which cells exist, with what checksums and run
stats" without re-reading thousands of files.

:func:`aggregate_results` merges replicate rows into a new table where
every column that varies across seeds is replaced by ``_mean`` / ``_stdev``
/ ``_ci95`` columns, ready to compare against the paper's Monte-Carlo
aggregates.

Examples::

    from repro.experiments import run_experiment
    from repro.experiments.store import ResultStore, aggregate_results

    store = ResultStore("results")
    for seed in range(4):
        store.save(run_experiment("fig9", scale="smoke", seed=seed), seed=seed)
    replicates = store.load_all("fig9", "smoke")
    print(aggregate_results(replicates).table())
"""

from __future__ import annotations

import csv
import dataclasses
import datetime
import hashlib
import io
import json
import os
import pathlib
import subprocess
from typing import Iterable, Optional, Sequence, Union

from repro.errors import ExperimentError
from repro.experiments.base import (
    DEFAULT_STAT_SUFFIXES,
    ExperimentResult,
    ci95,
    mean,
    p50,
    p95,
    p99,
    stdev,
)
from repro.experiments.ledger import (
    ResultRecord,
    TaskKey,
    TaskLedger,
    file_checksum,
)

#: statistic columns appended, in order, for every varying numeric column
#: (the default set; a result's ``stat_suffixes`` may extend it)
STAT_SUFFIXES = DEFAULT_STAT_SUFFIXES

#: every aggregation statistic a result may request, suffix -> reducer
STAT_FUNCTIONS = {
    "_mean": mean,
    "_stdev": stdev,
    "_ci95": ci95,
    "_p50": p50,
    "_p95": p95,
    "_p99": p99,
}


def git_revision(cwd: Union[str, pathlib.Path, None] = None) -> str:
    """The current git commit hash, or ``"unknown"`` outside a checkout."""
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if proc.returncode != 0:
        return "unknown"
    return proc.stdout.strip()


@dataclasses.dataclass(frozen=True)
class RunRecord:
    """Provenance for one persisted replicate (one manifest entry)."""

    seed: int
    wall_clock: float  #: seconds spent inside run_experiment
    events_processed: int  #: simulation events executed by the run
    events_per_sec: float  #: events_processed / wall_clock (0.0 if untimed)
    rows: int  #: number of table rows in the artifact
    written_at: str  #: ISO-8601 UTC timestamp of the save


def _metrics_summary(metrics: Optional[dict]) -> dict:
    """Compact index form of a telemetry blob: the final cumulative
    snapshot plus span accounting, without the per-cell history (the full
    blob lives in ``seed_<n>.telemetry.json``)."""
    if not metrics:
        return {}
    summary: dict = {
        "cells": metrics.get("cells", 0),
        "final": metrics.get("final", {}),
    }
    if "spans" in metrics:
        summary["spans"] = metrics["spans"]
    return summary


def _atomic_write_text(path: pathlib.Path, text: str) -> None:
    """Commit ``text`` to ``path`` via write-then-rename.

    The temp file lives in the target directory so ``os.replace`` is a
    same-filesystem rename — atomic on POSIX.  A crash before the rename
    leaves at worst a stale ``*.tmp`` file; the destination is only ever
    absent or complete, never truncated.
    """
    temp = path.with_name(path.name + ".tmp")
    temp.write_text(text)
    os.replace(temp, path)


class ResultStore:
    """Persist and reload experiment results under a root directory.

    The store is write-through: :meth:`save` writes the per-seed JSON and
    updates ``manifest.json`` in one call.  Reads never consult the
    manifest, so a store survives manual deletion of manifests or seeds.
    """

    def __init__(self, root: Union[str, pathlib.Path]):
        self.root = pathlib.Path(root)
        self._git_rev: Optional[str] = None
        self._ledger: Optional[TaskLedger] = None

    @property
    def git_rev(self) -> str:
        """The checkout's commit hash, resolved once per store instance
        (it cannot change mid-sweep, and ``rev-parse`` is a subprocess)."""
        if self._git_rev is None:
            self._git_rev = git_revision()
        return self._git_rev

    @property
    def ledger_path(self) -> pathlib.Path:
        """The store's sqlite database (task ledger + results index)."""
        return self.root / "ledger.sqlite"

    @property
    def ledger(self) -> TaskLedger:
        """The store's task ledger, opened (and created) on first access."""
        if self._ledger is None:
            self._ledger = TaskLedger(self.ledger_path)
        return self._ledger

    # ------------------------------------------------------------------ paths

    def result_dir(self, experiment_id: str, scale: str) -> pathlib.Path:
        """Directory holding one experiment/scale cell's artifacts."""
        return self.root / experiment_id / scale

    def seed_path(self, experiment_id: str, scale: str, seed: int) -> pathlib.Path:
        """Path of one replicate's JSON artifact."""
        return self.result_dir(experiment_id, scale) / f"seed_{seed}.json"

    def telemetry_path(
        self, experiment_id: str, scale: str, seed: int
    ) -> pathlib.Path:
        """Path of one replicate's telemetry blob (metrics snapshots)."""
        return self.result_dir(experiment_id, scale) / f"seed_{seed}.telemetry.json"

    def manifest_path(self, experiment_id: str, scale: str) -> pathlib.Path:
        """Path of the cell's provenance manifest."""
        return self.result_dir(experiment_id, scale) / "manifest.json"

    # ------------------------------------------------------------------ write

    def save(
        self,
        result: ExperimentResult,
        seed: int,
        wall_clock: float = 0.0,
        events_processed: int = 0,
        metrics: Optional[dict] = None,
    ) -> pathlib.Path:
        """Persist one replicate and record its provenance in the manifest
        and the queryable sqlite index.

        The JSON artifact is deterministic (sorted keys, fixed indent, no
        timestamps) and committed atomically (write-then-rename), so an
        interrupted save leaves either the old artifact or the new one,
        never a truncated file; wall-clock and event counts go only to the
        manifest and the index.  ``metrics`` (the run's telemetry
        snapshots — sim-derived values only, so deterministic too) is
        committed the same way to ``seed_<n>.telemetry.json`` and mirrored
        into the index.
        """
        payload = result.to_dict()
        payload["seed"] = seed
        text = json.dumps(payload, sort_keys=True, indent=2) + "\n"
        path = self.seed_path(result.experiment_id, result.scale, seed)
        path.parent.mkdir(parents=True, exist_ok=True)
        _atomic_write_text(path, text)
        if metrics is None:
            metrics = result.metrics
        if metrics:
            _atomic_write_text(
                self.telemetry_path(result.experiment_id, result.scale, seed),
                json.dumps(metrics, sort_keys=True, indent=2) + "\n",
            )
        written_at = datetime.datetime.now(datetime.timezone.utc).isoformat()
        self._record_run(
            result.experiment_id,
            result.scale,
            RunRecord(
                seed=seed,
                wall_clock=round(wall_clock, 6),
                events_processed=events_processed,
                events_per_sec=(
                    round(events_processed / wall_clock, 3) if wall_clock > 0 else 0.0
                ),
                rows=len(result.rows),
                written_at=written_at,
            ),
        )
        self.ledger.record_result(
            ResultRecord(
                experiment_id=result.experiment_id,
                scale=result.scale,
                seed=seed,
                path=str(path.relative_to(self.root)),
                checksum="sha256:" + hashlib.sha256(text.encode()).hexdigest(),
                rows=len(result.rows),
                wall_clock=round(wall_clock, 6),
                events_processed=events_processed,
                written_at=written_at,
                metrics=_metrics_summary(metrics),
            )
        )
        return path

    def _record_run(self, experiment_id: str, scale: str, record: RunRecord) -> None:
        manifest_path = self.manifest_path(experiment_id, scale)
        manifest = self.manifest(experiment_id, scale)
        if manifest is None:
            manifest = {
                "experiment_id": experiment_id,
                "scale": scale,
                "runs": {},
            }
        manifest["git_rev"] = self.git_rev
        manifest["updated_at"] = record.written_at
        manifest["runs"][f"seed_{record.seed}"] = dataclasses.asdict(record)
        _atomic_write_text(
            manifest_path, json.dumps(manifest, sort_keys=True, indent=2) + "\n"
        )

    def write_aggregate(
        self, aggregate: ExperimentResult, seeds: Sequence[int]
    ) -> tuple[pathlib.Path, pathlib.Path]:
        """Write ``aggregate.json`` and ``aggregate.csv`` for one cell."""
        directory = self.result_dir(aggregate.experiment_id, aggregate.scale)
        directory.mkdir(parents=True, exist_ok=True)
        payload = aggregate.to_dict()
        payload["seeds"] = sorted(seeds)
        json_path = directory / "aggregate.json"
        _atomic_write_text(
            json_path, json.dumps(payload, sort_keys=True, indent=2) + "\n"
        )
        csv_path = directory / "aggregate.csv"
        _atomic_write_text(csv_path, result_to_csv(aggregate))
        return json_path, csv_path

    # ------------------------------------------------------------------- read

    def manifest(self, experiment_id: str, scale: str) -> Optional[dict]:
        """The cell's manifest dict, or None if nothing was saved yet."""
        path = self.manifest_path(experiment_id, scale)
        if not path.exists():
            return None
        return json.loads(path.read_text())

    def seeds(self, experiment_id: str, scale: str) -> list[int]:
        """Seeds with a persisted artifact for this cell, ascending."""
        directory = self.result_dir(experiment_id, scale)
        if not directory.is_dir():
            return []
        # sorted() on the glob: directory enumeration order is
        # filesystem-dependent, and every consumer of this scan (manifest
        # updates, load_all, aggregation) must see one canonical order;
        # the final numeric sort then fixes seed_10 < seed_9 lexicography
        found = []
        for path in sorted(directory.glob("seed_*.json")):
            try:
                found.append(int(path.stem.removeprefix("seed_")))
            except ValueError:
                continue
        return sorted(found)

    def load(self, experiment_id: str, scale: str, seed: int) -> ExperimentResult:
        """Reload one replicate; raises :class:`ExperimentError` if missing."""
        path = self.seed_path(experiment_id, scale, seed)
        if not path.exists():
            raise ExperimentError(f"no stored result at {path}")
        return ExperimentResult.from_dict(json.loads(path.read_text()))

    def load_all(self, experiment_id: str, scale: str) -> list[ExperimentResult]:
        """Reload every replicate of a cell, in ascending seed order."""
        return [
            self.load(experiment_id, scale, seed)
            for seed in self.seeds(experiment_id, scale)
        ]

    def verify_artifact(self, task: TaskKey, checksum: str) -> bool:
        """True iff the task's artifact exists and hashes to ``checksum``.

        This is the resume planner's gate: a ``done`` ledger row only
        counts if the bytes on disk still match what was committed —
        truncated, deleted, or hand-edited artifacts force a re-run.
        """
        experiment_id, scale, seed = task
        path = self.seed_path(experiment_id, scale, seed)
        if not path.exists():
            return False
        return file_checksum(path) == checksum

    def query(
        self,
        experiment_id: Optional[str] = None,
        scale: Optional[str] = None,
        seeds: Optional[Iterable[int]] = None,
    ) -> list[ResultRecord]:
        """Indexed metadata for saved replicates, without touching JSON.

        Backed by the store's sqlite index (filled on every
        :meth:`save`), so a 10^4-task sweep can answer "which replicates
        exist, with what run stats" in one query instead of ~10^4 file
        reads.  Returns rows ordered by (experiment, scale, seed).
        """
        return self.ledger.query_results(
            experiment_id=experiment_id, scale=scale, seeds=seeds
        )


def _is_number(value: object) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def aggregate_results(replicates: Sequence[ExperimentResult]) -> ExperimentResult:
    """Merge replicate tables into one mean/stdev/CI table.

    Replicates must share experiment id, scale, columns, and row count (the
    runner guarantees this: same spec, different seeds).  When the result
    declares ``key_columns`` (every registered experiment does), those
    columns pass through unchanged and *every other numeric column* is
    replaced by a stat column group — so the aggregate schema depends only
    on the experiment, never on which values the sampled seeds happened to
    produce.  The group is the result's ``stat_suffixes`` (default
    ``_mean``/``_stdev``/``_ci95``; service experiments add
    ``_p50``/``_p95``/``_p99`` for cross-seed tail statistics).  Results
    without ``key_columns`` fall back to a heuristic: columns identical
    across all replicates pass through, varying numeric columns get the
    stat group.  ``_ci95`` is the half-width of the Student-t 95%
    confidence interval.
    """
    if not replicates:
        raise ExperimentError("cannot aggregate zero replicates")
    first = replicates[0]
    suffixes = tuple(first.stat_suffixes)
    unknown_stats = [s for s in suffixes if s not in STAT_FUNCTIONS]
    if unknown_stats:
        raise ExperimentError(
            f"unknown stat suffix(es) {unknown_stats} on {first.experiment_id}; "
            f"available: {sorted(STAT_FUNCTIONS)}"
        )
    for other in replicates[1:]:
        if other.experiment_id != first.experiment_id or other.scale != first.scale:
            raise ExperimentError(
                f"cannot aggregate across cells: {first.experiment_id}/{first.scale} "
                f"vs {other.experiment_id}/{other.scale}"
            )
        if other.columns != first.columns or len(other.rows) != len(first.rows):
            raise ExperimentError(
                f"replicates of {first.experiment_id} have mismatched shapes"
            )

    num_rows = len(first.rows)
    num_cols = len(first.columns)
    is_numeric = [
        all(_is_number(r.rows[i][j]) for r in replicates for i in range(num_rows))
        for j in range(num_cols)
    ]
    if first.key_columns:
        unknown = set(first.key_columns) - set(first.columns)
        if unknown:
            raise ExperimentError(
                f"key_columns {sorted(unknown)} not in columns of "
                f"{first.experiment_id}"
            )
        is_key = [name in first.key_columns for name in first.columns]
    else:
        # Heuristic fallback: a column is a key column iff every row agrees
        # across all replicates.
        is_key = [
            all(
                all(r.rows[i][j] == first.rows[i][j] for r in replicates)
                for i in range(num_rows)
            )
            for j in range(num_cols)
        ]

    columns: list[str] = []
    for j, name in enumerate(first.columns):
        if is_key[j]:
            columns.append(name)
        elif is_numeric[j]:
            columns.extend(name + suffix for suffix in suffixes)
        else:
            # Non-numeric and varying (should not happen for registered
            # experiments); keep the first replicate's value.
            columns.append(name)

    rows: list[tuple] = []
    for i in range(num_rows):
        cells: list[object] = []
        for j in range(num_cols):
            if is_key[j] or not is_numeric[j]:
                cells.append(first.rows[i][j])
            else:
                values = [r.rows[i][j] for r in replicates]
                cells.extend(
                    round(STAT_FUNCTIONS[suffix](values), 6) for suffix in suffixes
                )
        rows.append(tuple(cells))

    return ExperimentResult(
        experiment_id=first.experiment_id,
        title=first.title,
        columns=tuple(columns),
        rows=rows,
        notes=f"aggregate of {len(replicates)} replicates; {first.notes}".rstrip("; "),
        scale=first.scale,
        key_columns=first.key_columns,
        stat_suffixes=suffixes,
    )


def result_to_csv(result: ExperimentResult) -> str:
    """Render a result as CSV text (header row + one line per table row)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(result.columns)
    writer.writerows(result.rows)
    return buffer.getvalue()
