"""Declarative experiment specs: a dataclass pipeline of pluggable stages.

Every experiment in this reproduction has the same skeleton: build some
shared state once (an overlay testbed, a batch of static runs, or nothing
at all for the closed-form analyses), enumerate the sweep cells (overlay
families x sizes, perturbation severities, protocol parameters, ...), and
measure each cell into rows of an
:class:`~repro.experiments.base.ExperimentResult`.  :class:`ExperimentSpec`
makes that skeleton explicit: a :class:`Pipeline` of three pluggable stage
callables plus the result schema, and metadata (tags, paper figure,
scenario family) the registry and CLI can list and filter.

Stages
------

- ``build(ctx)`` — the overlay/testbed stage: construct whatever state
  every cell shares (e.g. :func:`repro.experiments.perturbed.build_testbed`
  output).  Runs exactly once per ``run()``.
- ``cells(ctx, built)`` — the sweep stage: yield one value per result
  group (a perturbation severity, an ``(overlay family, size)`` pair, a
  protocol setting...).
- ``measure(ctx, built, cell)`` — the workload/protocol stage: run the
  cell's simulations and yield finished result rows.

``notes`` may be a literal string or a ``(ctx, built) -> str`` callable
for experiments whose caption depends on scale-derived values.

:meth:`ExperimentSpec.run` is the **single seed-validation choke point**
for the whole experiment layer: the registry, the sweep runner, and the
``repro.api`` facade all execute specs through it, so the int-seed
contract is enforced in exactly one place.

Specs come from two places: every experiment module registers one through
the :func:`repro.experiments.registry.experiment` decorator, and
:mod:`repro.experiments.compose` builds them from TOML/dict descriptions
at runtime — no module required.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Iterable, Optional, Union

from repro.errors import ExperimentError
from repro.experiments.base import DEFAULT_STAT_SUFFIXES, ExperimentResult
from repro.experiments.budget import BudgetGuard
from repro.experiments.scales import Scale, get_scale
from repro.telemetry import Telemetry, use as telemetry_scope

#: the overlay/testbed stage: shared state built once per run
BuildStage = Callable[["RunContext"], Any]
#: the sweep stage: one value per result group
CellsStage = Callable[["RunContext", Any], Iterable[Any]]
#: the workload/protocol stage: rows for one cell
MeasureStage = Callable[["RunContext", Any, Any], Iterable[tuple]]
#: result caption: literal, or derived from the built state
NotesStage = Union[str, Callable[["RunContext", Any], str]]


@dataclasses.dataclass(frozen=True)
class RunContext:
    """Everything a stage may depend on besides the built state."""

    scale: Scale
    seed: int


def validate_seed(seed: object) -> int:
    """The experiment layer's one seed check (bools are rejected).

    Every derived random stream hashes ``repr(seed)``, so ``0``, ``"0"``,
    and ``False`` would silently produce three different trajectories —
    and the sweep runner fans seeds out to worker processes, where such a
    mix-up would corrupt a whole replicate set instead of one run.
    """
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ExperimentError(
            f"seed must be an int, got {type(seed).__name__} {seed!r}"
        )
    return seed


def _build_nothing(ctx: RunContext) -> Any:
    return None


def _single_cell(ctx: RunContext, built: Any) -> Iterable[Any]:
    return (None,)


@dataclasses.dataclass(frozen=True)
class Pipeline:
    """The pluggable stage bundle of one experiment.

    Only ``columns`` and ``measure`` are mandatory: an experiment with no
    shared state skips ``build``, and one without a sweep axis runs its
    single implicit cell.
    """

    columns: tuple[str, ...]
    measure: MeasureStage
    build: BuildStage = _build_nothing
    cells: CellsStage = _single_cell
    notes: NotesStage = ""
    key_columns: tuple[str, ...] = ()
    #: aggregation statistics derived per varying numeric column when
    #: replicates of this experiment are merged (see
    #: :func:`repro.experiments.store.aggregate_results`); service-mode
    #: pipelines extend the default triple with ``_p50/_p95/_p99``
    stat_suffixes: tuple[str, ...] = DEFAULT_STAT_SUFFIXES

    def __post_init__(self) -> None:
        if not self.columns:
            raise ExperimentError("a pipeline needs at least one result column")
        unknown = set(self.key_columns) - set(self.columns)
        if unknown:
            raise ExperimentError(
                f"key_columns {sorted(unknown)} are not in columns {list(self.columns)}"
            )
        if not self.stat_suffixes:
            raise ExperimentError("a pipeline needs at least one stat suffix")


@dataclasses.dataclass(frozen=True)
class ExperimentSpec:
    """One declarative experiment: metadata plus its stage pipeline."""

    experiment_id: str
    title: str
    pipeline: Pipeline
    #: free-form labels the CLI/api can filter on (``list --tags ext``)
    tags: tuple[str, ...] = ()
    #: the paper artifact this reproduces ("Figure 9", "Table 1"), if any
    figure: Optional[str] = None
    #: the perturbation-scenario family this experiment sweeps, if any
    #: (joined against the catalogue in ``repro.perturbation.scenario``)
    scenario_family: Optional[str] = None
    #: optional hook applied to the resolved scale before each run — how a
    #: composed spec's ``[scale]`` table customises whatever rung the
    #: caller picked (see :mod:`repro.experiments.compose`)
    scale_transform: Optional[Callable[[Scale], Scale]] = None

    def __post_init__(self) -> None:
        if not self.experiment_id:
            raise ExperimentError("an experiment spec needs a non-empty id")
        if not self.title:
            raise ExperimentError(
                f"experiment {self.experiment_id!r} needs a non-empty title"
            )

    def run(
        self,
        scale: Union[str, Scale] = "default",
        seed: int = 0,
        telemetry: Optional[Telemetry] = None,
    ) -> ExperimentResult:
        """Execute the pipeline: build once, measure every cell, collect rows.

        The resolved scale's :class:`~repro.experiments.scales.BudgetSpec`
        is enforced at every stage boundary — see
        :mod:`repro.experiments.budget`.  Unbudgeted scales (every preset
        up to ``paper``) pay one no-op call per cell.

        ``telemetry`` is installed as the ambient handle for the run (see
        :mod:`repro.telemetry`); ``None`` gets a fresh spans-off handle, so
        every run's metrics are scoped to it.  The registry's per-cell
        snapshots land on ``result.metrics`` (run metadata, never part of
        the artifact bytes).
        """
        resolved = get_scale(scale)
        if self.scale_transform is not None:
            resolved = self.scale_transform(resolved)
        ctx = RunContext(scale=resolved, seed=validate_seed(seed))
        guard = BudgetGuard(resolved.name, resolved.budget)
        pipeline = self.pipeline
        handle = telemetry if telemetry is not None else Telemetry()
        with telemetry_scope(handle):
            built = pipeline.build(ctx)
            guard.check("the build stage")
            rows: list[tuple] = []
            cell_snapshots: list[dict] = []
            for index, cell in enumerate(pipeline.cells(ctx, built)):
                rows.extend(pipeline.measure(ctx, built, cell))
                guard.check(f"cell {index}")
                cell_snapshots.append(handle.metrics.snapshot())
            notes = (
                pipeline.notes(ctx, built) if callable(pipeline.notes) else pipeline.notes
            )
        metrics_blob = {
            "experiment": self.experiment_id,
            "scale": resolved.name,
            "seed": ctx.seed,
            "cells": len(cell_snapshots),
            # snapshots are cumulative at each cell boundary; the last one
            # is the whole run
            "per_cell": cell_snapshots,
            "final": cell_snapshots[-1] if cell_snapshots else handle.metrics.snapshot(),
        }
        if handle.spans is not None:
            metrics_blob["spans"] = {
                "recorded": len(handle.spans),
                "dropped": handle.spans.dropped,
            }
        return ExperimentResult(
            experiment_id=self.experiment_id,
            title=self.title,
            columns=pipeline.columns,
            rows=rows,
            notes=notes,
            scale=resolved.name,
            key_columns=pipeline.key_columns,
            stat_suffixes=pipeline.stat_suffixes,
            metrics=metrics_blob,
        )

    def matches_tags(self, tags: Iterable[str]) -> bool:
        """True iff every requested tag is on this spec."""
        return set(tags) <= set(self.tags)
