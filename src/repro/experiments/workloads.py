"""Static-overlay workloads shared by fig9/fig10 and Tables 1–3.

Methodology (paper Section 6.1): "For each overlay, random nodes are chosen
to insert objects with different IDs 100 times.  After that, those 100
objects are queried one by one again by randomly chosen nodes."  Insertions
use max_flows = 30 and per-flow replicas = 5; lookup parameters vary per
table.  Duplicate suppression is on for all static runs.
"""

from __future__ import annotations

import dataclasses
from typing import Callable, Sequence

from repro.core.config import MPILConfig
from repro.core.identifiers import Identifier, IdSpace
from repro.core.network import MPILNetwork
from repro.core.results import InsertResult, LookupResult
from repro.overlay.graph import OverlayGraph
from repro.overlay.power_law import power_law_graph
from repro.overlay.random_graphs import fixed_degree_random_graph
from repro.sim.rng import derive_rng
from repro.util.cache import BoundedCache

#: the paper's insertion parameters for all static experiments
INSERT_MAX_FLOWS = 30
INSERT_PER_FLOW_REPLICAS = 5

def _random_family_degree(n: int) -> int:
    """The paper uses degree 100; small (test-scale) overlays scale it down
    to n/10 so the graph stays sparse relative to its size."""
    return min(100, max(4, n // 10))


#: overlay families evaluated in Section 6.1
FAMILIES: dict[str, Callable[[int, object], OverlayGraph]] = {
    "power-law": lambda n, seed: power_law_graph(n, seed=seed),
    "random": lambda n, seed: fixed_degree_random_graph(
        n, degree=_random_family_degree(n), seed=seed
    ),
}


#: sample graphs are immutable and purely seed-determined; fig9/fig10 and
#: Tables 1-3 all draw the same cells, so one process builds each graph once
_OVERLAY_CACHE: BoundedCache[OverlayGraph] = BoundedCache(maxsize=12)


def make_overlay(family: str, n: int, graph_index: int, seed: object) -> OverlayGraph:
    """One of the family's sample graphs (paper: 10 per setting)."""
    return _OVERLAY_CACHE.get_or_build(
        (family, n, graph_index, repr(seed)),
        lambda: FAMILIES[family](n, (seed, family, n, graph_index)),
    )


@dataclasses.dataclass
class StaticRun:
    """One overlay instance with its inserted objects and per-op results."""

    family: str
    n: int
    graph_index: int
    network: MPILNetwork
    objects: list[Identifier]
    insert_results: list[InsertResult]


def run_inserts(
    family: str,
    n: int,
    graph_index: int,
    num_ops: int,
    seed: object,
    space: IdSpace = IdSpace(),
    config: MPILConfig | None = None,
) -> StaticRun:
    """Generate an overlay and perform the insertion stage."""
    overlay = make_overlay(family, n, graph_index, seed)
    if config is None:
        config = MPILConfig(
            max_flows=INSERT_MAX_FLOWS,
            per_flow_replicas=INSERT_PER_FLOW_REPLICAS,
            duplicate_suppression=True,
        )
    network = MPILNetwork(
        overlay, space=space, config=config, seed=(seed, family, n, graph_index)
    )
    rng = derive_rng(seed, "workload", family, n, graph_index)
    objects: list[Identifier] = []
    insert_results: list[InsertResult] = []
    for _ in range(num_ops):
        origin = rng.randrange(overlay.n)
        object_id = network.random_object_id(rng)
        objects.append(object_id)
        insert_results.append(network.insert(origin, object_id))
    return StaticRun(
        family=family,
        n=n,
        graph_index=graph_index,
        network=network,
        objects=objects,
        insert_results=insert_results,
    )


def run_lookups(
    run: StaticRun,
    max_flows: int,
    per_flow_replicas: int,
    seed: object,
) -> list[LookupResult]:
    """Query every inserted object once from a random node."""
    rng = derive_rng(
        seed, "lookups", run.family, run.n, run.graph_index, max_flows, per_flow_replicas
    )
    results = []
    for object_id in run.objects:
        origin = rng.randrange(run.network.overlay.n)
        results.append(
            run.network.lookup(
                origin,
                object_id,
                max_flows=max_flows,
                per_flow_replicas=per_flow_replicas,
            )
        )
    return results


def static_runs_for(
    scale,
    seed: object,
    families: Sequence[str] = ("power-law", "random"),
    space: IdSpace = IdSpace(),
):
    """Yield the insertion-stage runs for every (family, n, graph) cell."""
    for family in families:
        for n in scale.static_node_counts:
            for graph_index in range(scale.static_graphs):
                yield run_inserts(
                    family, n, graph_index, scale.static_ops, seed, space=space
                )
