"""Shared experiment result type and helpers.

:class:`ExperimentResult` is the unit of currency between the experiment
modules, the sweep runner (:mod:`repro.experiments.runner`), and the result
store (:mod:`repro.experiments.store`): every ``run()`` function returns
one, and :meth:`ExperimentResult.to_dict` / :meth:`ExperimentResult.from_dict`
round-trip it losslessly through JSON so replicates can be persisted and
re-aggregated long after the run.
"""

from __future__ import annotations

import dataclasses
import functools
import math
from typing import Any, Mapping, Optional, Sequence

from repro.errors import ExperimentError
from repro.util.tables import render_table

#: statistic suffixes appended to every varying numeric column when
#: replicates are aggregated (see
#: :func:`repro.experiments.store.aggregate_results`)
DEFAULT_STAT_SUFFIXES = ("_mean", "_stdev", "_ci95")

#: the extended suffix set service-mode experiments opt into: cross-seed
#: percentiles of each per-window metric alongside the classic triple
PERCENTILE_STAT_SUFFIXES = ("_p50", "_p95", "_p99")


@dataclasses.dataclass
class ExperimentResult:
    """A regenerated figure/table: columns plus rows, ready to print."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple]
    notes: str = ""
    scale: str = "default"
    #: sweep-dimension columns (family, node count, probability, ...) whose
    #: values identify a row rather than measure anything.  Aggregation
    #: passes these through and computes mean/stdev/ci95 for every other
    #: column, keeping the aggregate schema independent of the sampled data.
    key_columns: tuple[str, ...] = ()
    #: statistic columns the aggregation step derives for every varying
    #: numeric column.  The default triple suits one-shot success-rate
    #: tables; service-mode experiments extend it with cross-seed
    #: ``_p50/_p95/_p99`` percentiles (tail behavior is their measurand).
    stat_suffixes: tuple[str, ...] = DEFAULT_STAT_SUFFIXES
    #: per-cell telemetry snapshots attached by :meth:`ExperimentSpec.run
    #: <repro.experiments.spec.ExperimentSpec.run>` — run *metadata*,
    #: deliberately excluded from :meth:`to_dict` (artifact bytes stay
    #: telemetry-independent) and from equality (a reloaded artifact
    #: compares equal to the run that produced it)
    metrics: Optional[dict] = dataclasses.field(default=None, compare=False)

    def table(self, float_digits: int = 3) -> str:
        header = f"{self.experiment_id}: {self.title} [scale={self.scale}]"
        text = render_table(self.columns, self.rows, title=header, float_digits=float_digits)
        if self.notes:
            text += f"\nnotes: {self.notes}"
        return text

    def _column_index(self, name: str) -> int:
        """Index of a column, or an :class:`ExperimentError` naming the
        available columns (one-line-error convention: callers print it,
        they never see a bare ``ValueError`` traceback)."""
        try:
            return self.columns.index(name)
        except ValueError:
            raise ExperimentError(
                f"unknown column {name!r} in {self.experiment_id}; "
                f"available columns: {', '.join(self.columns)}"
            ) from None

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        index = self._column_index(name)
        return [row[index] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[tuple]:
        """Rows matching all column=value criteria."""
        indices = {name: self._column_index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[indices[name]] == value for name, value in criteria.items())
        ]

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable payload; inverse of :meth:`from_dict`.

        Tuples become lists (JSON has no tuple type); ``from_dict`` restores
        them, so ``from_dict(to_dict(r)) == r`` for any result whose cells
        are JSON scalars (str/int/float/bool/None) — which all registered
        experiments produce.

        >>> r = ExperimentResult("fig0", "t", ("a", "b"), [(1, 2.5)])
        >>> ExperimentResult.from_dict(r.to_dict()) == r
        True
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "notes": self.notes,
            "scale": self.scale,
            "key_columns": list(self.key_columns),
            "stat_suffixes": list(self.stat_suffixes),
        }

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (e.g. parsed JSON)."""
        try:
            return cls(
                experiment_id=payload["experiment_id"],
                title=payload["title"],
                columns=tuple(payload["columns"]),
                rows=[tuple(row) for row in payload["rows"]],
                notes=payload.get("notes", ""),
                scale=payload.get("scale", "default"),
                key_columns=tuple(payload.get("key_columns", ())),
                stat_suffixes=tuple(
                    payload.get("stat_suffixes", DEFAULT_STAT_SUFFIXES)
                ),
            )
        except (KeyError, TypeError) as exc:
            raise ExperimentError(f"malformed ExperimentResult payload: {exc!r}") from None


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input, to keep tables total)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)


def stdev(values: Sequence[float]) -> float:
    """Sample standard deviation (0.0 for fewer than two values)."""
    values = list(values)
    if len(values) < 2:
        return 0.0
    center = mean(values)
    return math.sqrt(sum((v - center) ** 2 for v in values) / (len(values) - 1))


@functools.lru_cache(maxsize=None)
def t_critical_95(dof: int) -> float:
    """Two-sided 95% Student-t critical value for ``dof`` degrees of freedom.

    The experiments run 5-10 seeds per cell, where the normal
    approximation's 1.96 understates the interval badly (t is 2.776 at 4
    degrees of freedom); scipy supplies the exact quantile.  Cached per
    ``dof`` — aggregation calls this once per varying column per row.
    """
    from scipy import stats  # deferred: keep `import repro` scipy-free

    return float(stats.t.ppf(0.975, dof))


def ci95(values: Sequence[float]) -> float:
    """Half-width of the Student-t 95% confidence interval.

    Uses the t critical value for ``n - 1`` degrees of freedom rather than
    the normal approximation's 1.96, which understates the interval at the
    5-10 seeds per cell the sweeps typically run.
    """
    values = list(values)
    if len(values) < 2:
        return 0.0
    return t_critical_95(len(values) - 1) * stdev(values) / math.sqrt(len(values))


def percentile(values: Sequence[float], q: float) -> float:
    """The ``q``-th percentile with deterministic linear interpolation.

    Matches numpy's default ("linear") method: for ``n`` sorted samples the
    rank is ``q / 100 * (n - 1)``, interpolating between the neighbouring
    order statistics.  Pure-python and branch-free in the hot path, so the
    value is bit-identical across platforms and seeds — the windowed
    latency pipeline relies on that for byte-stable artifacts.  Empty input
    returns 0.0 (the module's "keep tables total" convention, like
    :func:`mean`); a window with no successful lookups reports zero latency
    alongside a zero success rate.
    """
    if not 0.0 <= q <= 100.0:
        raise ExperimentError(f"percentile q must be in [0, 100], got {q!r}")
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return float(ordered[0])
    rank = (q / 100.0) * (len(ordered) - 1)
    lo = math.floor(rank)
    hi = min(lo + 1, len(ordered) - 1)
    frac = rank - lo
    return float(ordered[lo] + (ordered[hi] - ordered[lo]) * frac)


def p50(values: Sequence[float]) -> float:
    """Median (see :func:`percentile`)."""
    return percentile(values, 50.0)


def p95(values: Sequence[float]) -> float:
    """95th percentile (see :func:`percentile`)."""
    return percentile(values, 95.0)


def p99(values: Sequence[float]) -> float:
    """99th percentile (see :func:`percentile`)."""
    return percentile(values, 99.0)
