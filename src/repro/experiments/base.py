"""Shared experiment result type and helpers."""

from __future__ import annotations

import dataclasses
from typing import Any, Sequence

from repro.util.tables import render_table


@dataclasses.dataclass
class ExperimentResult:
    """A regenerated figure/table: columns plus rows, ready to print."""

    experiment_id: str
    title: str
    columns: tuple[str, ...]
    rows: list[tuple]
    notes: str = ""
    scale: str = "default"

    def table(self, float_digits: int = 3) -> str:
        header = f"{self.experiment_id}: {self.title} [scale={self.scale}]"
        text = render_table(self.columns, self.rows, title=header, float_digits=float_digits)
        if self.notes:
            text += f"\nnotes: {self.notes}"
        return text

    def column(self, name: str) -> list[Any]:
        """Extract one column by name."""
        index = self.columns.index(name)
        return [row[index] for row in self.rows]

    def filtered(self, **criteria: Any) -> list[tuple]:
        """Rows matching all column=value criteria."""
        indices = {name: self.columns.index(name) for name in criteria}
        return [
            row
            for row in self.rows
            if all(row[indices[name]] == value for name, value in criteria.items())
        ]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for empty input, to keep tables total)."""
    values = list(values)
    if not values:
        return 0.0
    return sum(values) / len(values)
