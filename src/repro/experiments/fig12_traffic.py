"""Figure 12 — lookup traffic and total traffic under perturbation.

idle:offline = 30:30.  Left panel: forwarded lookup messages (MPIL's
multicast costs more than MSPastry's single path).  Right panel: total
messages including MSPastry's maintenance probes (where MSPastry costs far
more, since MPIL runs no maintenance at all).
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.perturbed import VARIANT_LABELS, build_testbed, run_cell
from repro.experiments.scales import get_scale

EXPERIMENT_ID = "fig12"
TITLE = "Lookup traffic and total traffic (incl. maintenance), idle:offline=30:30"

PERIOD = "30:30"
VARIANTS = ("pastry", "mpil-ds", "mpil-nods")


def run(scale: str = "default", seed: object = 0) -> ExperimentResult:
    resolved = get_scale(scale)
    testbed = build_testbed(
        resolved.pastry_nodes, resolved.perturbed_inserts, seed=seed
    )
    rows = []
    for probability in resolved.flap_probabilities:
        cells = run_cell(
            testbed,
            PERIOD,
            probability,
            resolved.perturbed_lookups,
            variants=VARIANTS,
            seed=seed,
        )
        for cell in cells:
            rows.append(
                (
                    VARIANT_LABELS[cell.variant],
                    probability,
                    cell.lookup_messages,
                    cell.retransmissions,
                    round(cell.maintenance_messages),
                    round(cell.total_messages),
                )
            )
    return ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=(
            "variant",
            "flap_prob",
            "lookup_messages",
            "retransmissions",
            "maintenance_messages",
            "total_messages",
        ),
        rows=rows,
        notes=(
            "paper shape: MPIL lookup traffic >> MSPastry lookup traffic, but "
            "MSPastry total traffic (incl. maintenance probes) >> MPIL total"
        ),
        scale=resolved.name,
        key_columns=('variant', 'flap_prob'),
    )
