"""Figure 12 — lookup traffic and total traffic under perturbation.

idle:offline = 30:30.  Left panel: forwarded lookup messages (MPIL's
multicast costs more than MSPastry's single path).  Right panel: total
messages including MSPastry's maintenance probes (where MSPastry costs far
more, since MPIL runs no maintenance at all).
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.perturbed import (
    VARIANT_LABELS,
    PerturbationTestbed,
    build_testbed,
    run_cell,
)
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext

EXPERIMENT_ID = "fig12"
TITLE = "Lookup traffic and total traffic (incl. maintenance), idle:offline=30:30"

PERIOD = "30:30"
VARIANTS = ("pastry", "mpil-ds", "mpil-nods")


def _build(ctx: RunContext) -> PerturbationTestbed:
    return build_testbed(
        ctx.scale.pastry_nodes, ctx.scale.perturbed_inserts, seed=ctx.seed
    )


def _cells(ctx: RunContext, testbed: PerturbationTestbed) -> Iterable[float]:
    return ctx.scale.flap_probabilities


def _measure(
    ctx: RunContext, testbed: PerturbationTestbed, probability: float
) -> Iterable[tuple]:
    cells = run_cell(
        testbed,
        PERIOD,
        probability,
        ctx.scale.perturbed_lookups,
        variants=VARIANTS,
        seed=ctx.seed,
    )
    return [
        (
            VARIANT_LABELS[cell.variant],
            probability,
            cell.lookup_messages,
            cell.retransmissions,
            round(cell.maintenance_messages),
            round(cell.total_messages),
        )
        for cell in cells
    ]


@experiment(
    id=EXPERIMENT_ID,
    title=TITLE,
    tags=("figure", "paper", "perturbation", "traffic"),
    figure="Figure 12",
    scenario_family="flapping",
)
def spec() -> Pipeline:
    return Pipeline(
        columns=(
            "variant",
            "flap_prob",
            "lookup_messages",
            "retransmissions",
            "maintenance_messages",
            "total_messages",
        ),
        key_columns=("variant", "flap_prob"),
        build=_build,
        cells=_cells,
        measure=_measure,
        notes=(
            "paper shape: MPIL lookup traffic >> MSPastry lookup traffic, but "
            "MSPastry total traffic (incl. maintenance probes) >> MPIL total"
        ),
    )


run = spec.run
