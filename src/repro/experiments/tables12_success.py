"""Tables 1 and 2 — MPIL lookup success rate over power-law and random
topologies.

Grid: nodes x max_flows {5, 10, 15} x per-flow replicas {1..5}, success
rate in percent.  Insertions are performed first with (30, 5).

Expected shapes: success grows with per-flow replicas and with max_flows;
power-law needs r >= 2 to approach 100% (r = 1 sits near 50-60%); random
overlays are near-perfect already at r = 1 and saturate at r >= 2.
"""

from __future__ import annotations

from typing import Iterable

from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext
from repro.experiments.workloads import run_inserts, run_lookups

LOOKUP_MAX_FLOWS = (5, 10, 15)
LOOKUP_REPLICAS = (1, 2, 3, 4, 5)


def _family_pipeline(family: str) -> Pipeline:
    def cells(ctx: RunContext, built: None) -> Iterable[int]:
        return ctx.scale.static_node_counts

    def measure(ctx: RunContext, built: None, n: int) -> Iterable[tuple]:
        runs = [
            run_inserts(family, n, graph_index, ctx.scale.static_ops, ctx.seed)
            for graph_index in range(ctx.scale.static_graphs)
        ]
        rows = []
        for max_flows in LOOKUP_MAX_FLOWS:
            per_r: list[float] = []
            for replicas in LOOKUP_REPLICAS:
                successes = 0
                total = 0
                for run_data in runs:
                    for result in run_lookups(run_data, max_flows, replicas, ctx.seed):
                        successes += int(result.success)
                        total += 1
                per_r.append(round(100.0 * successes / total, 1) if total else 0.0)
            rows.append((n, max_flows, *per_r))
        return rows

    return Pipeline(
        columns=("nodes", "max_flows", "r=1", "r=2", "r=3", "r=4", "r=5"),
        key_columns=("nodes", "max_flows"),
        cells=cells,
        measure=measure,
        notes="success rate %; inserts with (30, 5); DS on",
    )


@experiment(
    id="tab1",
    title="MPIL lookup success rate over power-law topologies",
    tags=("table", "paper", "static", "lookup"),
    figure="Table 1",
)
def table1_spec() -> Pipeline:
    return _family_pipeline("power-law")


@experiment(
    id="tab2",
    title="MPIL lookup success rate over random topologies",
    tags=("table", "paper", "static", "lookup"),
    figure="Table 2",
)
def table2_spec() -> Pipeline:
    return _family_pipeline("random")


run_table1 = table1_spec.run
run_table2 = table2_spec.run
