"""Tables 1 and 2 — MPIL lookup success rate over power-law and random
topologies.

Grid: nodes x max_flows {5, 10, 15} x per-flow replicas {1..5}, success
rate in percent.  Insertions are performed first with (30, 5).

Expected shapes: success grows with per-flow replicas and with max_flows;
power-law needs r >= 2 to approach 100% (r = 1 sits near 50-60%); random
overlays are near-perfect already at r = 1 and saturate at r >= 2.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult
from repro.experiments.scales import get_scale
from repro.experiments.workloads import run_inserts, run_lookups

LOOKUP_MAX_FLOWS = (5, 10, 15)
LOOKUP_REPLICAS = (1, 2, 3, 4, 5)


def _run_family(family: str, experiment_id: str, title: str, scale, seed) -> ExperimentResult:
    resolved = get_scale(scale)
    rows = []
    for n in resolved.static_node_counts:
        runs = [
            run_inserts(family, n, graph_index, resolved.static_ops, seed)
            for graph_index in range(resolved.static_graphs)
        ]
        for max_flows in LOOKUP_MAX_FLOWS:
            per_r: list[float] = []
            for replicas in LOOKUP_REPLICAS:
                successes = 0
                total = 0
                for run_data in runs:
                    for result in run_lookups(run_data, max_flows, replicas, seed):
                        successes += int(result.success)
                        total += 1
                per_r.append(round(100.0 * successes / total, 1) if total else 0.0)
            rows.append((n, max_flows, *per_r))
    return ExperimentResult(
        experiment_id=experiment_id,
        title=title,
        columns=("nodes", "max_flows", "r=1", "r=2", "r=3", "r=4", "r=5"),
        rows=rows,
        notes="success rate %; inserts with (30, 5); DS on",
        scale=resolved.name,
        key_columns=('nodes', 'max_flows'),
    )


def run_table1(scale: str = "default", seed: object = 0) -> ExperimentResult:
    return _run_family(
        "power-law",
        "tab1",
        "MPIL lookup success rate over power-law topologies",
        scale,
        seed,
    )


def run_table2(scale: str = "default", seed: object = 0) -> ExperimentResult:
    return _run_family(
        "random",
        "tab2",
        "MPIL lookup success rate over random topologies",
        scale,
        seed,
    )
