"""Baseline comparison: MPIL vs flooding vs random walks.

The paper's introduction positions MPIL as "the best of both worlds":
flooding (Gnutella) is robust and overlay-independent but wasteful; DHT
routing is efficient but overlay-dependent.  This experiment makes the
intro's qualitative triangle measurable: with identical replica placement
(MPIL insertions at (30, 5)), compare three lookup strategies on the same
overlays — MPIL (10, 5), TTL-limited flooding, and k independent random
walks — on success rate and traffic.
"""

from __future__ import annotations

from typing import Iterable

from repro.baselines import flood_lookup, random_walk_lookup
from repro.experiments.base import mean
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext
from repro.experiments.workloads import run_inserts, run_lookups
from repro.sim.rng import derive_rng

EXPERIMENT_ID = "baseline-comparison"
TITLE = "Lookup strategies on equal footing: MPIL vs flooding vs random walks"

FLOOD_TTL = 4
WALKERS = 10
WALK_STEPS = 50


def _measure(ctx: RunContext, built: None, family: str) -> Iterable[tuple]:
    n = ctx.scale.static_node_counts[0]
    seed = ctx.seed
    runs = [
        run_inserts(family, n, graph_index, ctx.scale.static_ops, seed)
        for graph_index in range(ctx.scale.static_graphs)
    ]
    strategies: dict[str, tuple[int, list[float]]] = {}

    # MPIL lookups (10, 5), the paper's saturating setting.
    successes, traffic = 0, []
    total = 0
    for run_data in runs:
        for result in run_lookups(run_data, 10, 5, seed):
            successes += int(result.success)
            traffic.append(result.traffic)
            total += 1
    strategies["mpil(10,5)"] = (successes, traffic)

    # Flooding with a Gnutella-ish TTL.
    successes, traffic = 0, []
    for run_data in runs:
        rng = derive_rng(seed, "flood", family, run_data.graph_index)
        for object_id in run_data.objects:
            origin = rng.randrange(run_data.network.overlay.n)
            outcome = flood_lookup(
                run_data.network.overlay,
                run_data.network.directory,
                origin,
                object_id,
                ttl=FLOOD_TTL,
            )
            successes += int(outcome.success)
            traffic.append(outcome.traffic)
    strategies[f"flood(ttl={FLOOD_TTL})"] = (successes, traffic)

    # Independent random walks.
    successes, traffic = 0, []
    for run_data in runs:
        rng = derive_rng(seed, "walks", family, run_data.graph_index)
        for object_id in run_data.objects:
            origin = rng.randrange(run_data.network.overlay.n)
            outcome = random_walk_lookup(
                run_data.network.overlay,
                run_data.network.directory,
                origin,
                object_id,
                walkers=WALKERS,
                max_steps=WALK_STEPS,
                rng=rng,
            )
            successes += int(outcome.success)
            traffic.append(outcome.traffic)
    strategies[f"walks({WALKERS}x{WALK_STEPS})"] = (successes, traffic)

    return [
        (family, name, round(100.0 * wins / total, 1), round(mean(msgs), 1))
        for name, (wins, msgs) in strategies.items()
    ]


@experiment(
    id=EXPERIMENT_ID,
    title=TITLE,
    tags=("baseline", "static", "lookup"),
)
def spec() -> Pipeline:
    return Pipeline(
        columns=("family", "strategy", "success_%", "avg_traffic"),
        key_columns=("family", "strategy"),
        cells=lambda ctx, built: ("power-law", "random"),
        measure=_measure,
        notes=(
            "identical replica placement (MPIL inserts at (30,5)); flooding "
            "and random walks match MPIL's success only by spending 20-1000x "
            "its traffic — the paper's 'best of both worlds' point"
        ),
    )


run = spec.run
