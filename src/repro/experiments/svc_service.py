"""Service-mode experiments: sustained open-loop traffic with tail latency.

Two experiments drive :mod:`repro.service` through the standard spec /
store pipeline, one row per ``(cell, variant, window)``:

- ``svc-steady`` sweeps the offered load (rate multipliers over the
  scale's baseline arrival rate) against light background flapping — the
  steady-state baseline for latency-percentile regressions;
- ``svc-outage`` holds the load at the baseline rate and sweeps the
  severity of a regional outage covering the middle third of the run —
  p99 and SLO-violation windows should spike in the outage windows and
  recover after it.

Both extend the aggregation statistics with ``_p50/_p95/_p99`` columns,
so replicate sweeps report cross-seed percentiles of each windowed metric
alongside the usual mean/stdev/ci95.
"""

from __future__ import annotations

import dataclasses
from typing import Iterable

from repro.experiments.perturbed import PerturbationTestbed, build_testbed
from repro.experiments.registry import experiment
from repro.experiments.spec import Pipeline, RunContext
from repro.perturbation.flapping import FlappingConfig, FlappingSchedule
from repro.perturbation.outage import RegionalOutage, RegionalOutageConfig
from repro.perturbation.timeline import ScenarioTimeline
from repro.service.driver import (
    SERVICE_COLUMNS,
    SERVICE_STAT_SUFFIXES,
    ServiceConfig,
    service_rows,
)
from repro.service.windows import SLOPolicy

#: background perturbation both experiments share (light flapping; the
#: paper's 30:30 cycle at a low probability)
FLAP_LABEL = "30:30"
FLAP_PROBABILITY = 0.2

#: fraction of service arrivals that are inserts of fresh objects
INSERT_FRACTION = 0.1


def service_config(ctx: RunContext, rate: float) -> ServiceConfig:
    """The scale's service shape at one offered rate."""
    return ServiceConfig(
        duration=ctx.scale.service_duration,
        rate=rate,
        window=ctx.scale.service_window,
        arrival="poisson",
        insert_fraction=INSERT_FRACTION,
        slo=SLOPolicy(),
    )


def _background_flapping(ctx: RunContext, testbed: PerturbationTestbed) -> FlappingSchedule:
    return FlappingSchedule(
        FlappingConfig.from_label(FLAP_LABEL, FLAP_PROBABILITY),
        testbed.pastry.n,
        seed=(ctx.seed, "svc-flap"),
        always_online={testbed.client},
    )


@dataclasses.dataclass
class _ServiceTestbed:
    """Built state shared by every service cell."""

    testbed: PerturbationTestbed
    flapping: FlappingSchedule


def _build(ctx: RunContext) -> _ServiceTestbed:
    testbed = build_testbed(
        ctx.scale.pastry_nodes, ctx.scale.perturbed_inserts, seed=ctx.seed
    )
    return _ServiceTestbed(testbed=testbed, flapping=_background_flapping(ctx, testbed))


# --- svc-steady ---------------------------------------------------------------


def _measure_steady(
    ctx: RunContext, built: _ServiceTestbed, load: float
) -> Iterable[tuple]:
    config = service_config(ctx, ctx.scale.service_rate * load)
    # arrivals derive from the load cell (the rate differs anyway), the
    # rejoin/view streams do not — Pastry's probing noise stays fixed
    # across the load sweep
    rows = service_rows(
        built.testbed,
        built.flapping,
        config,
        seed=(ctx.seed, "svc-steady", load),
        rejoin_seed=(ctx.seed, "svc-steady"),
    )
    return [(load, *row) for row in rows]


def _notes_steady(ctx: RunContext, built: _ServiceTestbed) -> str:
    return (
        f"open-loop Poisson traffic at load x {ctx.scale.service_rate:g}/s for "
        f"{ctx.scale.service_duration:g}s over {FLAP_LABEL} flapping at "
        f"p={FLAP_PROBABILITY}; {ctx.scale.service_window:g}s windows keyed by "
        f"arrival; latency is first-reply discovery time; insert fraction "
        f"{INSERT_FRACTION:g} (rolled back after each variant)"
    )


@experiment(
    id="svc-steady",
    title="Service mode: latency percentiles vs offered load (steady state)",
    tags=("ext", "service", "perturbation"),
    scenario_family="flapping",
)
def steady_spec() -> Pipeline:
    return Pipeline(
        columns=("load", *SERVICE_COLUMNS),
        key_columns=("load", "variant", "window"),
        build=_build,
        cells=lambda ctx, built: ctx.scale.service_loads,
        measure=_measure_steady,
        notes=_notes_steady,
        stat_suffixes=SERVICE_STAT_SUFFIXES,
    )


# --- svc-outage ---------------------------------------------------------------


def _measure_outage(
    ctx: RunContext, built: _ServiceTestbed, severity: float
) -> Iterable[tuple]:
    testbed = built.testbed
    duration = ctx.scale.service_duration
    # outage covers the middle third of the run; its seed must not depend
    # on severity so the affected-region set stays nested along the sweep
    outage = RegionalOutage(
        testbed.regions,
        RegionalOutageConfig(
            start=duration / 3.0, duration=duration / 3.0, severity=severity
        ),
        seed=(ctx.seed, "svc-outage"),
        always_online={testbed.client},
    )
    schedule = ScenarioTimeline([built.flapping, outage])
    config = service_config(ctx, ctx.scale.service_rate)
    # one shared arrival plan across severities: the curves differ only by
    # the perturbation, never by workload noise
    rows = service_rows(
        testbed,
        schedule,
        config,
        seed=(ctx.seed, "svc-outage"),
        rejoin_seed=(ctx.seed, "svc-outage", severity),
    )
    return [(severity, *row) for row in rows]


def _notes_outage(ctx: RunContext, built: _ServiceTestbed) -> str:
    duration = ctx.scale.service_duration
    return (
        f"open-loop Poisson traffic at {ctx.scale.service_rate:g}/s for "
        f"{duration:g}s; a regional outage of swept severity covers "
        f"[{duration / 3.0:g}, {2.0 * duration / 3.0:g})s over {FLAP_LABEL} "
        f"flapping at p={FLAP_PROBABILITY}; {ctx.scale.service_window:g}s "
        f"windows keyed by arrival; SLO: p99 <= {SLOPolicy().latency_p99:g}s "
        f"and availability >= {SLOPolicy().availability:g}"
    )


@experiment(
    id="svc-outage",
    title="Service mode: tail latency under a regional outage at sustained load",
    tags=("ext", "service", "perturbation", "outage", "composed"),
    scenario_family="regional-outage",
)
def outage_spec() -> Pipeline:
    return Pipeline(
        columns=("outage_severity", *SERVICE_COLUMNS),
        key_columns=("outage_severity", "variant", "window"),
        build=_build,
        cells=lambda ctx, built: ctx.scale.outage_severities,
        measure=_measure_outage,
        notes=_notes_outage,
        stat_suffixes=SERVICE_STAT_SUFFIXES,
    )


run_steady = steady_spec.run
run_outage = outage_spec.run
