"""Parallel sweep runner: many experiments × many seeds, one result store.

The paper's headline numbers are Monte-Carlo aggregates over many seeds and
topologies.  This module turns that into a first-class workflow: a
:class:`SweepSpec` names the experiments, the seed set, and the scale; and
:func:`run_sweep` executes every (experiment, seed) task — sequentially or
across a ``multiprocessing`` pool — persisting each replicate through a
:class:`~repro.experiments.store.ResultStore` and writing one aggregate
(mean/stdev/ci95) table per experiment.

Determinism is preserved under parallelism: each task re-derives all of its
randomness from its own ``(experiment_id, scale, seed)`` triple via
:func:`repro.sim.rng.derive_rng`, workers share no state, and the parent
writes artifacts in a fixed task order, so ``--jobs 8`` produces the same
bytes as ``--jobs 1`` and re-running a spec yields byte-identical per-seed
JSON.

Examples::

    from repro.experiments.runner import SweepSpec, parse_seeds, run_sweep
    from repro.experiments.store import ResultStore

    spec = SweepSpec(("fig9", "tab1"), seeds=parse_seeds("0..3"), scale="smoke")
    report = run_sweep(spec, ResultStore("results"), jobs=2)
    for aggregate in report.aggregates:
        print(aggregate.table())

or, from the shell::

    mpil-experiments sweep fig9 tab1 --seeds 0..3 --jobs 2 --format table
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import time
from typing import Callable, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.base import ExperimentResult
from repro.experiments.registry import get_experiment, run_experiment
from repro.experiments.scales import get_scale
from repro.experiments.store import ResultStore, aggregate_results
from repro.sim.engine import events_processed_total, reset_events_processed


def parse_seeds(text: str) -> tuple[int, ...]:
    """Parse a seed specification into an ascending tuple of ints.

    Accepts a single seed (``"7"``), an inclusive range (``"0..9"``), or a
    comma-separated list (``"0,2,5"``).

    >>> parse_seeds("0..3")
    (0, 1, 2, 3)
    >>> parse_seeds("4")
    (4,)
    >>> parse_seeds("5,1,3")
    (1, 3, 5)
    """
    text = text.strip()
    try:
        if ".." in text:
            low_text, high_text = text.split("..", 1)
            low, high = int(low_text), int(high_text)
            if high < low:
                raise ExperimentError(f"empty seed range {text!r}")
            return tuple(range(low, high + 1))
        if "," in text:
            return tuple(sorted({int(part) for part in text.split(",") if part.strip()}))
        return (int(text),)
    except ValueError:
        raise ExperimentError(
            f"bad seed spec {text!r}; expected e.g. '7', '0..9', or '0,2,5'"
        ) from None


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """One sweep: experiment ids × seeds, at one scale.

    Validated eagerly so a bad id or seed fails in the parent process, not
    half-way through a worker pool.
    """

    experiment_ids: tuple[str, ...]
    seeds: tuple[int, ...]
    scale: str = "default"

    def __post_init__(self) -> None:
        if not self.experiment_ids:
            raise ExperimentError("sweep needs at least one experiment id")
        deduped = tuple(dict.fromkeys(self.experiment_ids))
        object.__setattr__(self, "experiment_ids", deduped)
        if not self.seeds:
            raise ExperimentError("sweep needs at least one seed")
        for seed in self.seeds:
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ExperimentError(f"seed must be an int, got {seed!r}")
        object.__setattr__(self, "seeds", tuple(dict.fromkeys(self.seeds)))
        for experiment_id in self.experiment_ids:
            get_experiment(experiment_id)  # raises on unknown ids
        get_scale(self.scale)  # raises on unknown scales

    def tasks(self) -> list[tuple[str, str, int]]:
        """All (experiment_id, scale, seed) tasks, in deterministic order."""
        return [
            (experiment_id, self.scale, seed)
            for experiment_id in self.experiment_ids
            for seed in self.seeds
        ]


@dataclasses.dataclass(frozen=True)
class TaskOutcome:
    """One completed (experiment, seed) task, as returned by a worker."""

    experiment_id: str
    scale: str
    seed: int
    payload: dict  #: ExperimentResult.to_dict() output
    wall_clock: float
    events_processed: int

    @property
    def events_per_sec(self) -> float:
        """Task throughput (0.0 when the clock resolution rounds to zero)."""
        if self.wall_clock <= 0:
            return 0.0
        return self.events_processed / self.wall_clock

    @property
    def result(self) -> ExperimentResult:
        return ExperimentResult.from_dict(self.payload)


@dataclasses.dataclass
class SweepReport:
    """Everything one :func:`run_sweep` call produced."""

    spec: SweepSpec
    outcomes: list[TaskOutcome]
    aggregates: list[ExperimentResult]  #: one per experiment id, spec order
    wall_clock: float  #: end-to-end sweep time in the parent

    def outcome(self, experiment_id: str, seed: int) -> TaskOutcome:
        for outcome in self.outcomes:
            if outcome.experiment_id == experiment_id and outcome.seed == seed:
                return outcome
        raise ExperimentError(f"no outcome for {experiment_id!r} seed {seed}")


def _execute_task(task: tuple[str, str, int]) -> TaskOutcome:
    """Run one (experiment_id, scale, seed) task; must stay module-level
    (and therefore picklable) so pool workers can receive it.

    The process-wide event counter is *reset* at task start (in whichever
    worker process executes the task), so the recorded count is exactly
    this task's events — pooled workers execute many tasks back to back,
    and a before/after subtraction would silently fold in any events a
    library callback or atexit hook ran between tasks.
    """
    experiment_id, scale, seed = task
    reset_events_processed()
    started = time.perf_counter()
    result = run_experiment(experiment_id, scale=scale, seed=seed)
    wall_clock = time.perf_counter() - started
    payload = result.to_dict()
    return TaskOutcome(
        experiment_id=experiment_id,
        scale=result.scale,
        seed=seed,
        payload=payload,
        wall_clock=wall_clock,
        events_processed=events_processed_total(),
    )


def run_sweep(
    spec: SweepSpec,
    store: Optional[ResultStore] = None,
    jobs: int = 1,
    progress: Optional[Callable[[TaskOutcome], None]] = None,
) -> SweepReport:
    """Execute a sweep, persist replicates, and aggregate each experiment.

    ``jobs=1`` runs inline in this process; ``jobs>1`` fans tasks out to a
    ``multiprocessing`` pool.  Either way, all writes happen in the parent,
    in task order, so the store layout and bytes are independent of the
    worker count.  Each replicate is persisted (and ``progress`` called) as
    soon as it completes, so an interrupted or partially failed sweep keeps
    every replicate finished before the failure.
    """
    if jobs < 1:
        raise ExperimentError(f"jobs must be >= 1, got {jobs}")
    started = time.perf_counter()
    tasks = spec.tasks()
    outcomes: list[TaskOutcome] = []

    def consume(outcome: TaskOutcome) -> None:
        outcomes.append(outcome)
        if store is not None:
            store.save(
                outcome.result,
                seed=outcome.seed,
                wall_clock=outcome.wall_clock,
                events_processed=outcome.events_processed,
            )
        if progress is not None:
            progress(outcome)

    if jobs == 1:
        for task in tasks:
            consume(_execute_task(task))
    else:
        with multiprocessing.Pool(processes=min(jobs, len(tasks))) as pool:
            # imap preserves task order while yielding each result as soon
            # as its (in-order) predecessor has been consumed.
            for outcome in pool.imap(_execute_task, tasks):
                consume(outcome)

    aggregates: list[ExperimentResult] = []
    by_experiment: dict[str, list[TaskOutcome]] = {}
    for outcome in outcomes:
        by_experiment.setdefault(outcome.experiment_id, []).append(outcome)
    for experiment_id in spec.experiment_ids:
        group = by_experiment[experiment_id]
        aggregate = aggregate_results([outcome.result for outcome in group])
        aggregates.append(aggregate)
        if store is not None:
            store.write_aggregate(aggregate, [outcome.seed for outcome in group])

    return SweepReport(
        spec=spec,
        outcomes=outcomes,
        aggregates=aggregates,
        wall_clock=time.perf_counter() - started,
    )


def run_and_store(
    experiment_id: str, scale: str, seed: int, store: ResultStore
) -> ExperimentResult:
    """Run one experiment through the store (the ``run`` command's path).

    Equivalent to a one-task sweep without aggregation: the replicate is
    persisted as ``seed_<n>.json`` with manifest provenance, and the fresh
    result is returned.
    """
    outcome = _execute_task((experiment_id, scale, seed))
    store.save(
        outcome.result,
        seed=seed,
        wall_clock=outcome.wall_clock,
        events_processed=outcome.events_processed,
    )
    return outcome.result
